#!/usr/bin/env python3
"""Security comes at a price: reproduce the Table I trade-off.

Measures TCP throughput, max UDP throughput (loss < 0.5%) and ping RTT
for the paper's five data-plane scenarios and prints them next to the
paper's numbers.  Absolute values depend on the calibrated testbed; the
*shape* — who wins, by roughly what factor — is the reproduction target.

Run:  python examples/performance_tradeoff.py           (about a minute)
      python examples/performance_tradeoff.py --quick   (rougher, faster)
      python examples/performance_tradeoff.py --jobs 4  (sharded over 4
          worker processes; the merged result is bit-identical to serial)
"""

import sys

from repro.analysis import paper_table1_values, render_table1, run_table1
from repro.farm import FarmExecutor


def main() -> None:
    quick = "--quick" in sys.argv
    jobs = int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    kwargs = dict(duration_tcp=0.06, duration_udp=0.04, ping_count=20,
                  repetitions=1) if quick else {}
    print("measuring the five scenarios"
          + (" (quick mode)" if quick else "")
          + (f" on {jobs} workers" if jobs > 1 else "") + " ...\n")
    values = run_table1(farm=FarmExecutor(jobs=jobs), **kwargs)
    print(render_table1(values, paper=paper_table1_values()))
    print()

    tcp = values["tcp_mbps"]
    udp = values["udp_mbps"]
    rtt = values["rtt_ms"]
    print("observations (Section V-B), reproduced:")
    print(f"  * security costs bandwidth: TCP {tcp['linespeed']:.0f} -> "
          f"{tcp['central3']:.0f} -> {tcp['central5']:.0f} Mbit/s "
          "(Linespeed -> Central3 -> Central5)")
    print(f"  * combining beats duplication for TCP: Central3 "
          f"{tcp['central3']:.0f} vs Dup3 {tcp['dup3']:.0f} Mbit/s")
    print(f"  * UDP degrades more gently: Central3 keeps "
          f"{100 * udp['central3'] / udp['linespeed']:.0f}% of Linespeed "
          f"(TCP keeps {100 * tcp['central3'] / tcp['linespeed']:.0f}%)")
    print(f"  * RTT ordering: {rtt['linespeed']:.3f} < {rtt['dup3']:.3f} < "
          f"{rtt['dup5']:.3f} < {rtt['central3']:.3f} < "
          f"{rtt['central5']:.3f} ms")


if __name__ == "__main__":
    main()
