#!/usr/bin/env python3
"""The Figure 1 *crypto transport* scenario: protecting availability.

"In this scenario, a transport network is shown where all traffic is
encrypted at the edge. Due to the cryptographic protection, an attacker
cannot easily manipulate the correctness of routing. However, it can
target the availability of the network, e.g., by launching a
Denial-of-Service attack."

Encryption stops tampering but not dropping or flooding.  The example
duplicates the whole transport network three ways (the coarse-granular
combiner of Section IX) and shows that

* a blackholing core device cannot interrupt the encrypted flow, and
* a replay-flooding device is contained: its duplicates die at the
  compare, which raises the DoS alarm and advises a port block.

Run:  python examples/crypto_transport.py
"""

from repro.adversary import BlackholeBehavior, ReplayFloodBehavior
from repro.scenarios.transport import build_transport_scenario
from repro.traffic.iperf import PathEndpoints, run_udp_flow


def encrypted_payloadish() -> None:
    """Traffic is opaque to the network: the combiner never inspects
    payloads semantically, it only votes on bytes — so ciphertext and
    plaintext are handled identically.  (The 'encryption' here is the
    statement that the *attacker* cannot usefully modify the payload;
    dropping and duplicating remain available, and those are exactly
    what NetCo's quorum and DoS logic absorb.)"""


def main() -> None:
    print("Crypto transport scenario (Figure 1, right)\n")

    # --- availability attack 1: blackhole inside one replica network ---
    net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=51)
    BlackholeBehavior().attach(combiner.switch(1, 1))
    print("blackhole at replica network 1, hop 1:")
    flow = run_udp_flow(PathEndpoints(net, src, dst), rate_bps=30e6, duration=0.05)
    print(f"  encrypted flow: {flow.throughput_mbps:.1f} Mbit/s, "
          f"loss {flow.loss_rate:.1%} -> availability preserved\n")
    assert flow.loss_rate == 0.0

    # --- availability attack 2: replay flood from one replica ---------
    net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=52)
    flooder = ReplayFloodBehavior(amplification=15)
    flooder.attach(combiner.switch(2, 0))
    print("replay flood (x15) at replica network 2, hop 0:")
    flow = run_udp_flow(PathEndpoints(net, src, dst), rate_bps=30e6, duration=0.05)
    stats = combiner.compare_core.stats
    print(f"  encrypted flow: {flow.throughput_mbps:.1f} Mbit/s, "
          f"loss {flow.loss_rate:.1%}, duplicates delivered {flow.duplicates}")
    print(f"  compare absorbed {stats.branch_duplicates} duplicate copies, "
          f"issued {stats.blocks_issued} port block(s), "
          f"{combiner.alarms.count('dos_suspected')} DoS alarm(s)")
    assert flow.duplicates == 0
    assert combiner.alarms.count("dos_suspected") >= 1
    print("\nOK: with correctness guaranteed by cryptography, NetCo's "
          "remaining job is availability - and the quorum plus the DoS "
          "mitigation deliver it.")


if __name__ == "__main__":
    main()
