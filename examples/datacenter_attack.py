#!/usr/bin/env python3
"""The Section VI case study: a routing attack in the datacenter.

Replays the paper's three scenario runs on a Clos pod slice:

1. baseline — all switches benign: 10 perfect echo cycles, screening
   (interface taps + flow counters) confirms nothing strays;
2. attack — the aggregation switch mirrors firewall-bound packets to a
   core switch and blackholes the victim's return traffic: 20 requests
   at fw1, 0 responses at vm1;
3. protected — the malicious switch runs inside a NetCo shielded router
   with two benign replicas: the attack is fully masked.

Run:  python examples/datacenter_attack.py
"""

from repro.scenarios.datacenter import DatacenterCaseStudy


def describe(result) -> None:
    print(f"--- {result.scenario} ---")
    print(f"  echo requests sent by vm1:    {result.requests_sent}")
    print(f"  requests arriving at fw1:     {result.requests_at_fw1}")
    print(f"  responses arriving at vm1:    {result.responses_at_vm1}")
    print(f"  test packets off benign path: {result.screening.strays} "
          f"{result.screening.stray_nodes or ''}")
    if result.scenario == "protected":
        print(f"  copies released by compare:   {result.compare_released}")
        print(f"  mirror copies dying unreleased: "
              f"{result.compare_expired_unreleased}")
        print(f"  single-source alarms raised:  {result.single_source_alarms}")
    print()


def main() -> None:
    study = DatacenterCaseStudy(seed=7, echo_count=10)

    print("Datacenter routing-attack case study (Section VI)\n")
    baseline = study.run_baseline()
    describe(baseline)

    attack = study.run_attack()
    describe(attack)
    print("  -> the paper's observation, reproduced: 'After 10 requests "
          "sent, we witness 20 requests arriving at fw1 and 0 responses "
          "arriving at vm1.'\n")

    protected = study.run_protected()
    describe(protected)
    print("  -> mirrored packets reached the compare but 'could never win "
          "the majority decision'; responses were released two-of-three; "
          "all 10 cycles completed.")

    assert baseline.responses_at_vm1 == 10
    assert attack.requests_at_fw1 == 20 and attack.responses_at_vm1 == 0
    assert protected.responses_at_vm1 == 10 and protected.screening.strays == 0


if __name__ == "__main__":
    main()
