#!/usr/bin/env python3
"""Quickstart: build a NetCo combiner, attack it, watch it hold.

Builds the paper's Figure 3 arrangement — two trusted endpoints around
three untrusted routers with a compare host — compromises one router
with a payload-corrupting implant, and runs pings and a UDP flow
through it.  The corrupted copies lose every vote; traffic is unharmed.

Run:  python examples/quickstart.py
"""

from repro.adversary import PayloadCorruptionBehavior
from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
from repro.net import Network
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def main() -> None:
    # 1. a network with a k=3 robust combiner in the middle
    net = Network(seed=42)
    chain = build_combiner_chain(
        net,
        "netco",
        CombinerChainParams(k=3, compare=CompareConfig(k=3, buffer_timeout=2e-3)),
    )

    # 2. two hosts, one on each side; route on MAC destination, as the
    #    paper's prototype does
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a, rate_bps=1e9, delay=2e-6)
    net.connect(h2, chain.endpoint_b, rate_bps=1e9, delay=2e-6)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")

    # 3. compromise router 1: it flips a payload byte in every packet
    implant = PayloadCorruptionBehavior()
    implant.attach(chain.router(1))
    print(f"compromised {chain.router(1).name} with {implant.name}")

    # 4. ping through the combiner
    ping = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
    print(f"\nping: {ping.received}/{ping.sent} replies, "
          f"avg RTT {ping.avg_rtt_ms:.3f} ms, duplicates {ping.duplicates}")

    # 5. a UDP flow
    udp = run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
    print(f"udp:  {udp.throughput_mbps:.1f} Mbit/s delivered, "
          f"loss {udp.loss_rate:.1%}, duplicates {udp.duplicates}")

    # 6. what the compare saw
    chain.compare_core.flush()
    stats = chain.compare_core.stats
    print(f"\ncompare: {stats.submissions} copies in, {stats.released} released, "
          f"{stats.expired_unreleased} minority copies discarded")
    print(f"tampered packets the implant produced: {implant.corrupted}")
    print(f"tampered packets delivered to a host:  0 (outvoted 2-to-1)")

    assert ping.received == ping.sent
    assert udp.loss_rate == 0.0
    print("\nOK: one malicious router, zero impact.")


if __name__ == "__main__":
    main()
