#!/usr/bin/env python3
"""The virtualized NetCo (Section VII): redundancy without hardware.

Instead of buying k routers per hop, the flow is split at the ingress
edge into VLAN-tagged copies tunnelled over node-disjoint, vendor-
diverse paths and recombined by an in-band compare at the egress edge.

The example provisions the combiner at k=2 (detection) and k=3
(prevention), attacks one vendor's transit switch, and shows the
difference.

Run:  python examples/virtualized_netco.py
"""

from repro.adversary import PayloadCorruptionBehavior
from repro.scenarios.virtualized import build_virtualized_scenario
from repro.traffic.iperf import PathEndpoints, run_ping


def attack_run(k: int) -> None:
    scenario = build_virtualized_scenario(k=k, paths_available=3, seed=9)
    print(f"k = {k}: flow split over "
          + ", ".join("->".join(p) for p in scenario.combiner.paths))

    implant = PayloadCorruptionBehavior()
    implant.attach(scenario.transit(1))
    print(f"  compromised transit {scenario.transit(1).name}")

    result = run_ping(
        PathEndpoints(scenario.network, scenario.src, scenario.dst),
        count=10, interval=1e-3,
    )
    scenario.compare_core.flush()
    stats = scenario.compare_core.stats
    alarms = scenario.compare_core.alarms

    print(f"  pings completed:      {result.received}/{result.sent}")
    print(f"  copies released:      {stats.released}")
    print(f"  copies dying in vote: {stats.expired_unreleased}")
    print(f"  alarms raised:        {alarms.count()}")
    if k == 2:
        print("  -> DETECTION: the tampering is visible (votes never "
              "complete, alarms fire) but traffic stalls")
        assert result.received == 0 and alarms.count() > 0
    else:
        print("  -> PREVENTION: the honest majority outvotes the "
              "tampered copies; traffic is unharmed")
        assert result.received == result.sent
    print()


def main() -> None:
    print("Virtualized NetCo (Section VII / Figure 9)\n")
    print("'splitting a flow into two (for detection) or three (for "
          "prevention) copies along different segments of the path ... "
          "has a similar effect as in the physical robust combiner'\n")
    attack_run(k=2)
    attack_run(k=3)


if __name__ == "__main__":
    main()
