#!/usr/bin/env python3
"""Sampling-based detection (Section IX future work, implemented).

"An efficient alternative could be to reduce load on the compare using
sampling: a simple logic in the data plane forwards a random subset of
packets to a more thorough out-of-band compare logic."

A primary router forwards everything immediately (no vote on the
critical path); a deterministic sample of packets is mirrored from all
branches to an out-of-band compare.  A tampering secondary never touches
delivered traffic and is still caught; the price is that a tampering
*primary* is detected, not prevented.

Run:  python examples/sampling_detection.py
"""

from repro.adversary import PayloadCorruptionBehavior
from repro.core import ALARM_MINORITY_DIVERGENCE, build_sampling_chain
from repro.net import Network
from repro.traffic.iperf import PathEndpoints, run_udp_flow


def run(sample_rate: float, corrupt_primary: bool) -> None:
    net = Network(seed=17)
    chain = build_sampling_chain(net, "sc", k=2, sample_rate=sample_rate)
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")

    target = chain.router(0 if corrupt_primary else 1)
    PayloadCorruptionBehavior(flip_offset=20).attach(target)

    tampered_delivered = []
    h2.bind_raw(
        lambda p: tampered_delivered.append(p)
        if len(p.payload) > 20 and p.payload[20] != 0
        else None
    )
    flow = run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
    chain.compare_core.flush()

    role = "PRIMARY" if corrupt_primary else "secondary"
    alarms = chain.alarms.count(ALARM_MINORITY_DIVERGENCE)
    compare_load = chain.compare_core.stats.submissions
    print(f"sample rate {sample_rate:.0%}, corrupt {role} router:")
    print(f"  goodput {flow.throughput_mbps:.1f} Mbit/s, loss {flow.loss_rate:.1%}")
    print(f"  compare handled {compare_load} copies "
          f"(vs ~{2 * flow.received_unique} for a full k=2 combiner)")
    print(f"  divergence alarms: {alarms}")
    print(f"  tampered packets delivered: {len(tampered_delivered)}")
    print()


def main() -> None:
    print("NetCo sampling detection\n")
    run(sample_rate=0.2, corrupt_primary=False)
    run(sample_rate=0.2, corrupt_primary=True)
    print("trade-off: sampling cuts compare load ~5x and keeps the "
          "forwarding path vote-free, but a malicious *primary* is only "
          "detected, never masked — choose per the paper's threat model.")


if __name__ == "__main__":
    main()
