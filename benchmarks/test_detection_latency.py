"""Detection latency (MTTD): how fast NetCo's alarms catch a compromise.

Not a table in the paper, but the direct quantification of its detection
claims: for each attack type, a benign combiner runs, the router is
compromised mid-run, and the time to the first operator alarm is
measured under steady ping traffic (1 ms cycle).
"""

from conftest import emit

from repro.adversary import (
    BlackholeBehavior,
    HeaderRewriteBehavior,
    PayloadCorruptionBehavior,
    ReplayFloodBehavior,
    dst_mac_rewrite,
)
from repro.analysis.monitor import HealthMonitor
from repro.analysis.report import format_table
from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
from repro.net import Network
from repro.traffic.iperf import PathEndpoints, run_ping

COMPROMISE_AT = 0.01


def measure(attack_name: str, seed: int = 81):
    net = Network(seed=seed)
    chain = build_combiner_chain(
        net, "nc",
        CombinerChainParams(
            k=3,
            compare=CompareConfig(k=3, buffer_timeout=2e-3, miss_threshold=5,
                                  dup_threshold=4),
        ),
    )
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")

    def make_behavior():
        if attack_name == "payload-corrupt":
            return PayloadCorruptionBehavior()
        if attack_name == "blackhole":
            return BlackholeBehavior()
        if attack_name == "reroute":
            return HeaderRewriteBehavior(dst_mac_rewrite(h1.mac))
        if attack_name == "replay-flood":
            return ReplayFloodBehavior(amplification=10)
        raise ValueError(attack_name)

    net.sim.schedule(
        COMPROMISE_AT, lambda: make_behavior().attach(chain.router(1))
    )
    monitor = HealthMonitor()
    monitor.watch(chain.alarms)
    result = run_ping(PathEndpoints(net, h1, h2), count=60, interval=1e-3)
    chain.compare_core.flush()
    monitor.refresh()
    return monitor.detection_latency(COMPROMISE_AT), result.received


def run_all():
    return {
        name: measure(name)
        for name in ("payload-corrupt", "blackhole", "reroute", "replay-flood")
    }


def test_detection_latency(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name,
         f"{latency * 1e3:.2f} ms" if latency is not None else "undetected",
         f"{received}/60"]
        for name, (latency, received) in results.items()
    ]
    emit("Detection latency after mid-run compromise (k=3, 1 ms ping cycle)\n"
         + format_table(["attack", "time to first alarm", "cycles ok"], rows))
    benchmark.extra_info.update(
        {name: (round(v[0] * 1e3, 3) if v[0] is not None else None)
         for name, v in results.items()}
    )

    for name, (latency, received) in results.items():
        assert latency is not None, f"{name} went undetected"
        assert received == 60, f"{name} broke liveness"
    # tamper-style attacks are caught within a few buffer timeouts; the
    # blackhole needs miss_threshold consecutive packets
    assert results["payload-corrupt"][0] < 0.01
    assert results["reroute"][0] < 0.01
    assert results["replay-flood"][0] < 0.01
    assert results["blackhole"][0] < 0.02
