"""Figure 7 — ping round-trip time for the five data-plane scenarios.

"Each bar represents the average of three sequences of 50 consecutive
ICMP request response cycles."  Paper averages (ms): linespeed 0.181,
dup3 0.189, dup5 0.26, central3 0.319, central5 0.415.
"""

from conftest import emit

from repro.analysis import TABLE1_SCENARIOS, render_record, run_fig7_rtt


def test_fig7_ping_rtt(benchmark):
    record = benchmark.pedantic(
        run_fig7_rtt,
        kwargs=dict(scenarios=TABLE1_SCENARIOS, count=50, sequences=3),
        rounds=1,
        iterations=1,
    )
    emit(render_record(record))
    values = {row.scenario: row.value for row in record.rows}
    for scenario, value in values.items():
        benchmark.extra_info[scenario] = round(value, 4)

    # the paper's exact ordering
    assert (
        values["linespeed"]
        < values["dup3"]
        < values["dup5"]
        < values["central3"]
        < values["central5"]
    )
    # the combiner detour costs roughly half of the baseline RTT again
    assert 1.2 < values["central3"] / values["linespeed"] < 3.0
    # sub-millisecond RTTs throughout, as on the paper's testbed
    assert values["central5"] < 1.0
