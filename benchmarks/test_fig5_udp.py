"""Figure 5 — maximum UDP throughput with loss below 0.5%.

Reproduces the paper's methodology exactly: "setting the iperf -u flag
and adjusting the -b flag value until a maximum is reached", with the
0.5% loss criterion, per scenario.
"""

from conftest import emit

from repro.analysis import ALL_SCENARIOS, render_record, run_fig5_udp


def test_fig5_max_udp_throughput(benchmark):
    record = benchmark.pedantic(
        run_fig5_udp, args=(ALL_SCENARIOS,), rounds=1, iterations=1
    )
    emit(render_record(record))
    values = {row.scenario: row.value for row in record.rows}
    for scenario, value in values.items():
        benchmark.extra_info[scenario] = round(value, 1)

    # every reported point satisfies the loss criterion
    for row in record.rows:
        assert row.detail["loss_rate"] <= 0.005

    # UDP degrades with k, but far more gently than TCP (the Section V-B
    # observation comparing Figures 4 and 5)
    assert values["linespeed"] >= values["central3"] > values["central5"]
    assert values["dup3"] > values["dup5"]
    assert values["central3"] / values["linespeed"] > 0.6
    assert values["pox3"] < values["central3"] / 3
