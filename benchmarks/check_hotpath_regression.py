#!/usr/bin/env python3
"""Gate hot-path micro-benchmark regressions against the checked-in baseline.

Usage::

    python benchmarks/check_hotpath_regression.py \
        BENCH_hotpath.json benchmarks/hotpath_baseline.json [--factor 2.0]

Compares the *normalised* value of every micro benchmark (per-call time
divided by a pure-Python calibration loop timed on the same machine, so
host speed cancels out) and exits non-zero if any is more than ``factor``
times its baseline.  Macro wall-clock entries and derived speedup ratios
are reported but never gated: they are too environment-sensitive for CI.
"""

from __future__ import annotations

import argparse
import json
import sys

#: entries that are informational, not gated
_UNGATED_SUFFIXES = ("_speedup",)
_UNGATED_PREFIXES = ("macro_",)


def _gated(name: str) -> bool:
    return not (
        name.startswith(_UNGATED_PREFIXES) or name.endswith(_UNGATED_SUFFIXES)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_hotpath.json")
    parser.add_argument("baseline", help="checked-in hotpath_baseline.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="fail when normalised time exceeds baseline "
                             "by this factor (default 2.0)")
    parser.add_argument("--min-train-speedup", type=float, default=1.2,
                        help="fail when the train=32 fig5 macro is not at "
                             "least this much faster than train=1 "
                             "(default 1.2; CI batch-smoke gates harder)")
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)["results"]
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)["results"]

    failures = []
    for name in sorted(baseline):
        base = baseline[name].get("normalised", 0.0)
        if not _gated(name) or base <= 0.0:
            continue
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        now = current[name]["normalised"]
        ratio = now / base
        status = "FAIL" if ratio > args.factor else "ok"
        print(f"[{status}] {name}: {now:.4f} vs baseline {base:.4f} "
              f"(x{ratio:.2f}, limit x{args.factor:.1f})")
        if ratio > args.factor:
            failures.append(f"{name}: x{ratio:.2f} over baseline")

    for name in sorted(current):
        if name not in baseline:
            print(f"[new ] {name}: no baseline yet")

    # the one macro-derived number that IS gated: the batch tier must keep
    # paying for itself on the fig5 quick sweep (paired same-process runs,
    # so host speed cancels out)
    train32 = current.get("macro_fig5_quick_train32", {})
    speedup = train32.get("speedup_vs_train1")
    if speedup is not None:
        status = "FAIL" if speedup < args.min_train_speedup else "ok"
        print(f"[{status}] macro_fig5_quick_train32: x{speedup:.2f} vs "
              f"train=1 (floor x{args.min_train_speedup:.1f})")
        if speedup < args.min_train_speedup:
            failures.append(
                f"macro_fig5_quick_train32: batch speedup x{speedup:.2f} "
                f"below floor x{args.min_train_speedup:.1f}"
            )

    if failures:
        print(f"\n{len(failures)} hot-path regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nhot-path benchmarks within limits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
