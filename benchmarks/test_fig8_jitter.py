"""Figure 8 — jitter for varying UDP packet sizes.

"We learn from Figure 8 that bigger packets lead to lower jitter. ...
A flow of many small packets fills up the packet cache of the compare
more quickly than a flow of fewer, but larger packets. Once the packet
cache is full, a clean up procedure starts, and ... the more frequently
the cache is cleaned up, the higher the jitter becomes."

The benchmark reproduces exactly that mechanism: at small packet sizes
the combiner scenarios' compare cache cycles through cleanups and the
stalls surface as RFC 3550 jitter; at large sizes the cache never fills.
"""

from conftest import emit

from repro.analysis import render_series, run_fig8_jitter

SCENARIOS = ("linespeed", "dup3", "dup5", "central3", "central5")
SIZES = (128, 256, 512, 1024, 1470)


def test_fig8_jitter_vs_packet_size(benchmark):
    series = benchmark.pedantic(
        run_fig8_jitter,
        kwargs=dict(scenarios=SCENARIOS, payload_sizes=SIZES, repetitions=2),
        rounds=1,
        iterations=1,
    )
    for scenario in SCENARIOS:
        emit(
            render_series(
                f"Figure 8: jitter vs payload size - {scenario}",
                "payload bytes",
                "jitter ms",
                [(size, round(j, 5)) for size, j in series[scenario]],
            )
        )
        benchmark.extra_info[scenario] = {
            str(size): round(j, 5) for size, j in series[scenario]
        }

    by = {s: dict(series[s]) for s in SCENARIOS}
    # bigger packets -> lower jitter in the combiner scenarios
    for scenario in ("central3", "central5"):
        assert by[scenario][128] > by[scenario][1470] * 3
        assert by[scenario][128] > by[scenario][512]
    # the compare-cache mechanism makes CentralK jitter dominate at
    # small sizes
    assert by["central3"][128] > by["linespeed"][128] * 3
    assert by["central5"][128] > by["dup5"][128]
    # at MTU-size packets all scenarios are quiet
    for scenario in SCENARIOS:
        assert by[scenario][1470] < 0.05
