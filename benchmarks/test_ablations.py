"""Ablations over NetCo's design choices (called out in Sections III/IV/IX).

1. Compare policy: bit-exact vs header-only vs hash.  The paper offers
   all three; the ablation shows header-only silently passes payload
   tampering while bit-exact and hash stop it.
2. Redundancy degree: k in {1, 2, 3, 5, 7} — protection vs throughput
   and RTT.
3. Compare buffer timeout: too small expires honest quorums, adequate
   values are loss-free.
"""

from dataclasses import replace

from conftest import emit

from repro.adversary import PayloadCorruptionBehavior
from repro.analysis.report import format_table
from repro.core.policy import BitExactPolicy, HashPolicy, HeaderOnlyPolicy
from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow

POLICIES = {
    "bit-exact": BitExactPolicy,
    "header-only": HeaderOnlyPolicy,
    "hash": HashPolicy,
}


def run_policy_ablation():
    """UDP flow through Central3 with a payload-corrupting router 0."""
    outcome = {}
    for name, policy_cls in POLICIES.items():
        params = TestbedParams()
        testbed = build_testbed("central3", params=params, seed=1)
        testbed.compare_core.config.policy = policy_cls()
        PayloadCorruptionBehavior(flip_offset=20).attach(testbed.chain.router(0))
        corrupted = []
        testbed.h2.bind_raw(
            lambda p: corrupted.append(p)
            if p.payload and p.payload[20:21] != b"\x00" and len(p.payload) > 20
            else None
        )
        result = run_udp_flow(
            testbed.path(), rate_bps=20e6, duration=0.03,
            send_cost=params.udp_send_cost,
        )
        outcome[name] = (result.loss_rate, len(corrupted))
    return outcome


def run_k_sweep():
    """Throughput/RTT scaling of the combiner for k = 1..7."""
    rows = {}
    base = TestbedParams()
    for k in (1, 2, 3, 5, 7):
        variant = {1: "linespeed", 3: "central3", 5: "central5"}.get(k)
        if variant is None:
            # build a custom central-k testbed via the chain params
            from repro.core.combiner import CombinerChainParams, build_combiner_chain
            from repro.net import Network

            net = Network(seed=1)
            chain_params = CombinerChainParams(
                k=k,
                compare=base.compare_config(k),
                router_proc_time=base.router_proc_time,
                router_proc_per_byte=base.router_proc_per_byte,
                endpoint_proc_time=base.endpoint_proc_time,
                endpoint_proc_per_byte=base.endpoint_proc_per_byte,
                link_delay=base.link_delay,
                compare_link_delay=base.compare_link_delay,
                switch_service_queue=base.switch_service_queue,
            )
            chain = build_combiner_chain(net, "nc", chain_params)
            h1 = net.add_host(
                "h1", stack_delay=base.host_stack_delay,
                recv_cost_base=base.host_recv_cost_base,
                recv_cost_per_byte=base.host_recv_cost_per_byte,
            )
            h2 = net.add_host(
                "h2", stack_delay=base.host_stack_delay,
                recv_cost_base=base.host_recv_cost_base,
                recv_cost_per_byte=base.host_recv_cost_per_byte,
            )
            net.connect(h1, chain.endpoint_a, rate_bps=base.link_rate_bps,
                        delay=base.link_delay)
            net.connect(h2, chain.endpoint_b, rate_bps=base.link_rate_bps,
                        delay=base.link_delay)
            chain.install_mac_route(h2.mac, toward="b")
            chain.install_mac_route(h1.mac, toward="a")
            path = PathEndpoints(net, h1, h2)
        else:
            path = build_testbed(variant, seed=1).path()
        ping = run_ping(path, count=20, interval=1e-3)
        rows[k] = (ping.avg_rtt_ms, k // 2)  # RTT, traitors tolerated
    return rows


def run_timeout_ablation():
    """Compare buffer timeout sensitivity in Central3."""
    outcome = {}
    for timeout in (2e-6, 200e-6, 5e-3):
        params = replace(TestbedParams(), compare_buffer_timeout=timeout)
        testbed = build_testbed("central3", params=params, seed=1)
        result = run_ping(testbed.path(), count=20, interval=1e-3)
        outcome[timeout] = result.received
    return outcome


def test_policy_ablation(benchmark):
    outcome = benchmark.pedantic(run_policy_ablation, rounds=1, iterations=1)
    rows = [
        [name, f"loss={loss:.3f}", f"corrupted delivered={bad}"]
        for name, (loss, bad) in outcome.items()
    ]
    emit("Ablation: compare policy vs payload corruption (Central3)\n"
         + format_table(["policy", "udp loss", "tamper leak"], rows))
    benchmark.extra_info.update({k: str(v) for k, v in outcome.items()})

    # bit-exact and hash block the tampered copies entirely
    assert outcome["bit-exact"][1] == 0
    assert outcome["hash"][1] == 0
    assert outcome["bit-exact"][0] == 0.0
    # header-only lets payload tampering through (the attacker is branch
    # 0, whose copy is frequently the cached first arrival)
    assert outcome["header-only"][1] > 0


def test_k_sweep(benchmark):
    rows = benchmark.pedantic(run_k_sweep, rounds=1, iterations=1)
    emit("Ablation: redundancy degree k\n" + format_table(
        ["k", "avg RTT ms", "traitors masked"],
        [[str(k), f"{rtt:.3f}", str(t)] for k, (rtt, t) in sorted(rows.items())],
    ))
    benchmark.extra_info.update({f"k{k}": round(v[0], 4) for k, v in rows.items()})
    rtts = [rows[k][0] for k in (1, 2, 3, 5, 7)]
    assert rtts == sorted(rtts)  # RTT grows monotonically with k


def test_timeout_ablation(benchmark):
    outcome = benchmark.pedantic(run_timeout_ablation, rounds=1, iterations=1)
    emit("Ablation: compare buffer timeout (Central3, 20 pings)\n"
         + format_table(
             ["timeout", "pings completed"],
             [[f"{t*1e6:.0f}us", str(v)] for t, v in sorted(outcome.items())],
         ))
    benchmark.extra_info.update({f"{t*1e6:.0f}us": v for t, v in outcome.items()})
    # a timeout below the branch latency spread expires honest quorums
    assert outcome[2e-6] < 20
    # adequate timeouts are loss-free
    assert outcome[5e-3] == 20
