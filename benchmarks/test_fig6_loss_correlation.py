"""Figure 6 — correlation of throughput and loss rate in Central3.

An offered-rate sweep over the Central3 scenario: below capacity the
goodput tracks the offered rate at ~zero loss; past capacity the loss
rate climbs while goodput saturates.
"""

from conftest import emit

from repro.analysis import render_series, run_fig6_loss_correlation

OFFERED = (60, 120, 180, 210, 230, 250, 270, 300, 350)


def test_fig6_throughput_vs_loss(benchmark):
    points = benchmark.pedantic(
        run_fig6_loss_correlation, args=(OFFERED,), rounds=1, iterations=1
    )
    emit(
        render_series(
            "Figure 6: Central3 offered rate vs (goodput, loss)",
            "offered Mbit/s",
            "goodput Mbit/s",
            [(o, g) for o, g, _l in points],
        )
    )
    emit(
        render_series(
            "Figure 6 (loss series)",
            "offered Mbit/s",
            "loss rate",
            [(o, round(l, 4)) for o, _g, l in points],
        )
    )
    for offered, goodput, loss in points:
        benchmark.extra_info[f"at_{int(offered)}M"] = (
            round(goodput, 1), round(loss, 4),
        )

    offered = [p[0] for p in points]
    goodput = [p[1] for p in points]
    loss = [p[2] for p in points]

    # below capacity: goodput ~= offered and loss ~= 0
    assert goodput[0] > offered[0] * 0.95
    assert loss[0] < 0.005
    # above capacity: loss grows with offered rate...
    assert loss[-1] > 0.02
    assert loss[-1] >= loss[-2] >= loss[-3] * 0.5
    # ...while goodput saturates (stops tracking the offered rate)
    assert goodput[-1] < offered[-1] * 0.9
    saturation = max(goodput)
    assert goodput[-1] > saturation * 0.7  # no congestion collapse
