"""Section VII (Figure 9) — the virtualized NetCo.

The combiner is emulated with path diversity: k node-disjoint VLAN
tunnels between two edge switches and an in-band compare at the egress.
The benchmark shows the same detection/prevention arithmetic as the
physical combiner, plus the overhead the tunnels cost.
"""

from conftest import emit

from repro.adversary import BlackholeBehavior, PayloadCorruptionBehavior
from repro.analysis.report import format_table
from repro.scenarios.virtualized import build_virtualized_scenario
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def run_matrix():
    results = {}

    # benign flows at k = 1..3 (overhead scaling)
    for k in (1, 2, 3):
        scenario = build_virtualized_scenario(k=k, paths_available=3, seed=1)
        udp = run_udp_flow(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            rate_bps=50e6,
            duration=0.05,
        )
        ping = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=20,
            interval=1e-3,
        )
        results[f"benign_k{k}"] = (udp.loss_rate, ping.avg_rtt_ms, ping.received)

    # prevention: k=3 with a corrupting vendor on path 1
    scenario = build_virtualized_scenario(k=3, seed=1)
    PayloadCorruptionBehavior().attach(scenario.transit(1))
    ping = run_ping(
        PathEndpoints(scenario.network, scenario.src, scenario.dst),
        count=20, interval=1e-3,
    )
    scenario.compare_core.flush()
    results["prevent_corrupt"] = (
        ping.received, scenario.compare_core.stats.expired_unreleased
    )

    # detection: k=2 with a blackhole vendor on path 1
    scenario = build_virtualized_scenario(k=2, seed=1)
    BlackholeBehavior().attach(scenario.transit(1))
    ping = run_ping(
        PathEndpoints(scenario.network, scenario.src, scenario.dst),
        count=20, interval=1e-3,
    )
    scenario.compare_core.flush()
    results["detect_blackhole"] = (
        ping.received, scenario.compare_core.alarms.count()
    )
    return results


def test_virtualized_netco(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [f"benign k={k}",
         f"loss={results[f'benign_k{k}'][0]:.3f}",
         f"rtt={results[f'benign_k{k}'][1]:.3f}ms",
         f"pings={results[f'benign_k{k}'][2]}/20"]
        for k in (1, 2, 3)
    ]
    rows.append([
        "k=3 + corrupt vendor",
        f"pings={results['prevent_corrupt'][0]}/20",
        f"copies died={results['prevent_corrupt'][1]}",
        "PREVENTED",
    ])
    rows.append([
        "k=2 + blackhole vendor",
        f"pings={results['detect_blackhole'][0]}/20",
        f"alarms={results['detect_blackhole'][1]}",
        "DETECTED",
    ])
    emit("Section VII virtualized NetCo\n" + format_table(
        ["configuration", "a", "b", "c"], rows))
    benchmark.extra_info.update(
        {k: str(v) for k, v in results.items()}
    )

    # benign tunnels lose nothing and complete every cycle
    for k in (1, 2, 3):
        loss, rtt, received = results[f"benign_k{k}"]
        assert loss == 0.0 and received == 20
    # RTT grows mildly with k (more copies to queue/serve)
    assert results["benign_k1"][1] <= results["benign_k3"][1]
    # k=3 prevents: all cycles complete, tampered copies die unreleased
    assert results["prevent_corrupt"][0] == 20
    assert results["prevent_corrupt"][1] >= 20
    # k=2 detects: traffic stalls but alarms fire
    assert results["detect_blackhole"][0] == 0
    assert results["detect_blackhole"][1] > 0
