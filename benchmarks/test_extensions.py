"""Benchmarks for the Section IX extensions implemented beyond the
paper's prototype: sampling detection and the coarse-granular
(whole-network) combiner."""

from conftest import emit

from repro.adversary import PayloadCorruptionBehavior
from repro.analysis.report import format_table
from repro.core import ALARM_MINORITY_DIVERGENCE, build_sampling_chain
from repro.net import Network
from repro.scenarios.transport import build_transport_scenario
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def run_sampling_sweep():
    """Compare load and detection count as functions of the sample rate."""
    results = {}
    for rate in (0.0, 0.05, 0.2, 0.5, 1.0):
        net = Network(seed=41)
        chain = build_sampling_chain(net, "sc", k=2, sample_rate=rate)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        net.connect(h1, chain.endpoint_a)
        net.connect(h2, chain.endpoint_b)
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
        PayloadCorruptionBehavior().attach(chain.router(1))
        flow = run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6,
                            duration=0.05)
        chain.compare_core.flush()
        results[rate] = (
            flow.received_unique,
            chain.compare_core.stats.submissions,
            chain.alarms.count(ALARM_MINORITY_DIVERGENCE),
        )
    return results


def run_transport_sweep():
    """Whole-network replication: RTT overhead vs replica depth."""
    results = {}
    for depth in (1, 2, 4, 8):
        net, combiner, src, dst = build_transport_scenario(
            k=3, depth=depth, seed=42
        )
        ping = run_ping(PathEndpoints(net, src, dst), count=20, interval=1e-3)
        results[depth] = (ping.avg_rtt_ms, ping.received)
    return results


def test_sampling_tradeoff(benchmark):
    results = benchmark.pedantic(run_sampling_sweep, rounds=1, iterations=1)
    rows = [
        [f"{rate:.0%}", str(delivered), str(load), str(alarms)]
        for rate, (delivered, load, alarms) in sorted(results.items())
    ]
    emit("Extension: sampling detection (k=2, corrupt secondary)\n"
         + format_table(["sample rate", "delivered", "compare copies",
                         "divergence alarms"], rows))
    benchmark.extra_info.update({f"{r:.0%}": str(v) for r, v in results.items()})

    delivered_counts = {r: v[0] for r, v in results.items()}
    loads = {r: v[1] for r, v in results.items()}
    alarms = {r: v[2] for r, v in results.items()}
    # delivery unaffected by sampling (the primary always forwards)
    assert len(set(delivered_counts.values())) == 1
    # compare load and detections scale with the rate
    assert loads[0.0] == 0 and alarms[0.0] == 0
    assert loads[0.05] < loads[0.5] < loads[1.0]
    assert alarms[0.05] < alarms[1.0]
    # at full sampling every tampered packet is caught
    assert alarms[1.0] >= delivered_counts[1.0]


def test_transport_combiner_scaling(benchmark):
    results = benchmark.pedantic(run_transport_sweep, rounds=1, iterations=1)
    rows = [
        [str(depth), f"{rtt:.3f}", f"{received}/20"]
        for depth, (rtt, received) in sorted(results.items())
    ]
    emit("Extension: coarse-granular combiner (k=3 replica networks)\n"
         + format_table(["network depth", "avg RTT ms", "pings"], rows))
    benchmark.extra_info.update(
        {f"depth{d}": round(v[0], 4) for d, v in results.items()}
    )

    for depth, (rtt, received) in results.items():
        assert received == 20
    rtts = [results[d][0] for d in (1, 2, 4, 8)]
    assert rtts == sorted(rtts)  # deeper networks cost linearly more RTT
