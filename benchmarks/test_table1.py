"""Table I — average TCP bandwidth, UDP bandwidth and RTT for the five
scenarios Linespeed, Dup3, Dup5, Central3, Central5.

Paper values (Mbit/s, Mbit/s, ms):

    linespeed 474 / 278 / 0.181     dup3 122 / 266 / 0.189
    dup5       72 / 149 / 0.26      central3 145 / 245 / 0.319
    central5   78 / 156 / 0.415
"""

from conftest import emit

from repro.analysis import paper_table1_values, render_table1, run_table1


def test_table1(benchmark):
    values = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit(render_table1(values, paper=paper_table1_values()))
    for metric in ("tcp_mbps", "udp_mbps", "rtt_ms"):
        for scenario, value in values[metric].items():
            benchmark.extra_info[f"{scenario}.{metric}"] = round(value, 3)

    tcp, udp, rtt = values["tcp_mbps"], values["udp_mbps"], values["rtt_ms"]
    # security costs bandwidth (Section V-B's "first general observation")
    assert tcp["linespeed"] > tcp["central3"] > tcp["central5"]
    assert tcp["linespeed"] > tcp["dup3"] > tcp["dup5"]
    assert udp["linespeed"] >= udp["central3"] > udp["central5"]
    # combining beats plain duplication for TCP
    assert tcp["central3"] > tcp["dup3"]
    assert tcp["central5"] > tcp["dup5"]
    # RTT grows monotonically with security level
    assert (
        rtt["linespeed"] < rtt["dup3"] < rtt["dup5"]
        < rtt["central3"] < rtt["central5"]
    )
