"""Observability overhead: disabled vs 1%-sampled vs full tracing.

The obs stack's contract is that you only pay for what you switch on:

* **plain** — the tier-1 configuration: default (disabled) registry,
  no tracer.  Components bind ``None`` instruments and skip every
  metric call with one ``is not None`` test per packet.
* **armed-disabled** — a tracer is attached (its prefix listeners are
  live on the trace bus) but the sampling rate is 0 and the active
  registry is disabled: this measures the standing cost of the obs
  machinery when it observes nothing.
* **sampled 1%** — enabled registry + 1% packet-trace sampling, the
  recommended always-on production setting.
* **full** — enabled registry + every packet traced (the case-study /
  debugging setting; expensive by design).

The workload is one fixed central3 UDP flow (the fig5 operating point).
Results go to ``BENCH_obs_overhead.json`` (override with
``BENCH_OBS_OUT``), and the headline disabled-mode ratio is merged into
``BENCH_hotpath.json`` when that file exists so the hot-path regression
gate sees it.

Run with::

    pytest benchmarks/test_obs_overhead.py -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import PacketTracer
from repro.scenarios.testbed import build_testbed
from repro.traffic.iperf import run_udp_flow

RESULTS: Dict[str, Dict[str, float]] = {}

RATE_BPS = 200e6
DURATION = 0.01
SEED = 1


def _run_workload(registry=None, sample_rate=None) -> float:
    """One central3 UDP flow; returns wall-clock seconds."""
    t0 = time.perf_counter()
    if registry is not None:
        with use_registry(registry):
            testbed = build_testbed("central3", seed=SEED)
    else:
        testbed = build_testbed("central3", seed=SEED)
    if sample_rate is not None:
        tracer = PacketTracer(testbed.network.trace, sample_rate=sample_rate)
        tracer.attach(testbed.network)
    result = run_udp_flow(
        testbed.path(),
        rate_bps=RATE_BPS,
        duration=DURATION,
        send_cost=testbed.params.udp_send_cost,
    )
    testbed.compare_core.flush()
    elapsed = time.perf_counter() - t0
    assert result.received_unique > 0
    return elapsed


def _best_of(n: int, **kwargs) -> float:
    return min(_run_workload(**kwargs) for _ in range(n))


def _mode(name: str, seconds: float, plain: float) -> None:
    RESULTS[name] = {
        "seconds": round(seconds, 4),
        "ratio_vs_plain": round(seconds / plain, 4),
    }


def test_overhead_modes():
    plain = _best_of(3)
    armed = _best_of(3, registry=MetricsRegistry(enabled=False), sample_rate=0.0)
    sampled = _best_of(2, registry=MetricsRegistry(enabled=True), sample_rate=0.01)
    full = _best_of(2, registry=MetricsRegistry(enabled=True), sample_rate=1.0)

    _mode("plain", plain, plain)
    _mode("armed_disabled", armed, plain)
    _mode("sampled_1pct", sampled, plain)
    _mode("full_trace", full, plain)

    # Loose bounds: benchmarks are not tier-1 and CI machines are noisy,
    # but an order-of-magnitude break should still fail loudly.  The
    # tight (5% / 15%) criteria are enforced against the cross-machine
    # normalised hot-path baseline, not against one noisy wall-clock.
    assert armed / plain < 1.30, (
        f"disabled obs costs {armed / plain:.2f}x the plain run"
    )
    assert sampled / plain < 1.60, (
        f"1% sampling costs {sampled / plain:.2f}x the plain run"
    )
    assert full / plain < 5.0, (
        f"full tracing costs {full / plain:.2f}x the plain run"
    )


def test_dump_results():
    """Write the JSON artifacts (runs after the timing test)."""
    assert RESULTS, "timing test did not run"
    out = os.environ.get("BENCH_OBS_OUT", "BENCH_obs_overhead.json")
    payload = {
        "schema": "obs-overhead-bench-v1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {"variant": "central3", "rate_bps": RATE_BPS,
                     "duration": DURATION, "seed": SEED},
        "results": RESULTS,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # surface the disabled-mode ratio in the hot-path bench results too
    hotpath = os.environ.get("BENCH_HOTPATH_OUT", "BENCH_hotpath.json")
    if os.path.exists(hotpath):
        with open(hotpath, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data.setdefault("results", {})["obs_disabled_ratio"] = {
            "us": 0.0,
            "normalised": 0.0,
            "ratio": RESULTS["armed_disabled"]["ratio_vs_plain"],
        }
        with open(hotpath, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
