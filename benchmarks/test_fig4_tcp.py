"""Figure 4 — TCP throughput for all six scenarios, including POX3.

The paper's qualitative claims: throughput decreases with the number of
untrusted routers; combining (CentralK) beats plain duplication (DupK);
the POX controller compare is far slower than the C compare.
"""

from conftest import emit

from repro.analysis import ALL_SCENARIOS, render_record, run_fig4_tcp


def test_fig4_tcp_throughput(benchmark):
    record = benchmark.pedantic(
        run_fig4_tcp, args=(ALL_SCENARIOS,), rounds=1, iterations=1
    )
    emit(render_record(record))
    values = {row.scenario: row.value for row in record.rows}
    for scenario, value in values.items():
        benchmark.extra_info[scenario] = round(value, 1)

    assert values["linespeed"] > values["central3"] > values["central5"]
    assert values["linespeed"] > values["dup3"] > values["dup5"]
    assert values["central3"] > values["dup3"]
    assert values["central5"] > values["dup5"]
    # POX3 pays the control channel + interpreted compare on every packet
    assert values["pox3"] < values["central3"] / 3
    # rough factor check against the paper: linespeed ~3x central3
    assert 2.0 < values["linespeed"] / values["central3"] < 6.0
