"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure from the paper's
evaluation (Section V-VII).  The simulated experiment runs once inside
``benchmark.pedantic`` (wall-clock timing of the simulation itself), the
reproduced rows/series are printed in the paper's layout, and the shape
assertions that make the reproduction meaningful are checked.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a report block so it survives pytest's capture settings."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
