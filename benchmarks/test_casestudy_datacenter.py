"""Section VI — the datacenter routing attack case study.

Reproduces the paper's three scenario runs and their exact counts:

* baseline: 10 requests sent, 10 at fw1, 10 responses at vm1, no strays;
* attack: "After 10 requests sent, we witness 20 requests arriving at
  fw1 and 0 responses arriving at vm1";
* NetCo-protected: all 10 cycles complete, the mirrored copies reach the
  compare but never leave it, and responses win with 2-of-3 votes.
"""

from conftest import emit

from repro.analysis.report import format_table
from repro.scenarios.datacenter import DatacenterCaseStudy


def run_all():
    study = DatacenterCaseStudy(seed=1, echo_count=10)
    return study.run_baseline(), study.run_attack(), study.run_protected()


def test_casestudy(benchmark):
    baseline, attack, protected = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = []
    for result in (baseline, attack, protected):
        rows.append(
            [
                result.scenario,
                str(result.requests_sent),
                str(result.requests_at_fw1),
                str(result.responses_at_vm1),
                str(result.screening.strays),
                ",".join(result.screening.stray_nodes) or "-",
            ]
        )
    emit(
        "Section VI case study (10 ICMP echo cycles vm1 -> fw1)\n"
        + format_table(
            ["scenario", "sent", "req@fw1", "resp@vm1", "strays", "stray nodes"],
            rows,
        )
    )
    benchmark.extra_info["attack_requests_at_fw1"] = attack.requests_at_fw1
    benchmark.extra_info["protected_cycles"] = protected.responses_at_vm1

    # paper scenario 1: 10 perfect cycles, no strays on two screening
    # methods
    assert baseline.requests_at_fw1 == 10
    assert baseline.responses_at_vm1 == 10
    assert baseline.screening.strays == 0

    # paper scenario 2: 20 requests at fw1, 0 responses at vm1
    assert attack.requests_at_fw1 == 20
    assert attack.responses_at_vm1 == 0
    assert attack.screening.stray_nodes == ["core1"]

    # paper scenario 3: NetCo masks the attack completely
    assert protected.requests_at_fw1 == 10
    assert protected.responses_at_vm1 == 10
    assert protected.screening.strays == 0
    assert protected.compare_expired_unreleased >= 10  # mirrored copies died
    assert protected.single_source_alarms >= 10
    assert protected.compare_released == 20  # 10 requests + 10 responses
