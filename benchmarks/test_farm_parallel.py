"""Farm determinism benchmark: sharded Figure 7 vs the serial runner.

Times the sharded execution path (2 worker processes) and pins the
subsystem's core guarantee: the parallel merge is bit-identical to the
serial record, because results are keyed by spec content hash rather
than completion order.
"""

from conftest import emit

from repro.analysis import render_record, run_fig7_rtt
from repro.farm import FarmExecutor

SCENARIOS = ("linespeed", "dup3", "central3")
KWARGS = dict(scenarios=SCENARIOS, count=20, sequences=2, seed=1)


def test_farm_parallel_fig7_matches_serial(benchmark):
    parallel = benchmark.pedantic(
        lambda: run_fig7_rtt(farm=FarmExecutor(jobs=2), **KWARGS),
        rounds=1,
        iterations=1,
    )
    serial = run_fig7_rtt(**KWARGS)
    emit(render_record(parallel))

    assert parallel.to_dict() == serial.to_dict()
    farm = FarmExecutor(jobs=2)
    rerun = run_fig7_rtt(farm=farm, **KWARGS)
    assert rerun.to_dict() == serial.to_dict()
    assert farm.progress.failed == 0
    assert farm.progress.done == farm.progress.queued
