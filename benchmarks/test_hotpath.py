"""Micro/macro benchmarks for the per-packet hot loop.

Times the five paths the hot-loop optimisation targets — serialisation,
compare vote-keying, k-way fan-out, flow-table lookup and event churn —
and writes machine-readable results to ``BENCH_hotpath.json`` (override
the location with ``BENCH_HOTPATH_OUT``).

Every sample is also *normalised* by a small pure-Python calibration loop
timed on the same machine, so the checked-in baseline
(``hotpath_baseline.json``) can gate regressions across hosts of very
different speeds: see ``check_hotpath_regression.py``.

The two ``test_speedup_*`` tests assert the headline acceptance
criterion of the optimisation PR directly: serialising / vote-keying a
packet whose wire image is cached must be at least 2x faster than the
cold path (in practice it is orders of magnitude faster).

Run with::

    pytest benchmarks/test_hotpath.py -q
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict

import pytest

from repro.core.policy import BitExactPolicy, HeaderOnlyPolicy
from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import Packet, internet_checksum
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable, _rank
from repro.openflow.match import Match
from repro.sim.engine import Simulator

#: name -> {"us": per-call microseconds, "normalised": us / calibration_us}
RESULTS: Dict[str, Dict[str, float]] = {}
_CALIBRATION_US = None

PAYLOAD = bytes(range(256)) * 5 + bytes(120)  # 1400 B, fig5-sized


def _packet(seq: int = 0) -> Packet:
    return Packet.udp(
        src_mac=MacAddress.from_index(1),
        dst_mac=MacAddress.from_index(2),
        src_ip=IpAddress.from_index(1),
        dst_ip=IpAddress.from_index(2),
        sport=5001,
        dport=5002,
        payload=PAYLOAD,
        ident=seq,
    )


def _time_per_call(fn: Callable[[], None], min_time: float = 0.02,
                   repeats: int = 3) -> float:
    """Best-of-``repeats`` per-call time in microseconds."""
    number = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time or number >= 1_000_000:
            break
        number *= 2
    best = elapsed / number
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / number)
    return best * 1e6


def _calibration_us() -> float:
    """Per-call cost of a fixed pure-Python loop (machine speed proxy)."""
    global _CALIBRATION_US
    if _CALIBRATION_US is None:
        def spin(n=1000, _range=range):
            acc = 0
            for i in _range(n):
                acc += i
            return acc

        _CALIBRATION_US = _time_per_call(spin)
    return _CALIBRATION_US


def _record(name: str, us: float) -> float:
    RESULTS[name] = {
        "us": round(us, 4),
        "normalised": round(us / _calibration_us(), 6),
    }
    return us


@pytest.fixture(scope="module", autouse=True)
def _dump_results():
    yield
    payload = {
        "schema": "hotpath-bench-v1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_us": round(_calibration_us(), 4),
        "results": RESULTS,
    }
    override = os.environ.get("BENCH_HOTPATH_OUT")
    if override:
        outputs = [override]
    else:
        # Write the snapshot both next to this file and at the repo root,
        # so the perf trajectory is visible regardless of the pytest cwd.
        here = os.path.dirname(os.path.abspath(__file__))
        outputs = [
            os.path.join(here, "BENCH_hotpath.json"),
            os.path.join(os.path.dirname(here), "BENCH_hotpath.json"),
        ]
    for out in outputs:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


# ----------------------------------------------------------------------
# serialisation + vote keys
# ----------------------------------------------------------------------
def test_serialise_cold_vs_cached():
    packet = _packet()
    cold = _record("serialise_cold", _time_per_call(packet._serialise))
    packet.to_bytes()  # warm
    cached = _record("serialise_cached", _time_per_call(packet.to_bytes))
    assert packet.to_bytes() == packet._serialise()
    RESULTS["serialise_speedup"] = {"us": 0.0, "normalised": 0.0,
                                    "ratio": round(cold / cached, 1)}


def test_speedup_serialise_at_least_2x():
    packet = _packet()
    cold = _time_per_call(packet._serialise)
    packet.to_bytes()
    cached = _time_per_call(packet.to_bytes)
    assert cold >= 2.0 * cached, (
        f"cached serialise not >=2x faster: cold={cold:.2f}us cached={cached:.2f}us"
    )


def test_votekey_cold_vs_cached():
    policy = BitExactPolicy()
    packet = _packet()

    def cold_key():
        packet._wire = None  # force a full re-serialisation
        policy.key(packet)

    cold = _record("votekey_cold", _time_per_call(cold_key))
    packet.to_bytes()
    cached = _record("votekey_cached", _time_per_call(lambda: policy.key(packet)))
    RESULTS["votekey_speedup"] = {"us": 0.0, "normalised": 0.0,
                                  "ratio": round(cold / cached, 1)}


def test_speedup_votekey_at_least_2x():
    policy = BitExactPolicy()
    packet = _packet()

    def cold_key():
        packet._wire = None
        policy.key(packet)

    cold = _time_per_call(cold_key)
    packet.to_bytes()
    cached = _time_per_call(lambda: policy.key(packet))
    assert cold >= 2.0 * cached, (
        f"cached vote key not >=2x faster: cold={cold:.2f}us cached={cached:.2f}us"
    )


def test_headeronly_key_cached():
    policy = HeaderOnlyPolicy()
    packet = _packet()
    packet.to_bytes()
    _record("headeronly_key_cached", _time_per_call(lambda: policy.key(packet)))


def test_checksum_1400B():
    _record("checksum_1400B", _time_per_call(lambda: internet_checksum(PAYLOAD)))


# ----------------------------------------------------------------------
# fan-out (hub + compare ingress path)
# ----------------------------------------------------------------------
def test_fanout_copy_and_key():
    """The Central-5 per-packet pattern: 5 CoW copies, each vote-keyed."""
    policy = BitExactPolicy()
    packet = _packet()
    packet.to_bytes()  # endpoint warms the cache before fanning out

    def fanout():
        for _ in range(5):
            policy.key(packet.copy())

    _record("fanout5_copy_and_key", _time_per_call(fanout))


def test_copy():
    packet = _packet()
    packet.to_bytes()
    _record("copy_warm", _time_per_call(packet.copy))


# ----------------------------------------------------------------------
# packet trains (batch tier)
# ----------------------------------------------------------------------
_TRAIN = 32


def _batch(train: int = _TRAIN):
    """A fig5-shaped train: 12-byte seq/ts heads like ``traffic/udp.py``."""
    import struct

    from repro.net.packet import PacketBatch

    template = _packet()
    heads = [struct.pack("!IQ", i, 1_000_000 + i) for i in range(train)]
    idents = list(range(train))
    return PacketBatch(template, heads, idents,
                       seqs=list(range(train)),
                       ts_ns=[1_000_000 + i for i in range(train)])


def test_batch_serialise_vs_per_packet():
    """Building one train's contiguous wire buffer vs 32 cold serialises."""
    def per_packet():
        for i in range(_TRAIN):
            _packet(seq=i)._serialise()

    cold = _record("serialise_train32_per_packet", _time_per_call(per_packet))

    def batched():
        batch = _batch()
        batch.wire_buffer()

    us = _record("serialise_train32_batched", _time_per_call(batched))
    RESULTS["batch_serialise_speedup"] = {"us": 0.0, "normalised": 0.0,
                                          "ratio": round(cold / us, 1)}
    assert cold >= 2.0 * us, (
        f"batched train serialise not >=2x faster: "
        f"per-packet={cold:.1f}us batched={us:.1f}us"
    )


def test_batch_ttl_sweep_vs_per_packet():
    """One batch TTL sweep vs decrementing 32 materialised packets."""
    packets = [_packet(seq=i) for i in range(_TRAIN)]
    for pkt in packets:
        pkt.to_bytes()

    # each timed call decrements then restores, so repeated timing loops
    # never drive the TTL out of range
    def per_packet():
        for pkt in packets:
            pkt.decrement_ttl()
        for pkt in packets:
            pkt.decrement_ttl(-1)

    cold = _record("ttl_train32_per_packet", _time_per_call(per_packet))

    batch = _batch()
    batch.wire_buffer()

    def batched():
        batch.decrement_ttl()
        batch.decrement_ttl(-1)

    us = _record("ttl_train32_batched", _time_per_call(batched))
    RESULTS["batch_ttl_speedup"] = {"us": 0.0, "normalised": 0.0,
                                    "ratio": round(cold / us, 1)}


def test_hub_batch_fanout_vs_per_packet():
    """A 5-branch hub fanning one train: shared batch vs per-packet copies."""
    from repro.core.hub import Hub
    from repro.net.topology import Network

    def build(train):
        net = Network(seed=1, batch_train=train)
        hub = Hub(net.sim, "hub")
        net.add_node(hub)
        feeder = net.add_host("src")
        for b in range(5):
            sink = net.add_host(f"sink{b}", promiscuous=True)
            net.connect(hub, sink, queue_capacity=10_000_000)
        net.connect(feeder, hub, port_b=1, queue_capacity=10_000_000)
        return net, hub

    net1, hub1 = build(1)
    packets = [_packet(seq=i) for i in range(_TRAIN)]
    in_port = hub1.port(1)

    def per_packet():
        for pkt in packets:
            hub1.receive(pkt, in_port)

    cold = _record("hub_fanout_train32_per_packet", _time_per_call(per_packet))

    net32, hub32 = build(32)
    batch = _batch()
    in_port32 = hub32.port(1)

    def batched():
        for i in range(_TRAIN):
            hub32.receive_batch_packet(batch, i, in_port32)

    us = _record("hub_fanout_train32_batched", _time_per_call(batched))
    RESULTS["hub_fanout_speedup"] = {"us": 0.0, "normalised": 0.0,
                                     "ratio": round(cold / us, 2)}
    # Both paths are dominated by per-delivery link scheduling (which the
    # shared-CPU ordering invariant keeps per-packet; see DESIGN.md), so
    # the batch win here is only the avoided per-branch copies.  Gate
    # against regression, not for a speedup.
    assert us <= cold * 1.5, (
        f"hub batch fan-out regressed vs per-packet: "
        f"per-packet={cold:.1f}us batched={us:.1f}us"
    )


# ----------------------------------------------------------------------
# flow-table lookup
# ----------------------------------------------------------------------
def _reference_scan(entries, packet, in_port, now):
    """The pre-index linear scan, kept as the comparison baseline."""
    for entry in sorted(entries, key=_rank):
        if entry.expired(now):
            continue
        if entry.match.matches(packet, in_port):
            return entry
    return None


def _indexed_table(n: int = 64):
    table = FlowTable()
    packets = [_packet(seq=i) for i in range(n)]
    for i, pkt in enumerate(packets):
        # Give every flow its own addresses so the table is n distinct
        # exact entries, like a reactive learning controller builds.
        pkt.eth.src = MacAddress.from_index(100 + i)
        pkt.ip.src = IpAddress.from_index(100 + i)
        table.add(FlowEntry(Match.from_packet(pkt, in_port=1), [Output(2)]))
    return table, packets


def test_lookup_indexed_vs_scan():
    table, packets = _indexed_table()
    hits = {"n": 0}

    def indexed():
        hits["n"] += 1
        table.lookup(packets[hits["n"] % len(packets)], 1, now=0.0)

    indexed_us = _record("lookup_indexed_64", _time_per_call(indexed))

    entries = table.entries

    def scanned():
        hits["n"] += 1
        _reference_scan(entries, packets[hits["n"] % len(packets)], 1, 0.0)

    scan_us = _record("lookup_scan_64", _time_per_call(scanned))
    RESULTS["lookup_speedup"] = {"us": 0.0, "normalised": 0.0,
                                 "ratio": round(scan_us / indexed_us, 1)}


# ----------------------------------------------------------------------
# event core
# ----------------------------------------------------------------------
def test_event_churn():
    """Schedule/cancel/run churn typical of retransmission timers."""

    def churn():
        sim = Simulator()
        handles = [sim.schedule(1e-3 * i, lambda: None) for i in range(200)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending_events() == 100
        sim.run()

    _record("event_churn_200", _time_per_call(churn, min_time=0.05))


def test_pending_events_o1():
    sim = Simulator()
    for i in range(5000):
        sim.schedule(1e-3 * i, lambda: None)
    _record("pending_events_5k", _time_per_call(sim.pending_events))


# ----------------------------------------------------------------------
# macro: the fig5 UDP sweep (quick shape), wall-clock
# ----------------------------------------------------------------------
_FIG5_RECORD = None


def test_macro_fig5_quick():
    global _FIG5_RECORD
    from repro.analysis.runners import run_fig5_udp

    t0 = time.perf_counter()
    record = run_fig5_udp(duration=0.04, iterations=6, farm=None)
    elapsed = time.perf_counter() - t0
    assert record.rows, "fig5 produced no rows"
    _FIG5_RECORD = record
    RESULTS["macro_fig5_quick"] = {
        "us": round(elapsed * 1e6, 1),
        "normalised": round(elapsed * 1e6 / _calibration_us(), 2),
        "seconds": round(elapsed, 2),
    }


def test_macro_fig5_quick_train32():
    """The same fig5 sweep through the batch tier: faster, bit-identical.

    The speedup floor here is deliberately modest (the CI batch-smoke job
    gates the real floor): the shared-CPU admission ordering documented in
    DESIGN.md caps the batch tier near 2x on this macro, and benchmark
    hosts are noisy.  Record identity, by contrast, is exact and gated
    hard.
    """
    from repro.analysis.runners import run_fig5_udp
    from repro.scenarios.testbed import TestbedParams

    assert _FIG5_RECORD is not None, "train=1 macro must run first"
    t0 = time.perf_counter()
    record = run_fig5_udp(
        duration=0.04, iterations=6, farm=None,
        params=TestbedParams(batch_train=32),
    )
    elapsed = time.perf_counter() - t0
    base = RESULTS["macro_fig5_quick"]["seconds"]
    speedup = base / elapsed if elapsed > 0 else float("inf")
    RESULTS["macro_fig5_quick_train32"] = {
        "us": round(elapsed * 1e6, 1),
        "normalised": round(elapsed * 1e6 / _calibration_us(), 2),
        "seconds": round(elapsed, 2),
        "speedup_vs_train1": round(speedup, 2),
    }
    assert record.rows == _FIG5_RECORD.rows, (
        "train=32 fig5 records differ from train=1"
    )
    assert speedup >= 1.2, (
        f"batch tier macro speedup collapsed: {speedup:.2f}x"
    )
