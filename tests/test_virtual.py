"""Tests for the virtualized NetCo (Section VII)."""

import pytest

from repro.adversary import (
    BlackholeBehavior,
    HeaderRewriteBehavior,
    PayloadCorruptionBehavior,
    ReplayFloodBehavior,
    vlan_rewrite,
)
from repro.core import ALARM_ROUTER_UNAVAILABLE, ALARM_SINGLE_SOURCE_PACKET
from repro.net import NetworkError, Packet
from repro.scenarios.virtualized import build_virtualized_scenario
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


class TestProvisioning:
    def test_paths_are_node_disjoint(self):
        scenario = build_virtualized_scenario(k=3)
        paths = scenario.combiner.paths
        assert len(paths) == 3
        interiors = [set(p[1:-1]) for p in paths]
        assert not (interiors[0] & interiors[1])
        assert not (interiors[0] & interiors[2])

    def test_vlan_rules_installed_on_transits(self):
        scenario = build_virtualized_scenario(k=3)
        for i, transit in enumerate(scenario.transits):
            vids = [e.match.dl_vlan for e in transit.table]
            assert scenario.combiner.vids[i] in vids

    def test_insufficient_paths_rejected(self):
        with pytest.raises((NetworkError, ValueError)):
            build_virtualized_scenario(k=4, paths_available=3)

    def test_unprotected_traffic_not_split(self):
        scenario = build_virtualized_scenario(k=3)
        # dst -> src is unprotected; ingress pipeline handles it normally
        net, src, dst = scenario.network, scenario.src, scenario.dst
        got = []
        src.bind_udp(7, got.append)
        dst.send(Packet.udp(dst.mac, src.mac, dst.ip, src.ip, 1, 7))
        net.run()
        assert len(got) == 1
        assert scenario.ingress.split_packets == 0


class TestBenignFlow:
    def test_ping_through_tunnels(self):
        scenario = build_virtualized_scenario(k=3)
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=5, interval=1e-3,
        )
        assert result.received == 5
        assert result.duplicates == 0
        assert scenario.ingress.split_packets == 5
        assert scenario.egress.recombined == 5

    def test_udp_through_tunnels_no_duplicates(self):
        scenario = build_virtualized_scenario(k=3)
        result = run_udp_flow(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            rate_bps=10e6, duration=0.02,
        )
        assert result.loss_rate == 0.0
        assert result.duplicates == 0

    def test_k2_benign_flow(self):
        scenario = build_virtualized_scenario(k=2)
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=5, interval=1e-3,
        )
        assert result.received == 5

    def test_copies_arrive_tagged_per_path(self):
        scenario = build_virtualized_scenario(k=3)
        seen_vids = []
        for transit in scenario.transits:
            for port in transit.ports.values():
                port.taps.append(
                    lambda p, t=transit: seen_vids.append(
                        (t.name, p.vlan.vid if p.vlan else None)
                    )
                )
        run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=1, interval=1e-3,
        )
        tagged = {(name, vid) for name, vid in seen_vids if vid is not None}
        assert len({vid for _name, vid in tagged}) == 3


class TestAttacksPrevention:
    def test_k3_masks_payload_corruption(self):
        scenario = build_virtualized_scenario(k=3)
        PayloadCorruptionBehavior().attach(scenario.transit(1))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=10, interval=1e-3,
        )
        assert result.received == 10

    def test_k3_masks_blackhole_with_alarm(self):
        # transit 0 also carries the unprotected reverse path, so attack
        # transit 2, which only carries protected copies
        scenario = build_virtualized_scenario(k=3)
        BlackholeBehavior().attach(scenario.transit(2))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=12, interval=1e-3,
        )
        assert result.received == 12
        scenario.compare_core.flush()
        assert scenario.compare_core.alarms.count(ALARM_ROUTER_UNAVAILABLE) >= 1

    def test_k3_masks_tunnel_label_rewrite(self):
        # a transit moving its copy into another tunnel's VLAN produces a
        # duplicate vote on that branch, not a majority
        scenario = build_virtualized_scenario(k=3)
        victim_vid = scenario.combiner.vids[0]
        HeaderRewriteBehavior(vlan_rewrite(victim_vid)).attach(scenario.transit(1))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=5, interval=1e-3,
        )
        assert result.received == 5


class TestAttacksDetection:
    def test_k2_detects_corruption_by_stalling(self):
        scenario = build_virtualized_scenario(k=2)
        PayloadCorruptionBehavior().attach(scenario.transit(0))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=5, interval=1e-3,
        )
        assert result.received == 0
        scenario.compare_core.flush()
        assert scenario.compare_core.alarms.count(ALARM_SINGLE_SOURCE_PACKET) > 0

    def test_k2_detects_blackhole(self):
        scenario = build_virtualized_scenario(k=2)
        BlackholeBehavior().attach(scenario.transit(1))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=5, interval=1e-3,
        )
        assert result.received == 0

    def test_replay_flood_detected(self):
        scenario = build_virtualized_scenario(k=3)
        ReplayFloodBehavior(amplification=20).attach(scenario.transit(0))
        run_udp_flow(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            rate_bps=5e6, duration=0.02,
        )
        assert scenario.compare_core.stats.branch_duplicates > 0
