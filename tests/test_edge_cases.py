"""Edge cases across modules that the mainline tests don't reach."""

import pytest

from repro.analysis.records import ExperimentRecord
from repro.net import MacAddress, Network, Packet
from repro.openflow import (
    Match,
    OpenFlowSwitch,
    Output,
    PacketOut,
    PORT_IN_PORT,
)


def pair_through_switch():
    net = Network(seed=61)
    s1 = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
    net.add_node(s1)
    h1 = net.add_host("h1", promiscuous=True)
    h2 = net.add_host("h2", promiscuous=True)
    net.connect(h1, s1)
    net.connect(h2, s1)
    return net, s1, h1, h2


class TestSwitchEdges:
    def test_in_port_virtual_output_hairpins(self):
        net, s1, h1, h2 = pair_through_switch()
        s1.install(Match.wildcard(), [Output(PORT_IN_PORT)])
        got = []
        h1.bind_raw(got.append)
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 2))
        net.run()
        assert len(got) == 1  # bounced straight back out the ingress

    def test_packet_out_with_stale_buffer_id(self):
        net, s1, h1, h2 = pair_through_switch()
        s1.handle_controller_message(
            PacketOut(packet=None, actions=[Output(1)], buffer_id=12345)
        )
        net.run()
        assert net.trace.count("switch.bad_buffer") == 1

    def test_packet_out_with_neither_packet_nor_buffer(self):
        net, s1, h1, h2 = pair_through_switch()
        s1.handle_controller_message(PacketOut(packet=None, actions=[Output(1)]))
        net.run()
        assert net.trace.count("switch.bad_packet_out") == 1

    def test_unknown_controller_message_traced(self):
        net, s1, h1, h2 = pair_through_switch()
        s1.handle_controller_message(object())
        assert net.trace.count("switch.unknown_message") == 1

    def test_packet_buffer_eviction_fifo(self):
        net, s1, h1, h2 = pair_through_switch()
        s1._packet_buffer_capacity = 2
        ids = [
            s1._buffer_packet(
                Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 2, ident=i), 1
            )
            for i in range(4)
        ]
        assert len(s1._packet_buffer) == 2
        assert ids[0] not in s1._packet_buffer
        assert ids[3] in s1._packet_buffer

    def test_flow_mod_with_unknown_command_traced(self):
        from repro.openflow import FlowMod

        net, s1, h1, h2 = pair_through_switch()
        s1.handle_controller_message(
            FlowMod(command="upsert", match=Match.wildcard())
        )
        assert net.trace.count("switch.bad_flow_mod") == 1


class TestNodeEdges:
    def test_send_on_unwired_port_is_noop(self):
        from repro.net import IpAddress

        net = Network(seed=62)
        s1 = OpenFlowSwitch(net.sim, "s1")
        net.add_node(s1)
        port = s1.add_port(5)
        port.send(
            Packet.udp(MacAddress(1), MacAddress(2), IpAddress(1), IpAddress(2), 1, 2)
        )
        # nothing to assert beyond "no crash"; the port has no link
        assert not port.is_wired

    def test_duplicate_port_number_rejected(self):
        from repro.net import NetworkError

        net = Network(seed=63)
        s1 = OpenFlowSwitch(net.sim, "s1")
        s1.add_port(3)
        with pytest.raises(NetworkError):
            s1.add_port(3)

    def test_port_lookup_error(self):
        from repro.net import NetworkError

        net = Network(seed=64)
        s1 = OpenFlowSwitch(net.sim, "s1")
        with pytest.raises(NetworkError):
            s1.port(42)

    def test_peer_property(self):
        net, s1, h1, h2 = pair_through_switch()
        assert h1.port(1).peer.node is s1
        unwired = s1.add_port(9)
        assert unwired.peer is None


class TestRecordsSerialisation:
    def test_json_roundtrip(self):
        record = ExperimentRecord("Table I", "averages")
        record.add("linespeed", "tcp_mbps", 481.0, "Mbit/s",
                   paper_value=474.0, loss_rate=0.001)
        data = record.to_json()
        clone = ExperimentRecord.from_dict(__import__("json").loads(data))
        assert clone.experiment == "Table I"
        assert clone.value_of("linespeed", "tcp_mbps") == 481.0
        assert clone.rows[0].paper_value == 474.0
        assert clone.rows[0].detail["loss_rate"] == 0.001

    def test_to_dict_is_plain_data(self):
        record = ExperimentRecord("x", "y")
        record.add("a", "m", 1.5, "u")
        data = record.to_dict()
        import json

        json.dumps(data)  # must be JSON-serialisable as-is
