"""Tests for the sampling-detection extension (Section IX)."""

import pytest

from repro.adversary import BlackholeBehavior, PayloadCorruptionBehavior
from repro.core import ALARM_MINORITY_DIVERGENCE
from repro.core.sampling import (
    SamplingEndpoint,
    build_sampling_chain,
    deterministic_sample,
)
from repro.net import Network
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def build_rig(sample_rate=0.25, k=2, seed=13):
    net = Network(seed=seed)
    chain = build_sampling_chain(net, "sc", k=k, sample_rate=sample_rate)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")
    return net, chain, h1, h2


class TestDeterministicSampling:
    def test_boundary_rates(self):
        assert deterministic_sample(b"anything", 1.0)
        assert not deterministic_sample(b"anything", 0.0)

    def test_same_key_same_decision(self):
        for key in (b"a", b"hello", b"\x00" * 40):
            assert deterministic_sample(key, 0.3) == deterministic_sample(key, 0.3)

    def test_rate_is_approximately_honoured(self):
        hits = sum(
            deterministic_sample(f"packet-{i}".encode(), 0.25) for i in range(4000)
        )
        assert 800 < hits < 1200

    def test_monotone_in_rate(self):
        # a packet sampled at rate r is sampled at every rate > r
        for i in range(200):
            key = f"k{i}".encode()
            if deterministic_sample(key, 0.1):
                assert deterministic_sample(key, 0.5)

    def test_invalid_rate_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            SamplingEndpoint(net.sim, "x", sample_rate=1.5)


class TestBenignOperation:
    def test_traffic_flows_without_duplicates(self):
        net, chain, h1, h2 = build_rig()
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
        assert result.received == 10
        assert result.duplicates == 0

    def test_compare_load_is_sampled_fraction(self):
        net, chain, h1, h2 = build_rig(sample_rate=0.2)
        flow = run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
        total = flow.received_unique
        sampled = chain.compare_core.stats.submissions / 2  # k = 2 copies
        assert total > 50
        assert sampled < total * 0.45  # well below full-combiner load
        assert sampled > total * 0.05

    def test_zero_rate_never_uses_compare(self):
        net, chain, h1, h2 = build_rig(sample_rate=0.0)
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=10e6, duration=0.02)
        assert chain.compare_core.stats.submissions == 0

    def test_benign_run_raises_no_divergence(self):
        net, chain, h1, h2 = build_rig(sample_rate=0.5)
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=10e6, duration=0.02)
        chain.compare_core.flush()
        assert chain.alarms.count(ALARM_MINORITY_DIVERGENCE) == 0

    def test_latency_unaffected_by_compare(self):
        # primary-branch forwarding never waits for the vote
        net, chain, h1, h2 = build_rig(sample_rate=1.0)
        sampled_rtt = run_ping(PathEndpoints(net, h1, h2), count=5).rtts.mean
        net2, chain2, h12, h22 = build_rig(sample_rate=0.0, seed=14)
        plain_rtt = run_ping(PathEndpoints(net2, h12, h22), count=5).rtts.mean
        assert sampled_rtt == pytest.approx(plain_rtt, rel=0.2)


class TestDetection:
    def test_divergent_secondary_detected(self):
        net, chain, h1, h2 = build_rig(sample_rate=0.5)
        PayloadCorruptionBehavior().attach(chain.router(1))  # non-primary
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05
        )
        assert result.loss_rate == 0.0  # primary path unaffected
        chain.compare_core.flush()
        assert chain.alarms.count(ALARM_MINORITY_DIVERGENCE) > 0

    def test_tampering_primary_is_detected_but_not_prevented(self):
        # the sampling trade-off, stated explicitly
        net, chain, h1, h2 = build_rig(sample_rate=0.5)
        PayloadCorruptionBehavior(flip_offset=20).attach(chain.router(0))
        corrupted = []
        h2.bind_raw(
            lambda p: corrupted.append(p)
            if len(p.payload) > 20 and p.payload[20] != 0 else None
        )
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
        chain.compare_core.flush()
        assert corrupted, "tampered packets do reach the host (no prevention)"
        assert chain.alarms.count(ALARM_MINORITY_DIVERGENCE) > 0, "but it is detected"

    def test_detection_probability_scales_with_rate(self):
        def divergences(rate):
            net, chain, h1, h2 = build_rig(sample_rate=rate, seed=15)
            PayloadCorruptionBehavior().attach(chain.router(1))
            run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
            chain.compare_core.flush()
            return chain.alarms.count(ALARM_MINORITY_DIVERGENCE)

        low, high = divergences(0.1), divergences(0.8)
        assert high > low > 0

    def test_blackholed_secondary_detected(self):
        net, chain, h1, h2 = build_rig(sample_rate=1.0)
        BlackholeBehavior().attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
        assert result.received == 10  # primary carries the traffic
        chain.compare_core.flush()
        assert chain.alarms.count(ALARM_MINORITY_DIVERGENCE) > 0
