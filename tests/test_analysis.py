"""Tests for experiment records, reporting and (smoke) runners."""

import pytest

from repro.analysis import (
    ExperimentRecord,
    PAPER_TABLE1,
    format_table,
    jitter_params,
    paper_table1_values,
    paper_value,
    render_record,
    render_series,
    render_table1,
)
from repro.analysis.records import MeasurementRow


class TestRecords:
    def test_add_and_query(self):
        record = ExperimentRecord("Figure X", "demo")
        record.add("linespeed", "tcp_mbps", 480.0, "Mbit/s", paper_value=474.0)
        record.add("central3", "tcp_mbps", 140.0, "Mbit/s", paper_value=145.0)
        assert record.value_of("linespeed", "tcp_mbps") == 480.0
        assert record.value_of("nope", "tcp_mbps") is None
        assert len(record.by_metric("tcp_mbps")) == 2

    def test_ordering(self):
        record = ExperimentRecord("x", "y")
        record.add("a", "m", 1.0, "u")
        record.add("b", "m", 3.0, "u")
        record.add("c", "m", 2.0, "u")
        assert record.ordering("m") == ["b", "c", "a"]
        assert record.ordering("m", descending=False) == ["a", "c", "b"]

    def test_ratio_to_paper(self):
        row = MeasurementRow("s", "m", 100.0, "u", paper_value=200.0)
        assert row.ratio_to_paper == 0.5
        assert MeasurementRow("s", "m", 1.0, "u").ratio_to_paper is None

    def test_paper_values_complete(self):
        scenarios = ("linespeed", "dup3", "dup5", "central3", "central5")
        metrics = ("tcp_mbps", "udp_mbps", "rtt_ms")
        for scenario in scenarios:
            for metric in metrics:
                assert paper_value(scenario, metric) is not None
        assert paper_value("pox3", "tcp_mbps") is None
        assert len(PAPER_TABLE1) == 15


class TestRendering:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[2:])) == 1

    def test_render_record_includes_paper_column(self):
        record = ExperimentRecord("Figure 4", "TCP throughput")
        record.add("linespeed", "tcp_mbps", 480.0, "Mbit/s", paper_value=474.0)
        text = render_record(record)
        assert "Figure 4" in text and "474" in text and "1.01x" in text

    def test_render_table1_layout(self):
        values = {
            "tcp_mbps": {"linespeed": 480.0, "central3": 140.0},
            "udp_mbps": {"linespeed": 280.0},
            "rtt_ms": {"linespeed": 0.17},
        }
        text = render_table1(values, paper=paper_table1_values())
        assert "TABLE I" in text
        assert "Linespeed" in text and "Central5" in text
        assert "(474)" in text

    def test_render_series(self):
        text = render_series("Figure 6", "offered", "loss", [(60, 0.0), (300, 0.12)])
        assert "Figure 6" in text and "300" in text


class TestRunnersSmoke:
    def test_jitter_params_tighten_cache(self):
        params = jitter_params()
        assert params.compare_cache_capacity < 100
        assert params.compare_buffer_timeout > 5e-3

    def test_fig6_sweep_smoke(self):
        from repro.analysis import run_fig6_loss_correlation

        points = run_fig6_loss_correlation(offered_mbps=(60, 300), duration=0.02)
        assert len(points) == 2
        (low_rate, low_good, low_loss), (hi_rate, hi_good, hi_loss) = points
        assert low_loss < hi_loss  # overload produces loss
        assert hi_good < hi_rate  # goodput saturates below offered

    def test_fig4_runner_smoke(self):
        from repro.analysis import run_fig4_tcp

        record = run_fig4_tcp(
            scenarios=("linespeed", "central3"), duration=0.03, repetitions=1
        )
        values = {r.scenario: r.value for r in record.rows}
        assert values["linespeed"] > values["central3"]
