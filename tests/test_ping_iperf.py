"""Tests for the ping harness and the iperf orchestration layer."""

import pytest

from repro.net import Network
from repro.scenarios.testbed import build_testbed
from repro.traffic import Pinger
from repro.traffic.iperf import (
    PathEndpoints,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)


def direct_pair(delay=100e-6, loss=0.0):
    net = Network(seed=8)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, h2, rate_bps=1e9, delay=delay, loss=loss,
                queue_capacity=5000)
    return net, h1, h2


class TestPinger:
    def test_all_replies_received(self):
        net, h1, h2 = direct_pair()
        pinger = Pinger(h1, h2.mac, h2.ip)
        pinger.run(count=10, interval=1e-3)
        net.run(until=0.1)
        result = pinger.result()
        assert result.sent == 10 and result.received == 10
        assert result.loss_rate == 0.0
        assert result.duplicates == 0

    def test_rtt_matches_path_delay(self):
        net, h1, h2 = direct_pair(delay=1e-3)
        pinger = Pinger(h1, h2.mac, h2.ip)
        pinger.run(count=5, interval=5e-3)
        net.run(until=0.1)
        result = pinger.result()
        assert result.avg_rtt_ms == pytest.approx(2.0, rel=0.05)
        assert result.min_rtt_ms <= result.avg_rtt_ms <= result.max_rtt_ms

    def test_loss_reported(self):
        net, h1, h2 = direct_pair(loss=0.3)
        pinger = Pinger(h1, h2.mac, h2.ip)
        pinger.run(count=50, interval=1e-3)
        net.run(until=0.2)
        result = pinger.result()
        assert result.received < 50
        assert result.loss_rate > 0.0

    def test_done_callback_fires(self):
        net, h1, h2 = direct_pair()
        done = []
        pinger = Pinger(h1, h2.mac, h2.ip)
        pinger.run(count=3, interval=1e-3, done_cb=lambda: done.append(net.sim.now))
        net.run(until=0.1)
        assert len(done) == 1

    def test_two_pingers_do_not_interfere(self):
        net, h1, h2 = direct_pair()
        h3 = net.add_host("h3")
        # h3 unwired; just check ident uniqueness between pingers on h1
        p1 = Pinger(h1, h2.mac, h2.ip)
        assert Pinger(h1, h2.mac, h2.ip).ident != p1.ident

    def test_host_still_answers_requests_while_pinging(self):
        net, h1, h2 = direct_pair()
        pinger = Pinger(h1, h2.mac, h2.ip)
        pinger.run(count=2, interval=1e-3)
        reverse = Pinger(h2, h1.mac, h1.ip)
        reverse.run(count=2, interval=1e-3)
        net.run(until=0.1)
        assert pinger.result().received == 2
        assert reverse.result().received == 2


class TestIperfRunners:
    def test_run_udp_flow(self):
        net, h1, h2 = direct_pair()
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.02
        )
        assert result.loss_rate == 0.0
        assert result.throughput_mbps == pytest.approx(20.0, rel=0.1)

    def test_run_tcp_flow(self):
        net, h1, h2 = direct_pair()
        result = run_tcp_flow(PathEndpoints(net, h1, h2), duration=0.05)
        assert result.throughput_mbps > 100

    def test_run_ping(self):
        net, h1, h2 = direct_pair()
        result = run_ping(PathEndpoints(net, h1, h2), count=10)
        assert result.received == 10

    def test_reversed_path(self):
        net, h1, h2 = direct_pair()
        path = PathEndpoints(net, h1, h2).reversed()
        assert path.client is h2 and path.server is h1
        result = run_ping(path, count=3)
        assert result.received == 3

    def test_find_max_udp_rate_converges_to_capacity(self):
        # testbed linespeed: capacity is the 42 us/datagram sender cost
        def factory():
            return build_testbed("linespeed", seed=1).path()

        rate, result = find_max_udp_rate(
            factory, duration=0.04, iterations=7, send_cost=42e-6
        )
        assert result.loss_rate <= 0.005
        assert result.throughput_mbps == pytest.approx(280, rel=0.05)

    def test_find_max_respects_loss_target(self):
        def factory():
            return build_testbed("central5", seed=1).path()

        _rate, result = find_max_udp_rate(
            factory, duration=0.04, iterations=6, send_cost=42e-6
        )
        assert result.loss_rate <= 0.005
