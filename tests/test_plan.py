"""Tests for declarative experiment plans (:mod:`repro.plan`).

Pins the three contracts the refactor rests on:

* the checked-in plan artefacts under ``examples/plans/`` are exactly
  what the builders produce, and every artefact round-trips to
  byte-identical JSON;
* plan expansion reproduces the historical ``specs_*`` loop nestings
  spec-key for spec-key (so cache entries and merged records survive);
* the legacy ``run_*`` shims and ``plan run`` produce bit-identical
  records.
"""

import glob
import json
import os

import pytest

from repro.analysis.runners import (
    ALL_SCENARIOS,
    TABLE1_SCENARIOS,
    run_chaos_battery,
    run_fig5_udp,
    run_table1,
)
from repro.analysis.tasks import params_to_dict
from repro.chaos import FaultSchedule, builtin_battery
from repro.farm.executor import FarmExecutor
from repro.farm.spec import RunSpec
from repro.plan import (
    ExperimentPlan,
    PlanStage,
    builtin_plan,
    builtin_plan_names,
    chaos_plan,
    fig4_plan,
    fig5_plan,
    fig6_plan,
    fig7_plan,
    fig8_plan,
    jitter_params,
    table1_plan,
)
from repro.plan.cli import plan_main
from repro.scenarios import scenario_names
from repro.scenarios.testbed import VARIANTS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLAN_DIR = os.path.join(REPO_ROOT, "examples", "plans")
CHAOS_SPEC = os.path.join(REPO_ROOT, "examples", "chaos_crash_central3.json")


def _read(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _keys(specs):
    return [spec.key for spec in specs]


class TestArtefacts:
    """Every shipped JSON artefact loads, validates and round-trips."""

    def test_every_builtin_plan_is_checked_in(self):
        for name in builtin_plan_names():
            assert os.path.exists(os.path.join(PLAN_DIR, f"{name}.json"))

    def test_plan_files_match_builders_byte_for_byte(self):
        for name in builtin_plan_names():
            text = _read(os.path.join(PLAN_DIR, f"{name}.json"))
            assert text == builtin_plan(name).to_json(), name

    def test_plan_files_validate_and_round_trip(self):
        paths = sorted(glob.glob(os.path.join(PLAN_DIR, "*.json")))
        assert paths
        for path in paths:
            text = _read(path)
            plan = ExperimentPlan.from_json(text)
            plan.validate()
            assert plan.expand()
            assert plan.to_json() == text, path
            assert ExperimentPlan.from_json(plan.to_json()).to_json() == text

    def test_chaos_schedule_artefact_round_trips(self):
        text = _read(CHAOS_SPEC)
        schedule = FaultSchedule.from_json(text)
        assert schedule.events
        canonical = json.dumps(schedule.to_dict(), indent=2, sort_keys=True) + "\n"
        assert canonical == text

    def test_chaos_schedule_artefact_embeds_in_a_plan(self):
        schedule = FaultSchedule.from_json_file(CHAOS_SPEC)
        plan = chaos_plan(schedules=[schedule.to_dict()], seeds=(1,))
        plan.validate()
        specs = plan.expand()
        assert len(specs) == 1
        assert specs[0].kwargs["schedule"]["name"] == "crash_central3"


class TestExpansionEquivalence:
    """Plan expansion == the historical hand-wired spec loops, key for
    key (content hashes are what the result cache and merge go by)."""

    def test_fig4_matches_legacy_loop(self):
        scenarios, duration, reps, seed = ("linespeed", "central3"), 0.06, 3, 1
        legacy = [
            RunSpec(
                "fig4.tcp",
                {"variant": variant, "duration": duration,
                 "reverse": bool(rep % 2), "params": None},
                seed=seed + rep,
            )
            for variant in scenarios
            for rep in range(reps)
        ]
        plan = fig4_plan(scenarios=scenarios, duration=duration,
                         repetitions=reps, seed=seed)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_fig5_matches_legacy_loop(self):
        legacy = [
            RunSpec(
                "fig5.udp_max",
                {"variant": variant, "duration": 0.04, "iterations": 6,
                 "params": None},
                seed=1,
            )
            for variant in ALL_SCENARIOS
        ]
        plan = fig5_plan(duration=0.04, iterations=6)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_fig6_matches_legacy_loop(self):
        rates = (60, 230, 350)
        legacy = [
            RunSpec(
                "fig6.udp_point",
                {"variant": "central3", "rate_mbps": rate, "duration": 0.04,
                 "params": None},
                seed=1,
            )
            for rate in rates
        ]
        plan = fig6_plan(offered_mbps=rates, duration=0.04)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_fig7_matches_legacy_loop(self):
        legacy = [
            RunSpec(
                "fig7.rtt",
                {"variant": variant, "count": 20, "params": None},
                seed=1 + rep,
            )
            for variant in TABLE1_SCENARIOS
            for rep in range(2)
        ]
        plan = fig7_plan(count=20, sequences=2)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_fig8_matches_legacy_loop(self):
        sizes = (128, 1470)
        tuned = params_to_dict(jitter_params())
        legacy = [
            RunSpec(
                "fig8.jitter",
                {"variant": variant, "payload_size": size, "rate_mbps": 10.0,
                 "duration": 0.05, "params": tuned},
                seed=1 + rep,
            )
            for variant in TABLE1_SCENARIOS
            for size in sizes
            for rep in range(2)
        ]
        plan = fig8_plan(payload_sizes=sizes, duration=0.05, repetitions=2)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_chaos_matches_legacy_loop(self):
        schedules = [s.to_dict() for s in builtin_battery().values()]
        legacy = [
            RunSpec(
                "chaos.run",
                {"variant": "central3", "schedule": schedule,
                 "duration": 0.04, "rate_mbps": 20.0, "params": None},
                seed=seed,
            )
            for schedule in schedules
            for seed in (1, 2)
        ]
        plan = chaos_plan(duration=0.04)
        assert _keys(plan.expand()) == _keys(legacy)

    def test_table1_is_one_batch_of_the_three_stages(self):
        plan = table1_plan()
        specs = plan.expand()
        tcp = fig4_plan(scenarios=TABLE1_SCENARIOS).expand()
        udp = fig5_plan(scenarios=TABLE1_SCENARIOS).expand()
        rtt = fig7_plan(sequences=2).expand()
        assert _keys(specs) == _keys(tcp) + _keys(udp) + _keys(rtt)

    def test_rep_args_cycle_by_seed_position(self):
        stage = fig4_plan(scenarios=("linespeed",), repetitions=4).stages[0]
        reverses = [spec.kwargs["reverse"] for spec in stage.expand()]
        assert reverses == [False, True, False, True]

    def test_sweep_axes_expand_in_sorted_name_order(self):
        stage = PlanStage(
            name="s", task="fig7.rtt", seeds=[1], merge={"kind": "records_list"},
            scenarios=["linespeed"], sweep={"b": [1, 2], "a": [10, 20]},
        )
        grid = [(s.kwargs["a"], s.kwargs["b"]) for s in stage.expand()]
        assert grid == [(10, 1), (10, 2), (20, 1), (20, 2)]


class TestValidation:
    def _stage(self, **overrides):
        fields = dict(
            name="s", task="fig7.rtt", seeds=[1],
            merge={"kind": "mean_record", "experiment": "x",
                   "description": "y", "metric": "m", "unit": "u"},
            scenarios=["linespeed"],
        )
        fields.update(overrides)
        return PlanStage(**fields)

    def test_valid_stage_passes(self):
        self._stage().validate()

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown farm runner"):
            self._stage(task="nope.nope").validate()

    def test_unknown_scenario_uses_registry_message(self):
        with pytest.raises(ValueError, match="unknown testbed variant 'bogus'"):
            self._stage(scenarios=["bogus"]).validate()

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            self._stage(schedules=[{"events": [{"kind": "nope"}]}]).validate()

    def test_unknown_testbed_param_rejected(self):
        with pytest.raises(ValueError, match="unknown testbed param"):
            self._stage(params={"not_a_field": 1}).validate()

    def test_unknown_merge_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown merge kind"):
            self._stage(merge={"kind": "nope"}).validate()

    def test_missing_merge_options_rejected(self):
        with pytest.raises(ValueError, match="needs option"):
            self._stage(merge={"kind": "mean_record"}).validate()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            self._stage(seeds=[]).validate()

    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="sweep axis"):
            self._stage(sweep={"rate_mbps": []}).validate()

    def test_duplicate_stage_names_rejected(self):
        plan = ExperimentPlan(name="p", stages=[self._stage(), self._stage()])
        with pytest.raises(ValueError, match="duplicate stage name"):
            plan.validate()

    def test_unknown_combine_rejected(self):
        plan = ExperimentPlan(name="p", stages=[self._stage()], combine="nope")
        with pytest.raises(ValueError, match="unknown combine recipe"):
            plan.validate()

    def test_bad_watch_rule_rejected(self):
        plan = ExperimentPlan(name="p", stages=[self._stage()],
                              watches=[{"not_a_field": 1}])
        with pytest.raises(ValueError, match="bad watch rule"):
            plan.validate()

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            ExperimentPlan.from_dict({"name": "p", "stages": [], "events": []})

    def test_newer_plan_version_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            ExperimentPlan.from_dict({"version": 999, "name": "p", "stages": []})

    def test_unknown_builtin_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown built-in plan"):
            builtin_plan("fig99")


class TestRegistryDerivation:
    """Scenario lists and CLI choices all derive from the registry."""

    def test_variants_tuple_comes_from_registry(self):
        assert VARIANTS == scenario_names()
        assert VARIANTS == ("linespeed", "central3", "central5",
                            "pox3", "dup3", "dup5")

    def test_figure_and_table1_orders(self):
        assert ALL_SCENARIOS == ("linespeed", "dup3", "dup5",
                                 "central3", "central5", "pox3")
        assert TABLE1_SCENARIOS == ("linespeed", "dup3", "dup5",
                                    "central3", "central5")

    def test_build_testbed_error_lists_registry_names(self):
        from repro.scenarios.testbed import build_testbed

        with pytest.raises(ValueError, match="pick from"):
            build_testbed("bogus")

    def test_cli_variant_choices_come_from_registry(self):
        from repro.analysis.cli import main

        with pytest.raises(SystemExit):
            main(["chaos", "--variant", "bogus"])


class TestShimEquivalence:
    """Legacy run_* and the plans they shim produce identical records."""

    def test_fig5_quick_shim_matches_plan(self):
        legacy = run_fig5_udp(duration=0.04, iterations=6)
        plan = builtin_plan("fig5", quick=True).run()
        assert legacy.to_dict() == plan.to_dict()

    def test_chaos_battery_shim_matches_plan(self):
        legacy = run_chaos_battery(duration=0.04, seeds=(1,))
        plan = builtin_plan("chaos", quick=True).run()
        assert legacy == plan

    def test_table1_runs_as_one_farm_batch(self):
        farm = FarmExecutor()
        values = run_table1(duration_tcp=0.03, duration_udp=0.03,
                            ping_count=5, repetitions=1, farm=farm)
        # 5 tcp + 5 udp + 5 rtt specs, one batch, one farm
        assert farm.progress.queued == 15
        assert set(values) == {"tcp_mbps", "udp_mbps", "rtt_ms"}
        for metric in values:
            assert set(values[metric]) == set(TABLE1_SCENARIOS)


class TestPlanCli:
    def test_list_names_every_builtin(self, capsys):
        assert plan_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in builtin_plan_names():
            assert name in out

    def test_validate_accepts_the_artefacts(self, capsys):
        paths = sorted(glob.glob(os.path.join(PLAN_DIR, "*.json")))
        assert plan_main(["validate"] + paths) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") == len(paths)

    def test_validate_rejects_a_broken_plan(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "bad",
            "stages": [{"name": "s", "task": "fig7.rtt", "seeds": [1],
                        "merge": {"kind": "records_list"},
                        "scenarios": ["bogus"]}],
        }))
        assert plan_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_run_unknown_plan_fails_cleanly(self, capsys):
        assert plan_main(["run", "fig99"]) == 2
        assert "no plan file" in capsys.readouterr().err

    def test_quick_rejected_for_plan_files(self, capsys):
        path = os.path.join(PLAN_DIR, "smoke.json")
        assert plan_main(["run", path, "--quick"]) == 2
        assert "--quick" in capsys.readouterr().err

    def test_run_smoke_parallel_stdout_matches_serial(self, capsys, tmp_path):
        args = ["run", "smoke", "--cache-dir", str(tmp_path / "c")]
        assert plan_main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr()
        assert plan_main(args + ["--no-cache"]) == 0
        serial = capsys.readouterr()
        # stdout is purely deterministic; telemetry goes to stderr
        assert parallel.out == serial.out
        assert "[farm]" in parallel.err and "[farm]" not in parallel.out

    def test_run_writes_report_with_stage_records(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert plan_main(["run", "smoke", "--no-cache",
                          "--report", str(report_path)]) == 0
        with open(report_path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        assert report["name"] == "smoke"
        assert report["records"][0]["stage"] == "smoke"
        assert "smoke" in report["farm"]

    def test_repro_cli_dispatches_plan_subcommand(self, capsys):
        from repro.analysis.cli import main

        assert main(["plan", "list"]) == 0
        assert "table1" in capsys.readouterr().out
