"""Tests for the OF 1.0 flow table: priorities, counters, timeouts."""

from repro.net import IpAddress, MacAddress, Packet
from repro.openflow import FlowEntry, FlowTable, Match, Output

M1, M2 = MacAddress.from_index(1), MacAddress.from_index(2)
IP1, IP2 = IpAddress.from_index(1), IpAddress.from_index(2)


def pkt():
    return Packet.udp(M1, M2, IP1, IP2, 1, 2, payload=b"x")


def entry(match=None, priority=0, actions=(Output(1),), **kwargs):
    return FlowEntry(match or Match.wildcard(), list(actions), priority=priority, **kwargs)


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = entry(Match(dl_dst=M2), priority=1, actions=[Output(1)])
        high = entry(Match(dl_dst=M2), priority=9, actions=[Output(2)])
        table.add(low)
        table.add(high)
        assert table.lookup(pkt(), 1, now=0.0) is high

    def test_equal_priority_earliest_installed_wins(self):
        table = FlowTable()
        first = entry(Match(dl_dst=M2), priority=5, actions=[Output(1)])
        second = entry(Match(dl_src=M1), priority=5, actions=[Output(2)])
        table.add(first)
        table.add(second)
        assert table.lookup(pkt(), 1, now=0.0) is first

    def test_no_match_returns_none(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M1)))
        assert table.lookup(pkt(), 1, now=0.0) is None

    def test_identical_match_and_priority_replaces(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M2), priority=5, actions=[Output(1)]))
        table.add(entry(Match(dl_dst=M2), priority=5, actions=[Output(7)]))
        assert len(table) == 1
        hit = table.lookup(pkt(), 1, now=0.0)
        assert hit.actions == [Output(7)]

    def test_counters_update_on_hit(self):
        table = FlowTable()
        e = entry()
        table.add(e)
        p = pkt()
        table.lookup(p, 1, now=1.0)
        table.lookup(p, 1, now=2.0)
        assert e.packet_count == 2
        assert e.byte_count == 2 * p.wire_len
        assert e.last_matched == 2.0


class TestTimeouts:
    def test_hard_timeout_expires(self):
        table = FlowTable()
        e = entry(hard_timeout=10.0)
        table.add(e)
        assert table.lookup(pkt(), 1, now=9.0) is e
        assert table.lookup(pkt(), 1, now=10.5) is None
        assert e.expired(10.5) == "hard"

    def test_idle_timeout_refreshes_on_hits(self):
        table = FlowTable()
        e = entry(idle_timeout=5.0)
        table.add(e)
        table.lookup(pkt(), 1, now=4.0)  # refresh
        assert table.lookup(pkt(), 1, now=8.0) is e
        assert table.lookup(pkt(), 1, now=14.0) is None

    def test_zero_timeouts_never_expire(self):
        e = entry()
        assert e.expired(1e9) is None

    def test_sweep_removes_expired(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M2), hard_timeout=1.0))
        table.add(entry(Match(dl_src=M1)))
        swept = table.sweep_expired(now=2.0)
        assert len(swept) == 1 and len(table) == 1

    def test_sweep_noop_when_nothing_expired(self):
        table = FlowTable()
        table.add(entry())
        assert table.sweep_expired(now=100.0) == []
        assert len(table) == 1


class TestDelete:
    def test_delete_by_match(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M2), priority=1))
        table.add(entry(Match(dl_dst=M2), priority=2))
        table.add(entry(Match(dl_src=M1), priority=1))
        removed = table.remove(match=Match(dl_dst=M2))
        assert len(removed) == 2 and len(table) == 1

    def test_delete_all(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M2)))
        table.add(entry(Match(dl_src=M1)))
        assert len(table.remove()) == 2
        assert len(table) == 0

    def test_delete_strict_requires_priority(self):
        table = FlowTable()
        table.add(entry(Match(dl_dst=M2), priority=1))
        table.add(entry(Match(dl_dst=M2), priority=2))
        removed = table.remove(match=Match(dl_dst=M2), priority=2, strict=True)
        assert len(removed) == 1
        assert table.entries[0].priority == 1


class TestIntrospection:
    def test_total_packets(self):
        table = FlowTable()
        table.add(entry())
        table.lookup(pkt(), 1, now=0.0)
        assert table.total_packets() == 1

    def test_find(self):
        table = FlowTable()
        table.add(entry(priority=1))
        table.add(entry(Match(dl_dst=M2), priority=2))
        assert len(table.find(lambda e: e.priority > 1)) == 1

    def test_iteration_is_snapshot(self):
        table = FlowTable()
        table.add(entry())
        for _ in table:
            table.remove()  # must not blow up mid-iteration
        assert len(table) == 0
