"""Tests for canonical control-message encodings (repro.ctrl.digest).

The voter's entire security argument rests on two properties pinned
here: *stability* (re-encoding an equal message yields equal bytes) and
*injectivity* (any single-field mutation changes the bytes)."""

import dataclasses

import pytest

from repro.ctrl.digest import (
    DigestError,
    digest,
    encode_action,
    encode_actions,
    encode_match,
)
from repro.net import IpAddress, MacAddress, Packet
from repro.openflow.actions import (
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlanVid,
    StripVlan,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    FLOWMOD_ADD,
    FLOWMOD_DELETE,
    FlowMod,
    PacketOut,
)

MAC1 = MacAddress.from_index(1)
MAC2 = MacAddress.from_index(2)
IP1 = IpAddress.from_index(1)
IP2 = IpAddress.from_index(2)

#: one instance of every action type the OF 1.0 model supports
ALL_ACTIONS = [
    Output(2),
    SetDlSrc(MAC1),
    SetDlDst(MAC2),
    SetVlanVid(7),
    StripVlan(),
    SetNwSrc(IP1),
    SetNwDst(IP2),
    SetTpSrc(80),
    SetTpDst(443),
]


FULL_MATCH_FIELDS = dict(
    in_port=1,
    dl_src=MAC1,
    dl_dst=MAC2,
    dl_vlan=10,
    dl_vlan_pcp=3,
    dl_type=0x0800,
    nw_tos=4,
    nw_proto=17,
    nw_src=IP1,
    nw_dst=IP2,
    tp_src=5000,
    tp_dst=5001,
)


def full_match(**overrides):
    # Match is a __slots__ class, not a dataclass: mutate via kwargs.
    return Match(**{**FULL_MATCH_FIELDS, **overrides})


def flow_mod(**overrides):
    base = dict(
        command=FLOWMOD_ADD,
        match=full_match(),
        actions=tuple(ALL_ACTIONS),
        priority=10,
        idle_timeout=1.5,
        hard_timeout=3.0,
        cookie=42,
    )
    base.update(overrides)
    return FlowMod(**base)


def pkt(payload=b"hello"):
    return Packet.udp(MAC1, MAC2, IP1, IP2, 1, 2, payload=payload, ident=9)


class TestRoundTrip:
    def test_flow_mod_reconstruction_digests_equal(self):
        # Rebuild field by field from the original's values: equal
        # protocol content must give equal bytes across all action types.
        original = flow_mod()
        rebuilt = FlowMod(
            command=str(original.command),
            match=Match(
                in_port=original.match.in_port,
                dl_src=MacAddress(str(original.match.dl_src)),
                dl_dst=MacAddress(str(original.match.dl_dst)),
                dl_vlan=original.match.dl_vlan,
                dl_vlan_pcp=original.match.dl_vlan_pcp,
                dl_type=original.match.dl_type,
                nw_tos=original.match.nw_tos,
                nw_proto=original.match.nw_proto,
                nw_src=IpAddress(str(original.match.nw_src)),
                nw_dst=IpAddress(str(original.match.nw_dst)),
                tp_src=original.match.tp_src,
                tp_dst=original.match.tp_dst,
            ),
            actions=[
                Output(2),
                SetDlSrc(MacAddress(str(MAC1))),
                SetDlDst(MacAddress(str(MAC2))),
                SetVlanVid(7),
                StripVlan(),
                SetNwSrc(IpAddress(str(IP1))),
                SetNwDst(IpAddress(str(IP2))),
                SetTpSrc(80),
                SetTpDst(443),
            ],
            priority=10,
            idle_timeout=1.5,
            hard_timeout=3.0,
            cookie=42,
        )
        assert digest(original) == digest(rebuilt)

    def test_digest_is_deterministic(self):
        assert digest(flow_mod()) == digest(flow_mod())

    def test_packet_out_round_trip(self):
        a = PacketOut(packet=pkt(), actions=[Output(1)], in_port=2)
        b = PacketOut(packet=pkt(), actions=[Output(1)], in_port=2)
        assert digest(a) == digest(b)

    @pytest.mark.parametrize("action", ALL_ACTIONS, ids=lambda a: type(a).__name__)
    def test_every_action_type_encodes(self, action):
        assert isinstance(encode_action(action), bytes)

    def test_wildcard_match_round_trip(self):
        assert encode_match(Match()) == encode_match(Match())


class TestMutationDistinctness:
    @pytest.mark.parametrize(
        "mutation",
        [
            {"command": FLOWMOD_DELETE},
            {"priority": 11},
            {"idle_timeout": 1.6},
            {"hard_timeout": 0.0},
            {"cookie": 43},
            {"actions": tuple(ALL_ACTIONS[:-1])},
            {"match": Match()},
        ],
        ids=lambda m: next(iter(m)),
    )
    def test_flow_mod_single_field_mutations(self, mutation):
        assert digest(flow_mod()) != digest(flow_mod(**mutation))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("in_port", 2),
            ("dl_src", MAC2),
            ("dl_dst", MAC1),
            ("dl_vlan", 11),
            ("dl_vlan_pcp", 2),
            ("dl_type", 0x0806),
            ("nw_tos", 5),
            ("nw_proto", 6),
            ("nw_src", IP2),
            ("nw_dst", IP1),
            ("tp_src", 5002),
            ("tp_dst", 5003),
        ],
    )
    def test_every_match_field_is_significant(self, field, value):
        assert encode_match(full_match()) != encode_match(
            full_match(**{field: value})
        )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("in_port", 1),
            ("dl_vlan", 0),
            ("dl_vlan_pcp", 0),
            ("dl_type", 0),
            ("nw_tos", 0),
            ("nw_proto", 0),
            ("tp_src", 0),
            ("tp_dst", 0),
        ],
    )
    def test_wildcard_differs_from_zero(self, field, value):
        # None (wildcard) and 0 are different match semantics; the
        # presence prefix must keep their encodings apart.
        assert encode_match(Match()) != encode_match(Match(**{field: value}))

    @pytest.mark.parametrize(
        "a,b",
        [
            (Output(1), Output(2)),
            (SetDlSrc(MAC1), SetDlSrc(MAC2)),
            (SetDlDst(MAC1), SetDlDst(MAC2)),
            (SetVlanVid(1), SetVlanVid(2)),
            (SetNwSrc(IP1), SetNwSrc(IP2)),
            (SetNwDst(IP1), SetNwDst(IP2)),
            (SetTpSrc(1), SetTpSrc(2)),
            (SetTpDst(1), SetTpDst(2)),
        ],
        ids=lambda x: f"{type(x).__name__}",
    )
    def test_action_payload_is_significant(self, a, b):
        assert encode_action(a) != encode_action(b)

    def test_same_payload_different_action_types_differ(self):
        # The tag byte keeps e.g. SetDlSrc/SetDlDst of the same MAC apart.
        assert encode_action(SetDlSrc(MAC1)) != encode_action(SetDlDst(MAC1))
        assert encode_action(SetTpSrc(80)) != encode_action(SetTpDst(80))
        assert encode_action(SetNwSrc(IP1)) != encode_action(SetNwDst(IP1))

    def test_action_order_is_significant(self):
        assert encode_actions([Output(1), StripVlan()]) != encode_actions(
            [StripVlan(), Output(1)]
        )

    def test_packet_out_mutations(self):
        base = PacketOut(packet=pkt(), actions=[Output(1)], in_port=2)
        assert digest(base) != digest(dataclasses.replace(base, in_port=3))
        assert digest(base) != digest(
            dataclasses.replace(base, actions=(Output(2),))
        )
        assert digest(base) != digest(
            dataclasses.replace(base, packet=pkt(payload=b"bye"))
        )
        buffered = PacketOut(packet=None, actions=[Output(1)], in_port=2, buffer_id=5)
        assert digest(buffered) != digest(
            dataclasses.replace(buffered, buffer_id=6)
        )
        assert digest(base) != digest(
            dataclasses.replace(base, buffer_id=7)
        )

    def test_flow_mod_and_packet_out_never_collide(self):
        # Distinct top-level tags: the two message kinds cannot alias.
        assert digest(flow_mod())[0:1] != digest(
            PacketOut(packet=pkt(), actions=[Output(1)], in_port=2)
        )[0:1]


class TestErrors:
    def test_unknown_action_rejected(self):
        class Weird:
            pass

        with pytest.raises(DigestError):
            encode_action(Weird())

    def test_unknown_message_rejected(self):
        with pytest.raises(DigestError):
            digest(object())

    def test_packet_in_is_not_a_control_output(self):
        from repro.openflow.messages import PacketIn

        with pytest.raises(DigestError):
            digest(PacketIn(datapath_id=1, packet=pkt(), in_port=1))
