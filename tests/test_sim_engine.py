"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    CpuResource,
    PeriodicTask,
    SimulationError,
    Simulator,
    Timer,
)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_are_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(0.5, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_zero_delay_runs_after_current_instant_queue(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, lambda: order.append("nested"))

        sim.schedule(0.1, first)
        sim.schedule(0.1, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.now == 1.5

    def test_run_until_resumable(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        sim.run(until=3.0)
        assert fired == [1, 2]

    def test_run_advances_clock_to_until_even_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def renew():
            sim.schedule(0.1, renew)

        sim.schedule(0.1, renew)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_stop_requests_early_return(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError:
                errors.append(True)

        sim.schedule(0.1, recurse)
        sim.run()
        assert errors == [True]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events() == 1


class TestTimer:
    def test_timer_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.5)
        sim.run()
        assert fired == [0.5]

    def test_timer_restart_replaces_previous(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.5)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]

    def test_timer_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(0.5)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_timer_running_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(0.5)
        assert timer.running
        sim.run()
        assert not timer.running


class TestPeriodicTask:
    def test_fires_at_fixed_period(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 0.5, lambda: times.append(sim.now))
        task.start()
        sim.run(until=1.6)
        assert times == [0.0, 0.5, 1.0, 1.5]

    def test_initial_delay(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start(initial_delay=0.25)
        sim.run(until=1.5)
        assert times == [0.25, 1.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 0.5, lambda: times.append(sim.now))
        task.start()
        sim.schedule(0.9, task.stop)
        sim.run(until=3.0)
        assert times == [0.0, 0.5]

    def test_callback_may_stop_task(self):
        sim = Simulator()
        count = []
        task = PeriodicTask(sim, 0.5, lambda: (count.append(1), task.stop()))
        task.start()
        sim.run(until=5.0)
        assert len(count) == 1

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)


class TestCpuResource:
    def test_idle_acquire_runs_immediately(self):
        cpu = CpuResource()
        assert cpu.acquire(1.0, 0.5) == 1.5

    def test_busy_acquire_queues(self):
        cpu = CpuResource()
        cpu.acquire(0.0, 1.0)
        assert cpu.acquire(0.5, 0.25) == 1.25

    def test_backlog(self):
        cpu = CpuResource()
        cpu.acquire(0.0, 1.0)
        assert cpu.backlog(0.25) == pytest.approx(0.75)
        assert cpu.backlog(2.0) == 0.0

    def test_busy_time_accumulates(self):
        cpu = CpuResource()
        cpu.acquire(0.0, 1.0)
        cpu.acquire(0.0, 0.5)
        assert cpu.busy_time == pytest.approx(1.5)
