"""Exact-match index coherence: indexed lookup == linear scan, always.

``FlowTable.lookup`` answers from a hash index for fully-specified
entries plus an early-exit scan for the rest.  Every test here
cross-checks it against a straight re-implementation of the old linear
scan over the same entries, across installs, replacements, removals,
idle/hard expiry and adversarially shaped packets (tagged frames hitting
untagged entries, IP headers under non-IP ethertypes, transport headers
under odd protocols).
"""

from __future__ import annotations

import random

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    Ethernet,
    Ipv4,
    Packet,
    Tcp,
    Udp,
    Vlan,
)
from repro.openflow.actions import Output
from repro.openflow.flowtable import FlowEntry, FlowTable, _rank
from repro.openflow.match import Match, packet_probe_keys


def reference_lookup(table, packet, in_port, now):
    """The pre-index semantics: rank-ordered scan, no counter updates."""
    for entry in sorted(table.entries, key=_rank):
        if entry.expired(now):
            continue
        if entry.match.matches(packet, in_port):
            return entry
    return None


def assert_coherent(table, packets, ports, now):
    """Indexed lookup must return what the reference scan returns."""
    for packet in packets:
        for in_port in ports:
            expect = reference_lookup(table, packet, in_port, now)
            got = table.lookup(packet, in_port, now)
            assert got is expect, (
                f"index/scan divergence at now={now} port={in_port}: "
                f"indexed={got!r} scanned={expect!r} for {packet!r}"
            )


def udp_packet(i: int, vlan=None, dport: int = 5001) -> Packet:
    return Packet.udp(
        src_mac=MacAddress.from_index(10 + i),
        dst_mac=MacAddress.from_index(20 + i),
        src_ip=IpAddress.from_index(10 + i),
        dst_ip=IpAddress.from_index(20 + i),
        sport=4000 + i,
        dport=dport,
        payload=b"x",
        vlan=vlan,
    )


class TestDirectedCoherence:
    def test_exact_entries_indexed(self):
        table = FlowTable()
        packets = [udp_packet(i) for i in range(8)]
        for i, pkt in enumerate(packets):
            table.add(FlowEntry(Match.from_packet(pkt, in_port=1), [Output(2)],
                                priority=i % 3))
        assert table._exact and not table._wildcard
        assert_coherent(table, packets, ports=(1, 2), now=0.0)

    def test_untagged_exact_entry_matches_tagged_packet(self):
        """dl_vlan wildcarded (None) legally matches tagged frames."""
        table = FlowTable()
        plain = udp_packet(1)
        table.add(FlowEntry(Match.from_packet(plain, in_port=1), [Output(2)]))
        tagged = udp_packet(1, vlan=Vlan(30, pcp=2))
        assert reference_lookup(table, tagged, 1, 0.0) is not None
        assert_coherent(table, [plain, tagged], ports=(1,), now=0.0)

    def test_tagged_entry_beats_untagged_on_priority(self):
        table = FlowTable()
        plain = udp_packet(1)
        tagged = udp_packet(1, vlan=Vlan(30, pcp=2))
        table.add(FlowEntry(Match.from_packet(plain, in_port=1), [Output(2)],
                            priority=1))
        table.add(FlowEntry(Match.from_packet(tagged, in_port=1), [Output(3)],
                            priority=5))
        assert_coherent(table, [plain, tagged], ports=(1,), now=0.0)

    def test_wildcard_outranks_exact(self):
        table = FlowTable()
        pkt = udp_packet(2)
        table.add(FlowEntry(Match.from_packet(pkt, in_port=1), [Output(2)],
                            priority=1))
        table.add(FlowEntry(Match(dl_dst=pkt.fields()[0].dst), [Output(9)],
                            priority=10))
        got = table.lookup(pkt, 1, 0.0)
        assert got is not None and got.priority == 10
        assert_coherent(table, [pkt], ports=(1,), now=0.0)

    def test_ip_headers_under_non_ip_ethertype(self):
        """Crafted frame: ARP ethertype but IP/UDP objects attached."""
        crafted = Packet(
            Ethernet(MacAddress.from_index(2), MacAddress.from_index(1),
                     ETH_TYPE_ARP),
            Ipv4(IpAddress.from_index(1), IpAddress.from_index(2), 17),
            Udp(1000, 2000),
            b"zz",
        )
        table = FlowTable()
        # from_packet on the crafted packet itself: carries nw/tp fields
        # under a non-IPv4 dl_type, which is *not* the exact shape.
        entry_odd = FlowEntry(Match.from_packet(crafted, in_port=1), [Output(2)])
        table.add(entry_odd)
        assert not entry_odd.match.is_exact()
        # An exact ARP-shaped entry (nw/tp all None) still matches it.
        table.add(FlowEntry(
            Match(in_port=1,
                  dl_src=crafted.fields()[0].src,
                  dl_dst=crafted.fields()[0].dst,
                  dl_type=ETH_TYPE_ARP),
            [Output(3)], priority=2))
        assert_coherent(table, [crafted], ports=(1, 2), now=0.0)

    def test_transport_header_under_odd_protocol(self):
        """proto=99 with a UDP header attached: tp fields never indexed."""
        crafted = Packet(
            Ethernet(MacAddress.from_index(2), MacAddress.from_index(1),
                     ETH_TYPE_IPV4),
            Ipv4(IpAddress.from_index(1), IpAddress.from_index(2), 99),
            None,
            b"zz",
        )
        object.__setattr__(crafted, "_l4", Udp(1000, 2000))  # bypass guard
        table = FlowTable()
        match = Match.from_packet(crafted, in_port=1)
        match.tp_src = match.tp_dst = None  # proto-99 exact shape
        table.add(FlowEntry(match, [Output(2)]))
        assert match.is_exact()
        assert_coherent(table, [crafted], ports=(1,), now=0.0)

    def test_replacement_keeps_position_and_index(self):
        table = FlowTable()
        first = udp_packet(1)
        second = udp_packet(2)
        # Two wildcard entries at equal priority that both match `first`.
        m_dst = Match(dl_dst=first.fields()[0].dst)
        m_src = Match(dl_src=first.fields()[0].src)
        table.add(FlowEntry(m_dst, [Output(2)], priority=1))
        table.add(FlowEntry(m_src, [Output(3)], priority=1))
        # Replace the earliest-installed one: it must keep winning ties.
        replacement = FlowEntry(m_dst, [Output(7)], priority=1)
        table.add(replacement)
        assert table.lookup(first, 1, 0.0) is replacement
        assert_coherent(table, [first, second], ports=(1,), now=0.0)

    def test_expiry_transitions(self):
        table = FlowTable()
        pkt = udp_packet(3)
        table.add(FlowEntry(Match.from_packet(pkt, in_port=1), [Output(2)],
                            idle_timeout=1.0, created_at=0.0))
        table.add(FlowEntry(Match(dl_dst=pkt.fields()[0].dst), [Output(9)],
                            hard_timeout=2.5, created_at=0.0))
        for now in (0.0, 0.5, 0.99, 1.0, 2.0, 2.5, 3.0):
            assert_coherent(table, [pkt], ports=(1,), now=now)
        # Note: lookups above refresh last_matched, so the idle entry
        # survives while hit; sweep at a quiet moment drops both.
        removed = table.sweep_expired(now=10.0)
        assert len(removed) == 2
        assert table.lookup(pkt, 1, 10.0) is None

    def test_remove_keeps_index_coherent(self):
        table = FlowTable()
        packets = [udp_packet(i) for i in range(4)]
        matches = [Match.from_packet(p, in_port=1) for p in packets]
        for match in matches:
            table.add(FlowEntry(match, [Output(2)]))
        table.remove(matches[1])
        assert_coherent(table, packets, ports=(1,), now=0.0)
        table.remove()  # flush
        assert len(table) == 0
        assert_coherent(table, packets, ports=(1,), now=0.0)

    def test_probe_keys_cover_primary_and_vlan_stripped(self):
        tagged = udp_packet(1, vlan=Vlan(30, pcp=2))
        keys = packet_probe_keys(tagged, in_port=1)
        assert len(keys) == 2
        assert Match.from_packet(tagged, in_port=1)._key() == keys[0]
        plain_key = keys[1]
        assert plain_key[3] is None and plain_key[4] is None


class TestRandomisedCoherence:
    """Property-style: random op sequences never diverge from the scan."""

    def test_random_tables_and_packets(self):
        rng = random.Random(1234)
        macs = [MacAddress.from_index(i) for i in range(6)]
        ips = [IpAddress.from_index(i) for i in range(6)]

        def random_packet():
            eth = Ethernet(rng.choice(macs), rng.choice(macs),
                           rng.choice([ETH_TYPE_IPV4, ETH_TYPE_IPV4,
                                       ETH_TYPE_ARP]))
            vlan = Vlan(rng.randrange(1, 5), pcp=rng.randrange(2)) \
                if rng.random() < 0.4 else None
            if eth.ethertype == ETH_TYPE_IPV4:
                proto = rng.choice([6, 17, 17, 1, 99])
                ip = Ipv4(rng.choice(ips), rng.choice(ips), proto,
                          tos=rng.choice([0, 4]))
                if proto == 6:
                    l4 = Tcp(rng.randrange(1, 4) * 1000, 80)
                elif proto == 17:
                    l4 = Udp(rng.randrange(1, 4) * 1000, 5001)
                else:
                    l4 = None
                return Packet(eth, ip, l4, b"p", vlan=vlan)
            return Packet(eth, payload=b"p", vlan=vlan)

        def random_match(packet):
            base = Match.from_packet(packet,
                                     in_port=rng.choice([1, 2, None]))
            # Randomly wildcard a few fields to mix exact and scan shapes.
            for field in rng.sample(Match.__slots__,
                                    k=rng.randrange(0, 6)):
                setattr(base, field, None)
            return base

        for _trial in range(25):
            table = FlowTable()
            packets = [random_packet() for _ in range(10)]
            now = 0.0
            for _op in range(30):
                roll = rng.random()
                if roll < 0.55 or len(table) == 0:
                    table.add(FlowEntry(
                        random_match(rng.choice(packets)),
                        [Output(rng.randrange(1, 4))],
                        priority=rng.randrange(0, 3),
                        idle_timeout=rng.choice([0.0, 0.5]),
                        hard_timeout=rng.choice([0.0, 1.5]),
                        created_at=now,
                    ))
                elif roll < 0.7:
                    victim = rng.choice(table.entries)
                    table.remove(victim.match,
                                 priority=victim.priority,
                                 strict=rng.random() < 0.5)
                elif roll < 0.8:
                    table.sweep_expired(now)
                else:
                    now += rng.choice([0.1, 0.4, 1.0])
                assert_coherent(table, packets, ports=(1, 2), now=now)
