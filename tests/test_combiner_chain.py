"""Integration tests for the Figure 3 combiner chain."""

import pytest

from repro.adversary import (
    BlackholeBehavior,
    DropBehavior,
    HeaderRewriteBehavior,
    PayloadCorruptionBehavior,
    ReplayFloodBehavior,
    dst_mac_rewrite,
    match_udp,
)
from repro.core import (
    ALARM_ROUTER_UNAVAILABLE,
    ALARM_SINGLE_SOURCE_PACKET,
    CombinerChainParams,
    CompareConfig,
    build_combiner_chain,
)
from repro.net import Network, NetworkError, Packet
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def build_rig(k=3, mode="combine", transport="inline", miss_threshold=5,
              dup_threshold=8):
    net = Network(seed=2)
    params = CombinerChainParams(
        k=k,
        mode=mode,
        transport=transport,
        compare=CompareConfig(
            k=k,
            buffer_timeout=2e-3,
            miss_threshold=miss_threshold,
            dup_threshold=dup_threshold,
        ),
        controller_latency=5e-6,
        controller_proc_time=5e-6,
    )
    chain = build_combiner_chain(net, "nc", params)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")
    return net, chain, h1, h2


class TestBenignOperation:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7])
    def test_ping_completes_for_any_k(self, k):
        net, chain, h1, h2 = build_rig(k=k)
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5
        assert result.duplicates == 0

    def test_udp_flow_delivered_without_duplicates(self):
        net, chain, h1, h2 = build_rig()
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=10e6, duration=0.02
        )
        assert result.loss_rate == 0.0
        assert result.duplicates == 0

    def test_dup_mode_delivers_k_copies(self):
        net, chain, h1, h2 = build_rig(k=3, mode="dup")
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=10e6, duration=0.02
        )
        assert result.loss_rate == 0.0
        assert result.duplicates == 2 * result.received_unique

    def test_compare_sees_k_copies_per_packet(self):
        net, chain, h1, h2 = build_rig(k=3)
        run_ping(PathEndpoints(net, h1, h2), count=4, interval=1e-3)
        stats = chain.compare_core.stats
        # 4 requests + 4 replies, 3 copies each
        assert stats.submissions == 24
        assert stats.released == 8

    def test_controller_transport_works(self):
        net, chain, h1, h2 = build_rig(transport="controller")
        assert chain.compare_host is None
        assert chain.controller is not None
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5

    def test_controller_transport_pays_channel_latency(self):
        net1, _, h11, h21 = build_rig(transport="inline")
        rtt_inline = run_ping(PathEndpoints(net1, h11, h21), count=5).rtts.mean
        net2, _, h12, h22 = build_rig(transport="controller")
        rtt_ctl = run_ping(PathEndpoints(net2, h12, h22), count=5).rtts.mean
        assert rtt_ctl > rtt_inline


class TestAdversarialOperation:
    def test_payload_corruption_masked(self):
        net, chain, h1, h2 = build_rig()
        PayloadCorruptionBehavior().attach(chain.router(0))
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
        assert result.received == 10
        chain.compare_core.flush()
        assert chain.compare_core.stats.expired_unreleased >= 10

    def test_header_rewrite_masked(self):
        net, chain, h1, h2 = build_rig()
        other = net.add_host("other")
        HeaderRewriteBehavior(dst_mac_rewrite(other.mac)).attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
        assert result.received == 10

    def test_blackhole_masked_and_alarmed(self):
        net, chain, h1, h2 = build_rig(miss_threshold=5)
        BlackholeBehavior().attach(chain.router(2))
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=1e-3)
        assert result.received == 10
        alarms = chain.compare_core.alarms.of_kind(ALARM_ROUTER_UNAVAILABLE)
        assert len(alarms) >= 1
        assert alarms[0].branch == 2

    def test_selective_drop_masked(self):
        net, chain, h1, h2 = build_rig()
        DropBehavior(selector=match_udp()).attach(chain.router(0))
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=5e6, duration=0.02
        )
        assert result.loss_rate == 0.0

    def test_crafted_packets_never_exit(self):
        net, chain, h1, h2 = build_rig()
        evil = Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 6666, 6666, payload=b"evil")
        router = chain.router(1)
        out_port = net.port_no_between(router.name, chain.endpoint_b.name)
        got = []
        h2.bind_udp(6666, got.append)
        net.sim.schedule(
            0.001, lambda: router.ports[out_port].send(evil)
        )
        net.run(until=0.05)
        assert got == []
        assert chain.compare_core.alarms.count(ALARM_SINGLE_SOURCE_PACKET) == 1

    def test_two_colluding_routers_defeat_k3(self):
        # the security boundary: k=3 masks one traitor, not two
        net, chain, h1, h2 = build_rig(k=3)
        mutate = dst_mac_rewrite(h1.mac)  # reflect traffic back
        HeaderRewriteBehavior(mutate).attach(chain.router(0))
        HeaderRewriteBehavior(mutate).attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 0

    def test_k5_masks_two_traitors(self):
        net, chain, h1, h2 = build_rig(k=5)
        mutate = dst_mac_rewrite(h1.mac)
        HeaderRewriteBehavior(mutate).attach(chain.router(0))
        HeaderRewriteBehavior(mutate).attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5

    def test_replay_flood_triggers_port_block(self):
        net, chain, h1, h2 = build_rig(dup_threshold=4)
        ReplayFloodBehavior(amplification=20).attach(chain.router(0))
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=5e6, duration=0.02)
        assert chain.compare_core.stats.blocks_issued >= 1

    def test_detection_mode_k2(self):
        # k=2 with quorum 2: a tampering router stalls traffic (detected,
        # not masked) and the divergence is visible via expiries
        net, chain, h1, h2 = build_rig(k=2)
        PayloadCorruptionBehavior().attach(chain.router(0))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 0
        chain.compare_core.flush()
        assert chain.compare_core.stats.expired_unreleased > 0


class TestBuilderValidation:
    def test_k_zero_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            build_combiner_chain(net, "nc", CombinerChainParams(k=0))

    def test_bad_mode_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            build_combiner_chain(net, "nc", CombinerChainParams(mode="wat"))

    def test_bad_transport_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            build_combiner_chain(
                net, "nc", CombinerChainParams(transport="pigeon")
            )

    def test_install_route_validates_direction(self):
        net, chain, h1, _h2 = build_rig()
        with pytest.raises(ValueError):
            chain.install_mac_route(h1.mac, toward="x")

    def test_for_k_scales_compare_config(self):
        params = CombinerChainParams(k=3).for_k(5)
        assert params.k == 5 and params.compare.k == 5
