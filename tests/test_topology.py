"""Tests for the Network container, wiring helpers and path computation."""

import pytest

from repro.net import Network, NetworkError
from repro.openflow import OpenFlowSwitch


def switch(net, name):
    return net.add_node(OpenFlowSwitch(net.sim, name, trace_bus=net.trace))


class TestNodeManagement:
    def test_duplicate_node_name_rejected(self):
        net = Network()
        net.add_host("h1")
        with pytest.raises(NetworkError):
            net.add_host("h1")

    def test_node_lookup(self):
        net = Network()
        h1 = net.add_host("h1")
        assert net.node("h1") is h1
        with pytest.raises(NetworkError):
            net.node("nope")

    def test_host_lookup_type_checked(self):
        net = Network()
        switch(net, "s1")
        with pytest.raises(NetworkError):
            net.host("s1")

    def test_auto_addresses_are_unique(self):
        net = Network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        assert h1.mac != h2.mac and h1.ip != h2.ip


class TestWiring:
    def test_connect_creates_adjacency(self):
        net = Network()
        s1, s2 = switch(net, "s1"), switch(net, "s2")
        net.connect(s1, s2)
        port12 = net.port_between("s1", "s2")
        port21 = net.port_between("s2", "s1")
        assert port12.node is s1 and port21.node is s2

    def test_port_no_between_missing(self):
        net = Network()
        switch(net, "s1")
        switch(net, "s2")
        with pytest.raises(NetworkError):
            net.port_no_between("s1", "s2")

    def test_host_cannot_be_double_wired(self):
        net = Network()
        h1 = net.add_host("h1")
        s1, s2 = switch(net, "s1"), switch(net, "s2")
        net.connect(h1, s1)
        with pytest.raises(NetworkError):
            net.connect(h1, s2)

    def test_explicit_port_numbers(self):
        net = Network()
        s1, s2 = switch(net, "s1"), switch(net, "s2")
        net.connect(s1, s2, port_a=7, port_b=9)
        assert net.port_no_between("s1", "s2") == 7
        assert net.port_no_between("s2", "s1") == 9

    def test_explicit_port_already_wired_rejected(self):
        net = Network()
        s1, s2, s3 = switch(net, "s1"), switch(net, "s2"), switch(net, "s3")
        net.connect(s1, s2, port_a=1)
        with pytest.raises(NetworkError):
            net.connect(s1, s3, port_a=1)

    def test_neighbors(self):
        net = Network()
        s1, s2, s3 = switch(net, "s1"), switch(net, "s2"), switch(net, "s3")
        net.connect(s1, s2)
        net.connect(s1, s3)
        assert net.neighbors("s1") == ["s2", "s3"]
        assert net.neighbors("s2") == ["s1"]


class TestPaths:
    def build_diamond(self):
        # s1 - {a, b} - s2 plus a longer path via c-d
        net = Network()
        for name in ("s1", "a", "b", "c", "d", "s2"):
            switch(net, name)
        net.connect(net.node("s1"), net.node("a"))
        net.connect(net.node("a"), net.node("s2"))
        net.connect(net.node("s1"), net.node("b"))
        net.connect(net.node("b"), net.node("s2"))
        net.connect(net.node("s1"), net.node("c"))
        net.connect(net.node("c"), net.node("d"))
        net.connect(net.node("d"), net.node("s2"))
        return net

    def test_shortest_path(self):
        net = self.build_diamond()
        path = net.shortest_path("s1", "s2")
        assert path[0] == "s1" and path[-1] == "s2"
        assert len(path) == 3

    def test_shortest_path_same_node(self):
        net = self.build_diamond()
        assert net.shortest_path("s1", "s1") == ["s1"]

    def test_shortest_path_unreachable(self):
        net = self.build_diamond()
        switch(net, "island")
        with pytest.raises(NetworkError):
            net.shortest_path("s1", "island")

    def test_disjoint_paths_three_ways(self):
        net = self.build_diamond()
        paths = net.disjoint_paths("s1", "s2", 3)
        assert len(paths) == 3
        interiors = [set(p[1:-1]) for p in paths]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not interiors[i] & interiors[j]

    def test_disjoint_paths_exhausted_returns_fewer(self):
        net = self.build_diamond()
        paths = net.disjoint_paths("s1", "s2", 10)
        assert len(paths) == 3

    def test_disjoint_paths_no_path_raises(self):
        net = self.build_diamond()
        switch(net, "island")
        with pytest.raises(NetworkError):
            net.disjoint_paths("s1", "island", 2)


class TestRun:
    def test_run_until(self):
        net = Network()
        fired = []
        net.sim.schedule(0.5, lambda: fired.append(1))
        net.run(until=1.0)
        assert fired == [1]
        assert net.sim.now == 1.0
