"""Tests for traceroute over legacy router chains (and through NetCo)."""

import pytest

from repro.net import IpAddress, MacAddress, Network, Packet
from repro.net.legacy import LegacyRouter
from repro.traffic.traceroute import run_traceroute


def legacy_chain(n_routers=3, seed=25):
    """h1 - r1 - r2 - ... - rN - h2, one subnet per link."""
    net = Network(seed=seed)
    h1 = net.add_host("h1", ip=IpAddress("10.0.0.10"))
    h2 = net.add_host("h2", ip=IpAddress("10.99.0.10"))
    routers = []
    for i in range(n_routers):
        router = LegacyRouter(
            net.sim, f"r{i+1}", MacAddress.from_index(100 + i),
            IpAddress(f"10.{i + 1}.0.1"), trace_bus=net.trace,
        )
        net.add_node(router)
        routers.append(router)
    net.connect(h1, routers[0])
    for a, b in zip(routers, routers[1:]):
        net.connect(a, b)
    net.connect(routers[-1], h2)
    # forward routes to h2's subnet, reverse to h1's
    for i, router in enumerate(routers):
        nxt = routers[i + 1].mac if i + 1 < n_routers else h2.mac
        nxt_name = routers[i + 1].name if i + 1 < n_routers else "h2"
        router.add_route(IpAddress("10.99.0.0"), 16,
                         net.port_no_between(router.name, nxt_name), nxt)
        prev = routers[i - 1].mac if i > 0 else h1.mac
        prev_name = routers[i - 1].name if i > 0 else "h1"
        router.add_route(IpAddress("10.0.0.0"), 16,
                         net.port_no_between(router.name, prev_name), prev)
    return net, h1, h2, routers


class TestTraceroute:
    def test_discovers_every_hop_in_order(self):
        net, h1, h2, routers = legacy_chain(3)
        result = run_traceroute(net, h1, routers[0].mac, h2.ip)
        assert result.reached
        assert result.addresses() == [
            "10.1.0.1", "10.2.0.1", "10.3.0.1", "10.99.0.10",
        ]

    def test_rtts_increase_with_depth(self):
        net, h1, h2, routers = legacy_chain(3, seed=26)
        # make hops visible in time: add per-router processing
        for router in routers:
            router.proc_time = 50e-6
        result = run_traceroute(net, h1, routers[0].mac, h2.ip)
        rtts = [hop.rtt_s for hop in result.hops]
        assert all(r is not None for r in rtts)
        assert rtts == sorted(rtts)

    def test_single_hop(self):
        net, h1, h2, routers = legacy_chain(1)
        result = run_traceroute(net, h1, routers[0].mac, h2.ip)
        assert result.reached
        assert len(result.hops) == 2

    def test_unreachable_destination_gives_stars(self):
        net, h1, h2, routers = legacy_chain(2)
        result = run_traceroute(
            net, h1, routers[0].mac, IpAddress("10.99.0.99"), max_hops=4
        )
        assert not result.reached
        # hops 1-2 answer with time-exceeded; beyond them: silence
        assert result.addresses()[:2] == ["10.1.0.1", "10.2.0.1"]
        assert result.addresses()[2:] == [None, None]

    def test_max_hops_caps_probing(self):
        net, h1, h2, routers = legacy_chain(3)
        result = run_traceroute(
            net, h1, routers[0].mac, IpAddress("10.99.0.99"), max_hops=2
        )
        assert len(result.hops) == 2
        assert not result.reached

    def test_probe_host_still_answers_pings(self):
        net, h1, h2, routers = legacy_chain(2)
        run_traceroute(net, h1, routers[0].mac, h2.ip)
        # after close(), h1's default responder is restored
        replies = []
        h2.bind_icmp(replies.append)
        h2.send(Packet.icmp_echo(h2.mac, routers[-1].mac, h2.ip, h1.ip, 5, 1))
        net.run(until=net.sim.now + 0.01)
        assert len(replies) == 1


class TestTracerouteThroughCombiner:
    def test_combiner_is_invisible_to_traceroute(self):
        """The OpenFlow combiner operates at L2: a traceroute through it
        sees only the destination — NetCo adds no IP hops."""
        from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain

        net = Network(seed=27)
        chain = build_combiner_chain(
            net, "nc",
            CombinerChainParams(k=3, compare=CompareConfig(k=3, buffer_timeout=2e-3)),
        )
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect(h1, chain.endpoint_a)
        net.connect(h2, chain.endpoint_b)
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
        result = run_traceroute(net, h1, h2.mac, h2.ip)
        assert result.reached
        assert result.addresses() == [str(h2.ip)]
