"""Unit tests for the scheduled adversary strategies: registry wiring,
constructor contracts, each strategy's decision state machine (driven
directly, no network needed), the deterministic collusion wire image,
and the metrics binding."""

import random
from types import SimpleNamespace

import pytest

from repro.adversary.strategies import (
    STRATEGIES,
    CollusionCorruption,
    PathInconsistency,
    ProbationEvader,
    SampledCorruption,
    SweepTimedCorruption,
    build_strategy,
    corrupt_payload,
)
from repro.net import Packet
from repro.obs.metrics import MetricsRegistry, use_registry


def fake_sim(now=0.0):
    return SimpleNamespace(now=now)


class FakeCompare:
    """Just the hooks a strategy subscribes to."""

    def __init__(self, buffer_timeout=1e-3):
        self.config = SimpleNamespace(buffer_timeout=buffer_timeout)
        self.sweep_listeners = []
        self.membership_listeners = []

    def add_sweep_listener(self, fn):
        self.sweep_listeners.append(fn)

    def remove_sweep_listener(self, fn):
        self.sweep_listeners.remove(fn)

    def add_membership_listener(self, fn):
        self.membership_listeners.append(fn)

    def remove_membership_listener(self, fn):
        self.membership_listeners.remove(fn)


def packet(payload=b"hello adversary"):
    return Packet.udp(
        "00:00:00:00:00:01", "00:00:00:00:00:02",
        "10.0.0.1", "10.0.0.2", 7, 7, payload=payload,
    )


def build(strategy, **kwargs):
    kwargs.setdefault("sim", fake_sim())
    kwargs.setdefault("rng", random.Random(7))
    return build_strategy(strategy, **kwargs)


# ----------------------------------------------------------------------
# registry & constructor contracts
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_strategies_registered(self):
        assert sorted(STRATEGIES) == [
            "colluding_minority",
            "path_inconsistency",
            "probation_evader",
            "sampled_corruption",
            "sweep_timed",
        ]
        for name, cls in STRATEGIES.items():
            assert cls.STRATEGY == name

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary strategy"):
            build("quantum_tunneling")

    def test_sweep_timed_requires_compare(self):
        with pytest.raises(ValueError, match="compare core"):
            build("sweep_timed")

    def test_probation_evader_requires_compare_and_branch(self):
        with pytest.raises(ValueError, match="compare core"):
            build("probation_evader")
        with pytest.raises(ValueError, match="branch index"):
            build("probation_evader", compare=FakeCompare())


# ----------------------------------------------------------------------
# decision state machines
# ----------------------------------------------------------------------
class TestSampledCorruption:
    def test_rate_one_never_draws(self):
        class Poisoned:
            def random(self):  # pragma: no cover - must not be reached
                raise AssertionError("rate >= 1 must not consume the stream")

        s = SampledCorruption(fake_sim(), Poisoned(), rate=1.0)
        assert all(s.decide(packet(), 0.0) for _ in range(5))

    def test_rate_zero_never_lies(self):
        s = build("sampled_corruption", rate=0.0)
        assert not any(s.decide(packet(), 0.0) for _ in range(50))

    def test_rate_is_deterministic_per_stream(self):
        a = SampledCorruption(fake_sim(), random.Random(11), rate=0.3)
        b = SampledCorruption(fake_sim(), random.Random(11), rate=0.3)
        draws_a = [a.decide(packet(), 0.0) for _ in range(100)]
        draws_b = [b.decide(packet(), 0.0) for _ in range(100)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)


class TestPathInconsistency:
    def test_pace_selects_one_phase_per_cycle(self):
        s = build("path_inconsistency", pace=3)
        decisions = [s.decide(packet(), 0.0) for _ in range(12)]
        assert sum(decisions) == 4  # one per cycle of 3
        first = decisions.index(True)
        assert decisions[first::3] == [True] * 4
        assert 0 <= s._phase < 3

    def test_pace_one_lies_every_packet(self):
        s = build("path_inconsistency", pace=1)
        assert all(s.decide(packet(), 0.0) for _ in range(5))


class TestSweepTimed:
    def test_window_defaults_to_half_sweep_period(self):
        s = build("sweep_timed", compare=FakeCompare(buffer_timeout=2e-3))
        assert s.window == pytest.approx(1e-3)

    def test_subscription_lifecycle(self):
        compare = FakeCompare()
        s = build("sweep_timed", compare=compare)
        assert compare.sweep_listeners == []
        s.activate()
        assert compare.sweep_listeners == [s._on_sweep]
        s.deactivate()
        assert compare.sweep_listeners == []

    def test_lies_only_inside_post_sweep_window(self):
        s = build("sweep_timed", compare=FakeCompare(buffer_timeout=2e-3),
                  rate=1.0)
        s.activate()
        assert not s.decide(packet(), 0.005)  # no sweep seen yet
        s._on_sweep(0.010)
        assert s.decide(packet(), 0.0105)     # inside the 1 ms window
        assert not s.decide(packet(), 0.0115)  # window passed
        s._on_sweep(0.012)
        assert s.decide(packet(), 0.0125)     # re-armed by the next sweep


class TestProbationEvader:
    def build_evader(self, **kwargs):
        compare = FakeCompare()
        s = build("probation_evader", compare=compare, branch=1, **kwargs)
        s.activate()
        return s, compare

    def test_goes_quiet_on_own_quarantine_and_resumes_on_readmit(self):
        s, compare = self.build_evader()
        assert s.decide(packet(), 0.001)
        compare.membership_listeners[0]("quarantine", 1, 0.002)
        assert s.evasions == 1
        assert not s.decide(packet(), 0.003)  # serving probation
        compare.membership_listeners[0]("readmit", 1, 0.004)
        assert s.resumptions == 1
        assert s.decide(packet(), 0.005)      # lying again

    def test_other_branch_transitions_ignored(self):
        s, compare = self.build_evader()
        compare.membership_listeners[0]("quarantine", 0, 0.002)
        assert s.evasions == 0
        assert s.decide(packet(), 0.003)

    def test_pace_spaces_the_lies(self):
        s, _ = self.build_evader(pace=4)
        decisions = [s.decide(packet(), 0.0) for _ in range(8)]
        assert decisions == [False, False, False, True] * 2


# ----------------------------------------------------------------------
# the collusion wire image
# ----------------------------------------------------------------------
class TestCorruptPayload:
    def test_flips_exactly_one_byte(self):
        original = packet()
        mutated = corrupt_payload(original)
        assert mutated.payload != original.payload
        assert len(mutated.payload) == len(original.payload)
        diffs = [i for i, (a, b) in
                 enumerate(zip(original.payload, mutated.payload)) if a != b]
        assert diffs == [0]
        assert mutated.payload[0] == original.payload[0] ^ 0xFF

    def test_colluders_emit_identical_images_without_coordination(self):
        # two independent branches, different rng streams, same packet ->
        # byte-identical corruption (what makes collusion dangerous)
        p = packet()
        img_a = corrupt_payload(p.copy())
        img_b = corrupt_payload(p.copy())
        assert img_a.payload == img_b.payload
        assert isinstance(build("colluding_minority"), CollusionCorruption)


# ----------------------------------------------------------------------
# lifecycle accounting & metrics binding
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_active_seconds_accumulate_across_activations(self):
        sim = fake_sim()
        s = build("sampled_corruption", sim=sim)
        sim.now = 0.010
        s.activate()
        sim.now = 0.015
        s.deactivate()
        sim.now = 0.020
        s.activate()
        sim.now = 0.022
        s.deactivate()
        assert s.active_seconds == pytest.approx(0.007)
        assert s.activated_at is None

    def test_deactivate_without_activate_is_a_noop(self):
        s = build("sampled_corruption")
        s.deactivate()
        assert s.active_seconds == 0.0

    def test_metrics_bind_when_registry_enabled(self):
        registry = MetricsRegistry(enabled=True)
        sim = fake_sim()
        with use_registry(registry):
            s = build("sampled_corruption", sim=sim)
        fake_switch = SimpleNamespace(trace=lambda *a, **k: None)
        s.trace_tamper(fake_switch, "corrupt", packet())
        s.trace_tamper(fake_switch, "corrupt", packet())
        s.activate()
        sim.now = 0.5
        s.deactivate()
        samples = registry.samples()
        assert samples[
            'adversary_packets_tampered_total{strategy="sampled_corruption"}'
        ] == 2
        assert samples[
            'adversary_active_seconds{strategy="sampled_corruption"}'
        ] == pytest.approx(0.5)
        assert s.packets_tampered == 2

    def test_metrics_absent_when_registry_disabled(self):
        s = build("sampled_corruption")
        assert s._c_tampered is None and s._g_active is None
        # the hot path still counts locally
        s.trace_tamper(SimpleNamespace(trace=lambda *a, **k: None),
                       "corrupt", packet())
        assert s.packets_tampered == 1
