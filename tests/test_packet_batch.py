"""Property tests for :class:`repro.net.packet.PacketBatch`.

The batch tier's whole correctness story rests on one invariant: the
contiguous wire buffer a batch builds (template serialised once, then
RFC 1624-patched per packet) is **bit-identical** to serialising every
packet of the train from scratch.  These tests drive randomized trains
— random sizes, payloads, head lengths (odd and even, to exercise the
word-alignment path), idents, TTLs — and diff the images byte for byte,
before and after the batch-level header rewrites the data plane applies
(TTL decrement, Ethernet rewrite).
"""

import random
import struct

import pytest

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import Packet, PacketBatch

SEEDS = list(range(24))


def _template(rng, payload):
    return Packet.udp(
        src_mac=MacAddress.from_index(rng.randrange(1, 200)),
        dst_mac=MacAddress.from_index(rng.randrange(1, 200)),
        src_ip=IpAddress.from_index(rng.randrange(1, 200)),
        dst_ip=IpAddress.from_index(rng.randrange(1, 200)),
        sport=rng.randrange(1024, 65535),
        dport=rng.randrange(1024, 65535),
        payload=payload,
        ttl=rng.randrange(2, 255),
        ident=rng.randrange(0, 0xFFFF),
    )


def _random_train(rng):
    """A randomized train plus the per-packet reference constructor."""
    payload_len = rng.randrange(12, 600)
    payload = bytes(rng.randrange(256) for _ in range(payload_len))
    count = rng.randrange(2, 40)
    head_len = rng.randrange(0, min(16, payload_len) + 1)  # odd lengths too
    heads = [
        bytes(rng.randrange(256) for _ in range(head_len)) for _ in range(count)
    ]
    heads[0] = payload[:head_len]  # packet 0 IS the template
    idents = [rng.randrange(0, 0xFFFF) for _ in range(count)]
    template = _template(rng, payload)
    eth, _vlan, ip, udp, _ = template.fields()
    idents[0] = ip.ident  # ... so its delta entries must match it
    batch = PacketBatch(template, heads, idents)
    # snapshot the header fields now: the batch-level rewrites mutate the
    # template in place, and the references must stay independent
    src_mac, dst_mac = MacAddress(eth.src), MacAddress(eth.dst)
    src_ip, dst_ip = ip.src, ip.dst
    sport, dport, ttl = udp.sport, udp.dport, ip.ttl

    def reference(i):
        return Packet.udp(
            src_mac=src_mac,
            dst_mac=dst_mac,
            src_ip=src_ip,
            dst_ip=dst_ip,
            sport=sport,
            dport=dport,
            payload=heads[i] + payload[len(heads[i]):],
            ttl=ttl,
            ident=idents[i],
        )

    return batch, reference


def _slices(batch):
    buf = batch.wire_buffer()
    wl = batch.wire_len
    assert len(buf) == wl * batch.count
    return [bytes(buf[i * wl : (i + 1) * wl]) for i in range(batch.count)]


@pytest.mark.parametrize("seed", SEEDS)
def test_wire_buffer_matches_per_packet_serialisation(seed):
    rng = random.Random(seed)
    batch, reference = _random_train(rng)
    for i, image in enumerate(_slices(batch)):
        assert image == reference(i).to_bytes(), f"packet {i} differs"


@pytest.mark.parametrize("seed", SEEDS)
def test_packet_at_matches_buffer_and_reference(seed):
    rng = random.Random(seed)
    batch, reference = _random_train(rng)
    images = _slices(batch)
    for i in range(batch.count):
        pkt = batch.packet_at(i)
        assert pkt.to_bytes() == images[i]
        assert pkt.to_bytes() == reference(i).to_bytes()


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_ttl_decrement_matches_per_packet(seed):
    rng = random.Random(seed)
    batch, reference = _random_train(rng)
    batch.wire_buffer()
    batch.decrement_ttl()
    for i, image in enumerate(_slices(batch)):
        ref = reference(i)
        ref.decrement_ttl()
        assert image == ref.to_bytes(), f"packet {i} differs after TTL"


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_eth_rewrite_matches_per_packet(seed):
    rng = random.Random(seed)
    batch, reference = _random_train(rng)
    batch.wire_buffer()
    new_src = MacAddress.from_index(rng.randrange(200, 250))
    new_dst = MacAddress.from_index(rng.randrange(200, 250))
    batch.rewrite_eth(src=new_src, dst=new_dst)
    for i, image in enumerate(_slices(batch)):
        ref = reference(i)
        ref.rewrite_eth(src=new_src, dst=new_dst)
        assert image == ref.to_bytes(), f"packet {i} differs after rewrite"


def test_udp_train_shape_is_patchable():
    """The fig5 CBR train shape (12-byte seq/ts heads) takes the
    constant-time patch path, not the generic re-serialise path."""
    rng = random.Random(0)
    payload = bytes(rng.randrange(256) for _ in range(1400))
    template = _template(rng, payload)
    heads = [struct.pack("!IQ", i, 1_000_000 + i) for i in range(32)]
    heads[0] = payload[:12]
    batch = PacketBatch(template, heads, list(range(32)))
    assert batch._patchable
    images = _slices(batch)
    for i in range(32):
        assert images[i][42:54] == heads[i]
