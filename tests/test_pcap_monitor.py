"""Tests for the PCAP writer and the operator health monitor."""

import io

import pytest

from repro.analysis.monitor import HealthMonitor
from repro.core.alarms import (
    ALARM_DOS_SUSPECTED,
    ALARM_SINGLE_SOURCE_PACKET,
    AlarmSink,
)
from repro.net import Network, Packet
from repro.net.pcap import PCAP_MAGIC, PcapWriter, read_pcap


class TestPcap:
    def make_frames(self, count=3):
        net = Network(seed=71)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        return net, h1, h2, [
            Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001,
                       payload=bytes([i]) * 10, ident=i)
            for i in range(count)
        ]

    def test_write_and_read_roundtrip(self):
        net, h1, h2, frames = self.make_frames()
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for i, frame in enumerate(frames):
            writer.write(frame, timestamp=1.5 + i * 0.25)
        writer.close()
        buffer.seek(0)
        restored = read_pcap(buffer)
        assert len(restored) == 3
        assert [t for t, _p in restored] == pytest.approx([1.5, 1.75, 2.0])
        assert [p for _t, p in restored] == frames

    def test_global_header_magic(self):
        buffer = io.BytesIO()
        PcapWriter(buffer).close()
        assert int.from_bytes(buffer.getvalue()[:4], "little") == PCAP_MAGIC

    def test_snaplen_truncates(self):
        net, h1, h2, _ = self.make_frames()
        big = Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 2, payload=b"x" * 500)
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=60)
        writer.write(big, 0.0)
        writer.close()
        # record header says incl_len=60, orig_len=full
        record = buffer.getvalue()[24:40]
        incl = int.from_bytes(record[8:12], "little")
        orig = int.from_bytes(record[12:16], "little")
        assert incl == 60 and orig == big.wire_len

    def test_attach_captures_port_traffic(self, tmp_path):
        net = Network(seed=72)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect(h1, h2)
        path = tmp_path / "run.pcap"
        with PcapWriter(str(path)) as writer:
            writer.attach(h2.port(1))
            h2.bind_udp(5001, lambda p: None)
            for i in range(5):
                net.sim.schedule(
                    i * 1e-3,
                    lambda i=i: h1.send(
                        Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001, ident=i)
                    ),
                )
            net.run()
            assert writer.frames_written == 5
        frames = read_pcap(str(path))
        assert len(frames) == 5
        times = [t for t, _p in frames]
        assert times == sorted(times)

    def test_write_after_close_rejected(self):
        writer = PcapWriter(io.BytesIO())
        writer.close()
        net, h1, h2, frames = self.make_frames(1)
        with pytest.raises(ValueError):
            writer.write(frames[0], 0.0)

    def test_read_rejects_garbage(self):
        with pytest.raises(Exception):
            read_pcap(io.BytesIO(b"\x00" * 64))


class TestHealthMonitor:
    def test_no_alarms_is_healthy(self):
        monitor = HealthMonitor()
        monitor.watch(AlarmSink())
        assert monitor.refresh() == 0
        assert monitor.suspects() == []
        assert "healthy" in monitor.summary()

    def test_branch_attribution_and_severity(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=2)
        sink.raise_alarm(1.5, ALARM_DOS_SUSPECTED, "cmp", branch=0)
        assert monitor.refresh() == 2
        assert monitor.suspects() == [0, 2]  # critical first
        assert monitor.branch(0).worst_severity == "critical"
        assert monitor.branch(2).worst_severity == "warning"
        assert monitor.branch(1).worst_severity == "healthy"

    def test_incremental_refresh(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=1)
        assert monitor.refresh() == 1
        assert monitor.refresh() == 0
        sink.raise_alarm(2.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=1)
        assert monitor.refresh() == 1
        assert monitor.branch(1).alarms == 2

    def test_detection_latency(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(0.5, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=0)
        sink.raise_alarm(2.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=1)
        monitor.refresh()
        # compromise began at t=1.0: the t=0.5 alarm predates it
        assert monitor.detection_latency(1.0) == pytest.approx(1.0)
        assert monitor.detection_latency(5.0) is None

    def test_multiple_sinks(self):
        a, b = AlarmSink(), AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(a)
        monitor.watch(b)
        a.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "x", branch=0)
        b.raise_alarm(1.0, ALARM_DOS_SUSPECTED, "y", branch=0)
        assert monitor.refresh() == 2
        assert monitor.branch(0).alarms == 2

    def test_summary_lists_kinds(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        for _ in range(3):
            sink.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=2)
        monitor.refresh()
        text = monitor.summary()
        assert "branch 2" in text and "x3" in text

    def test_unknown_alarm_kind_rolls_up_as_warning(self):
        # Kinds outside SEVERITIES must not crash the rollup; any alarm
        # makes a branch at least a warning, but never critical.
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(1.0, "future_alarm_kind", "cmp", branch=3)
        monitor.refresh()
        assert monitor.branch(3).worst_severity == "warning"
        assert monitor.suspects() == [3]
        assert "branch 3: WARNING" in monitor.summary()

    def test_unknown_kind_does_not_mask_critical(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(1.0, "future_alarm_kind", "cmp", branch=0)
        sink.raise_alarm(2.0, ALARM_DOS_SUSPECTED, "cmp", branch=0)
        monitor.refresh()
        assert monitor.branch(0).worst_severity == "critical"

    def test_suspects_break_severity_ties_by_alarm_count(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=0)
        for _ in range(3):
            sink.raise_alarm(1.0, ALARM_SINGLE_SOURCE_PACKET, "cmp", branch=1)
        monitor.refresh()
        assert monitor.suspects() == [1, 0]

    def test_unattributed_alarms_tracked_in_summary_and_latency(self):
        sink = AlarmSink()
        monitor = HealthMonitor()
        monitor.watch(sink)
        sink.raise_alarm(2.0, ALARM_DOS_SUSPECTED, "cmp")  # no branch
        monitor.refresh()
        assert monitor.suspects() == []
        assert "unattributed alarms: 1" in monitor.summary()
        assert monitor.detection_latency(1.0) == pytest.approx(1.0)

    def test_end_to_end_with_combiner(self):
        from repro.adversary import PayloadCorruptionBehavior
        from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
        from repro.traffic.iperf import PathEndpoints, run_ping

        net = Network(seed=73)
        chain = build_combiner_chain(
            net, "nc",
            CombinerChainParams(k=3, compare=CompareConfig(k=3, buffer_timeout=2e-3)),
        )
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        net.connect(h1, chain.endpoint_a)
        net.connect(h2, chain.endpoint_b)
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
        monitor = HealthMonitor()
        monitor.watch(chain.alarms)

        net.sim.schedule(
            0.005, lambda: PayloadCorruptionBehavior().attach(chain.router(1))
        )
        run_ping(PathEndpoints(net, h1, h2), count=20, interval=1e-3)
        chain.compare_core.flush()
        monitor.refresh()
        assert monitor.suspects() == [1]
        latency = monitor.detection_latency(0.005)
        assert latency is not None and latency < 0.01
