"""Tests pinning the Section VI case study to the paper's exact numbers."""

import pytest

from repro.scenarios.datacenter import BENIGN_PATH, DatacenterCaseStudy


@pytest.fixture(scope="module")
def study():
    return DatacenterCaseStudy(seed=1, echo_count=10)


@pytest.fixture(scope="module")
def baseline(study):
    return study.run_baseline()


@pytest.fixture(scope="module")
def attack(study):
    return study.run_attack()


@pytest.fixture(scope="module")
def protected(study):
    return study.run_protected()


class TestBaseline:
    def test_ten_perfect_cycles(self, baseline):
        assert baseline.requests_sent == 10
        assert baseline.requests_at_fw1 == 10
        assert baseline.responses_at_vm1 == 10

    def test_no_stray_packets(self, baseline):
        assert baseline.screening.strays == 0
        assert baseline.screening.stray_nodes == []

    def test_screening_saw_the_benign_path(self, baseline):
        for node in ("edge2", "agg1", "edge1"):
            assert baseline.screening.per_node.get(node, 0) > 0
        # 10 requests + 10 responses traverse each path switch
        assert baseline.screening.per_node["agg1"] == 20


class TestAttack:
    def test_twenty_requests_at_fw1(self, attack):
        # "After 10 requests sent, we witness 20 requests arriving at fw1"
        assert attack.requests_sent == 10
        assert attack.requests_at_fw1 == 20

    def test_zero_responses_at_vm1(self, attack):
        assert attack.responses_at_vm1 == 0

    def test_mirrored_copies_cross_the_core(self, attack):
        assert "core1" in attack.screening.stray_nodes
        assert attack.screening.per_node["core1"] == 10

    def test_no_other_strays(self, attack):
        assert attack.screening.stray_nodes == ["core1"]


class TestProtected:
    def test_all_ten_cycles_complete(self, protected):
        assert protected.requests_sent == 10
        assert protected.responses_at_vm1 == 10

    def test_fw1_sees_only_the_true_requests(self, protected):
        assert protected.requests_at_fw1 == 10

    def test_no_packet_strays_from_benign_path(self, protected):
        assert protected.screening.strays == 0

    def test_mirrored_copies_died_in_the_compare(self, protected):
        # "we saw the mirrored packets arriving, yet none of them left
        # the compare"
        assert protected.compare_expired_unreleased >= 10
        assert protected.single_source_alarms >= 10

    def test_responses_released_on_two_of_three(self, protected):
        # 10 requests + 10 responses released despite the dropped copies
        assert protected.compare_released == 20


class TestVariants:
    def test_malicious_replica_position_irrelevant(self):
        study = DatacenterCaseStudy(seed=3, echo_count=5)
        for position in (0, 1, 2):
            result = study.run_protected(malicious_replica=position)
            assert result.responses_at_vm1 == 5, f"replica {position}"

    def test_k5_shield_also_protects(self):
        study = DatacenterCaseStudy(seed=4, echo_count=5)
        result = study.run_protected(k=5)
        assert result.responses_at_vm1 == 5
        assert result.requests_at_fw1 == 5

    def test_benign_path_constant(self):
        assert BENIGN_PATH == ("vm1", "edge2", "agg1", "edge1", "fw1")
