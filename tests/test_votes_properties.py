"""Property-based tests for the vote book: the NetCo safety and
liveness invariants under arbitrary arrival interleavings.

* Safety: a packet is released iff strictly more than ⌊k/2⌋ *distinct*
  branches delivered it, regardless of arrival order and repetition.
* At-most-once: no interleaving releases a packet twice.
"""

from hypothesis import given, settings, strategies as st

from repro.core import VoteBook
from repro.net import IpAddress, MacAddress, Packet


def pkt(ident=0):
    return Packet.udp(
        MacAddress.from_index(1), MacAddress.from_index(2),
        IpAddress.from_index(1), IpAddress.from_index(2),
        1, 2, ident=ident,
    )


# an arrival sequence: (key index, branch id) pairs
arrivals = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 4)), min_size=0, max_size=60
)


@given(arrivals, st.integers(1, 5))
@settings(max_examples=200)
def test_released_iff_quorum_distinct_branches(sequence, k):
    quorum = k // 2 + 1
    book = VoteBook(quorum=quorum, timeout=100.0)
    releases = {}
    for i, (key, branch) in enumerate(sequence):
        outcome = book.observe(key, branch, float(i) * 1e-3, pkt(key))
        if outcome.newly_released:
            releases[key] = releases.get(key, 0) + 1
    seen = {}
    for key, branch in sequence:
        seen.setdefault(key, set()).add(branch)
    for key, branches in seen.items():
        expected = 1 if len(branches) >= quorum else 0
        assert releases.get(key, 0) == expected


@given(arrivals)
@settings(max_examples=150)
def test_at_most_one_release_per_key(sequence):
    book = VoteBook(quorum=2, timeout=100.0)
    release_counts = {}
    for i, (key, branch) in enumerate(sequence):
        outcome = book.observe(key, branch, float(i) * 1e-3, pkt(key))
        if outcome.newly_released:
            release_counts[key] = release_counts.get(key, 0) + 1
    assert all(count == 1 for count in release_counts.values())


@given(arrivals)
@settings(max_examples=150)
def test_copy_accounting_is_exact(sequence):
    book = VoteBook(quorum=3, timeout=100.0)
    for i, (key, branch) in enumerate(sequence):
        book.observe(key, branch, float(i) * 1e-3, pkt(key))
    totals = {}
    for key, _branch in sequence:
        totals[key] = totals.get(key, 0) + 1
    for entry in book.entries():
        # entry keys are the raw observe keys here
        assert entry.total_copies() == totals[entry.key]


@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=20),
    st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=100)
def test_expiry_is_complete_and_final(branches, timeout):
    book = VoteBook(quorum=2, timeout=timeout)
    for i, branch in enumerate(branches):
        book.observe("k", branch, 0.0, pkt())
    expired = book.pop_expired(timeout + 0.001)
    assert len(expired) == 1
    assert len(book) == 0
    assert book.pop_expired(1e9) == []


@given(arrivals)
@settings(max_examples=100)
def test_late_copies_never_release(sequence):
    book = VoteBook(quorum=1, timeout=100.0)  # everything releases at once
    for i, (key, branch) in enumerate(sequence):
        outcome = book.observe(key, branch, float(i) * 1e-3, pkt(key))
        if not outcome.is_new_entry:
            assert outcome.late_copy
            assert not outcome.newly_released
