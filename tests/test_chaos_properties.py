"""Property-based quorum invariants under randomized fault schedules.

For ≥20 randomized sessions (random delivery subsets, random
corruptions, random operator quarantine/readmit actions) the compare
must uphold the NetCo contract in degraded mode too:

* every released packet is the bit-identical wire image delivered by a
  strict majority of the branches that were *non-quarantined* when they
  voted (and never fewer than two of them);
* a packet that never collects two identical countable copies is never
  released (no release during a below-quorum window);
* the dynamic quorum never drops below 2 and the active bundle never
  shrinks below ``min_active_branches``.
"""

import random

import pytest

from repro.core import CompareConfig, CompareContext, CompareCore
from repro.net import IpAddress, MacAddress, Packet
from repro.sim import Simulator

SEEDS = list(range(24))
K = 3


def make_pkt(ident, payload):
    return Packet.udp(
        MacAddress.from_index(1), MacAddress.from_index(2),
        IpAddress.from_index(1), IpAddress.from_index(2),
        5, 5, payload=payload, ident=ident,
    )


class ChaosSession:
    """One randomized compare session with full submission provenance."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.sim = Simulator()
        self.core = CompareCore(
            self.sim,
            CompareConfig(
                k=K,
                buffer_timeout=0.004,
                miss_threshold=6,
                probation_clean_target=4,
            ),
        )
        #: ident -> list of (branch, wire bytes, quarantined at vote time)
        self.votes = {}
        #: (packet, release time, quorum at release, active set at release)
        self.releases = []
        self.quorum_seen = []
        self.active_seen = []
        self.context = CompareContext(
            scope="s",
            release=self._on_release,
            block_branch=lambda branch, duration: None,
        )

    def _on_release(self, packet):
        self.releases.append(
            (
                packet,
                self.sim.now,
                self.core.book.quorum,
                tuple(self.core.active_branches()),
            )
        )

    def _submit(self, ident, branch, payload):
        self.votes.setdefault(ident, []).append(
            (branch, payload, self.core.is_quarantined(branch))
        )
        self.core.submit(make_pkt(ident, payload), branch, self.context)
        self.quorum_seen.append(self.core.book.quorum)
        self.active_seen.append(len(self.core.active_branches()))

    def run(self, packets=120):
        rng = self.rng
        t = 0.0
        for ident in range(packets):
            t += rng.uniform(1e-4, 6e-4)
            payload = bytes([ident % 251, (ident >> 8) & 0xFF]) * 8
            delivering = [b for b in range(K) if rng.random() < 0.8]
            corrupt = rng.random() < 0.15
            for order, branch in enumerate(delivering):
                data = payload
                if corrupt and order == 0:
                    data = b"\xff" + payload[1:]
                delay = rng.uniform(0.0, 2e-4)
                self.sim.schedule_at(
                    t + delay,
                    lambda i=ident, b=branch, d=data: self._submit(i, b, d),
                )
            if rng.random() < 0.06:
                branch = rng.randrange(K)
                self.sim.schedule_at(
                    t + rng.uniform(0.0, 1e-4),
                    lambda b=branch: self.core.quarantine_branch(b, reason="op"),
                )
            if rng.random() < 0.06:
                branch = rng.randrange(K)
                self.sim.schedule_at(
                    t + rng.uniform(0.0, 1e-4),
                    lambda b=branch: self.core.readmit_branch(b, reason="op"),
                )
        self.sim.run(until=t + 0.05)
        self.core.flush()
        return self


@pytest.mark.parametrize("seed", SEEDS)
def test_release_requires_countable_bit_identical_majority(seed):
    s = ChaosSession(seed).run()
    assert s.releases, "session produced no releases at all"
    for packet, _time, quorum, active in s.releases:
        votes = s.votes[packet.ip.ident]
        wire = packet.to_bytes()
        matching = {
            branch
            for branch, data, quarantined in votes
            if not quarantined and make_pkt(packet.ip.ident, data).to_bytes() == wire
        }
        # strict majority of the active (non-quarantined) bundle, and
        # never a single-source release
        assert len(matching) >= 2
        assert len(matching) >= len(active) // 2 + 1
        assert len(matching) >= quorum


@pytest.mark.parametrize("seed", SEEDS)
def test_no_release_during_below_quorum_window(seed):
    s = ChaosSession(seed).run()
    released_idents = {p.ip.ident for p, *_ in s.releases}
    for ident, votes in s.votes.items():
        # the strongest countable agreement this packet ever collected
        by_payload = {}
        for branch, data, quarantined in votes:
            if not quarantined:
                by_payload.setdefault(data, set()).add(branch)
        best = max((len(b) for b in by_payload.values()), default=0)
        if best < 2:
            assert ident not in released_idents, (
                f"packet {ident} released with only {best} countable "
                f"identical copies"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_quorum_and_bundle_floors_hold(seed):
    s = ChaosSession(seed).run()
    assert min(s.quorum_seen) >= 2
    assert min(s.active_seen) >= s.core.config.min_active_branches
    # every release carries at least two distinct active branches
    for _packet, _time, quorum, active in s.releases:
        assert quorum >= 2
        assert len(active) >= 2


def test_full_lifecycle_fixed_seed():
    """One deterministic end-to-end check: quarantine shrinks the quorum
    bookkeeping, probation re-admits, and releases continue throughout."""
    s = ChaosSession(seed=99)
    sim, core = s.sim, s.core

    # steady traffic on all three branches, branch 2 silent mid-run
    def offer(ident, t, branches):
        payload = bytes([ident % 200]) * 12
        for b in branches:
            sim.schedule_at(t, lambda i=ident, b=b: s._submit(i, b, payload))

    t = 0.0
    for i in range(80):
        t += 5e-4
        if 0.010 <= t < 0.022:
            branches = (0, 1)  # branch 2 dark -> misses accumulate
        else:
            branches = (0, 1, 2)
        offer(i, t, branches)
    sim.schedule_at(0.0205, lambda: core.quarantine_branch(2, reason="test"))
    sim.run(until=t + 0.05)
    core.flush()

    assert core.stats.quarantines == 1
    assert core.stats.readmissions == 1  # probation completed on clean votes
    assert not core.is_quarantined(2)
    # no packet went missing end-to-end while degraded
    assert len(s.releases) == 80
