"""Tests for measurement primitives (stats, jitter, throughput)."""

import pytest

from repro.traffic.stats import JitterEstimator, SummaryStats, ThroughputMeter, mbits


class TestSummaryStats:
    def test_empty_is_all_zero(self):
        stats = SummaryStats()
        assert stats.mean == 0.0 and stats.stdev == 0.0
        assert stats.percentile(50) == 0.0

    def test_mean_min_max(self):
        stats = SummaryStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert stats.mean == 2.0
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.count == 3

    def test_stdev(self):
        stats = SummaryStats()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(v)
        assert stats.stdev == pytest.approx(2.138, abs=0.01)

    def test_stdev_single_sample_zero(self):
        stats = SummaryStats()
        stats.add(5.0)
        assert stats.stdev == 0.0

    def test_percentiles_interpolate(self):
        stats = SummaryStats()
        for v in (10.0, 20.0, 30.0, 40.0):
            stats.add(v)
        assert stats.percentile(0) == 10.0
        assert stats.percentile(100) == 40.0
        assert stats.percentile(50) == 25.0

    def test_percentile_single_sample(self):
        stats = SummaryStats()
        stats.add(7.0)
        assert stats.percentile(99) == 7.0

    def test_as_dict(self):
        stats = SummaryStats()
        stats.add(1.0)
        d = stats.as_dict()
        assert d["count"] == 1 and "p99" in d


class TestJitterEstimator:
    def test_constant_transit_time_zero_jitter(self):
        jitter = JitterEstimator()
        for i in range(20):
            jitter.observe(send_time=i * 0.01, recv_time=i * 0.01 + 0.005)
        assert jitter.jitter < 1e-12  # only float rounding noise

    def test_varying_transit_accumulates(self):
        jitter = JitterEstimator()
        jitter.observe(0.00, 0.005)
        jitter.observe(0.01, 0.016)  # transit +1ms
        assert jitter.jitter == pytest.approx(0.001 / 16)

    def test_converges_toward_mean_abs_delta(self):
        jitter = JitterEstimator()
        # transit alternates by 1 ms every packet
        for i in range(500):
            transit = 0.005 + (0.001 if i % 2 else 0.0)
            jitter.observe(i * 0.01, i * 0.01 + transit)
        assert 0.0005 < jitter.jitter < 0.0011

    def test_sample_count(self):
        jitter = JitterEstimator()
        jitter.observe(0.0, 0.1)
        jitter.observe(1.0, 1.1)
        jitter.observe(2.0, 2.1)
        assert jitter.samples == 2  # first observation only primes


class TestThroughputMeter:
    def test_mbps_over_window(self):
        meter = ThroughputMeter()
        meter.observe(125_000, now=0.5)  # 1 Mbit
        assert meter.mbps(window=1.0) == pytest.approx(1.0)

    def test_mbps_first_to_last(self):
        meter = ThroughputMeter()
        meter.observe(125_000, now=1.0)
        meter.observe(125_000, now=3.0)
        assert meter.mbps() == pytest.approx(1.0)

    def test_empty_meter(self):
        assert ThroughputMeter().mbps() == 0.0

    def test_mbits_helper(self):
        assert mbits(125_000, 1.0) == pytest.approx(1.0)
        assert mbits(1, 0.0) == 0.0
