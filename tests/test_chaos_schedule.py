"""Unit tests for the chaos engine: event types, JSON round-trips,
deterministic compilation, and the link/switch fault hooks."""

import json

import pytest

from repro.chaos import (
    AdversaryStrategy,
    BandwidthDegrade,
    BehaviorOn,
    ChaosEngine,
    FaultSchedule,
    GilbertElliottLoss,
    LinkDown,
    LossBurst,
    RouterCrash,
    builtin_battery,
)
from repro.net import IpAddress, MacAddress, Network, Packet
from repro.openflow import Match, Output
from repro.sim import RngStreams


def two_switch_net(seed=5, rate_bps=None, loss=0.0):
    """h1 -- s1 -- s2 -- h2 with MAC forwarding installed."""
    from repro.openflow.switch import OpenFlowSwitch

    net = Network(seed=seed)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    s1 = net.add_node(OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace))
    s2 = net.add_node(OpenFlowSwitch(net.sim, "s2", trace_bus=net.trace))
    net.connect(h1, s1)
    net.connect(s1, s2, rate_bps=rate_bps, loss=loss)
    net.connect(s2, h2)
    for sw, nxt_h2, nxt_h1 in ((s1, "s2", "h1"), (s2, "h2", "s1")):
        sw.install(Match(dl_dst=h2.mac), [Output(net.port_no_between(sw.name, nxt_h2))])
        sw.install(Match(dl_dst=h1.mac), [Output(net.port_no_between(sw.name, nxt_h1))])
    return net, h1, h2, s1, s2


def blast(net, h1, h2, count=20, start=0.0, spacing=1e-3):
    """Schedule `count` spaced UDP datagrams h1 -> h2; return recv list."""
    got = []
    h2.bind_udp(7, lambda p: got.append(p))

    def send(i):
        p = Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 7, 7,
                       payload=bytes([i]) * 20, ident=i)
        h1.send(p)

    for i in range(count):
        net.sim.schedule_at(start + i * spacing, lambda i=i: send(i))
    return got


# ----------------------------------------------------------------------
# schedule serialisation
# ----------------------------------------------------------------------
class TestScheduleFormat:
    def test_json_round_trip(self):
        for schedule in builtin_battery().values():
            d = schedule.to_dict()
            again = FaultSchedule.from_dict(d)
            assert again.to_dict() == d
            assert FaultSchedule.from_json(json.dumps(d)).to_dict() == d

    def test_events_sorted_by_time(self):
        s = FaultSchedule([LinkDown(0.5, "l"), RouterCrash(0.1, "r")])
        assert [e.time for e in s] == [0.1, 0.5]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "meteor_strike", "time": 0.1, "target": "x"}]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "link_down", "time": 0.1, "target": "x",
                             "sideways": True}]}
            )

    def test_validation_catches_bad_windows(self):
        with pytest.raises(ValueError, match="until"):
            FaultSchedule([LinkDown(0.5, "l", until=0.4)]).validate()
        with pytest.raises(ValueError, match="restart_at"):
            FaultSchedule([RouterCrash(0.5, "r", restart_at=0.5)]).validate()
        with pytest.raises(ValueError, match="unknown behavior"):
            FaultSchedule([BehaviorOn(0.1, "r", behavior="gremlin")]).validate()

    def test_adversary_strategy_round_trip(self):
        schedule = FaultSchedule(
            [
                AdversaryStrategy(0.002, "r1", strategy="sampled_corruption",
                                  rate=0.25, until=0.009),
                AdversaryStrategy(0.003, "r0", strategy="path_inconsistency",
                                  pace=3),
                AdversaryStrategy(0.004, "r2", strategy="sweep_timed",
                                  window=5e-4),
            ],
            name="strategies",
        )
        schedule.validate()
        d = schedule.to_dict()
        again = FaultSchedule.from_dict(d)
        assert again.to_dict() == d
        assert FaultSchedule.from_json(json.dumps(d)).to_dict() == d
        event = next(iter(again))
        assert isinstance(event, AdversaryStrategy)
        assert (event.strategy, event.rate, event.until) == (
            "sampled_corruption", 0.25, 0.009)

    def test_adversary_strategy_validation(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", strategy="gremlin")]
            ).validate()
        with pytest.raises(ValueError, match="rate"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", rate=1.5)]
            ).validate()
        with pytest.raises(ValueError, match="pace"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", pace=0)]
            ).validate()
        with pytest.raises(ValueError, match="window"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", window=-1e-3)]
            ).validate()
        with pytest.raises(ValueError, match="until"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", until=0.1)]
            ).validate()

    def test_save_and_reload(self, tmp_path):
        path = str(tmp_path / "spec.json")
        schedule = builtin_battery()["crash_restart"]
        schedule.save(path)
        assert FaultSchedule.from_json_file(path).to_dict() == schedule.to_dict()


# ----------------------------------------------------------------------
# engine compilation & target resolution
# ----------------------------------------------------------------------
class TestEngine:
    def test_unresolvable_target_fails_at_arm_time(self):
        net, *_ = two_switch_net()
        engine = ChaosEngine(
            FaultSchedule([RouterCrash(0.01, "nonesuch")]), net
        )
        with pytest.raises(ValueError, match="no node named"):
            engine.arm()

    def test_link_target_must_be_a_link(self):
        net, *_ = two_switch_net()
        engine = ChaosEngine(FaultSchedule([LinkDown(0.01, "nonesuch")]), net)
        with pytest.raises(ValueError, match="no link named"):
            engine.arm()

    def test_aliases_resolve(self):
        net, _, _, s1, _ = two_switch_net()
        engine = ChaosEngine(
            FaultSchedule([RouterCrash(0.01, "victim")]),
            net,
            aliases={"victim": "s1"},
        )
        engine.arm()
        net.run(until=0.02)
        assert s1.failed
        assert engine.injections == [
            {"time": 0.01, "kind": "router_crash", "target": "victim"}
        ]

    def test_arm_twice_rejected(self):
        net, *_ = two_switch_net()
        engine = ChaosEngine(FaultSchedule([]), net)
        engine.arm()
        with pytest.raises(RuntimeError):
            engine.arm()

    def test_injection_log_and_traces(self):
        net, _, _, s1, _ = two_switch_net()
        schedule = FaultSchedule(
            [LinkDown(0.005, "s1-s2", until=0.010), RouterCrash(0.015, "s1")],
            name="probe",
        )
        engine = ChaosEngine(schedule, net)
        engine.arm()
        net.run(until=0.05)
        kinds = [i["kind"] for i in engine.injections]
        assert kinds == ["link_down", "link_up", "router_crash"]
        topics = {r.topic for r in net.trace.select("chaos.*")}
        assert topics == {"chaos.link_down", "chaos.link_up", "chaos.router_crash"}


# ----------------------------------------------------------------------
# fault hooks end-to-end
# ----------------------------------------------------------------------
class TestLinkFaults:
    def test_link_down_window_drops_then_heals(self):
        net, h1, h2, *_ = two_switch_net()
        got = blast(net, h1, h2, count=20, spacing=1e-3)
        engine = ChaosEngine(
            FaultSchedule([LinkDown(0.0045, "s1-s2", until=0.0145)]), net
        )
        engine.arm()
        net.run(until=0.05)
        # datagrams 5..14 hit the dead window; the rest pass
        idents = sorted(p.ip.ident for p in got)
        assert idents == [0, 1, 2, 3, 4] + list(range(15, 20))
        link = next(l for l in net.links if l.name == "s1-s2")
        assert link.direction_stats(link.a).fault_drops == 10
        assert not link.is_down

    def test_bandwidth_degrade_and_restore(self):
        net, *_ = two_switch_net(rate_bps=1e6)
        link = next(l for l in net.links if l.name == "s1-s2")
        engine = ChaosEngine(
            FaultSchedule([BandwidthDegrade(0.001, "s1-s2", factor=0.25,
                                            until=0.002)]),
            net,
        )
        engine.arm()
        net.run(until=0.0015)
        assert link.rates_bps() == (0.25e6, 0.25e6)
        net.run(until=0.003)
        assert link.rates_bps() == (1e6, 1e6)

    def test_gilbert_elliott_is_deterministic(self):
        def draw(seed):
            model = GilbertElliottLoss(
                RngStreams(seed).stream("ge"), 0.3, 0.3, loss_bad=0.9
            )
            return [model() for _ in range(200)]

        assert draw(4) == draw(4)
        assert draw(4) != draw(5)
        assert any(draw(4))  # bursts actually lose packets
        assert not all(draw(4))

    def test_loss_burst_installs_and_clears_model(self):
        net, *_ = two_switch_net()
        link = next(l for l in net.links if l.name == "s1-s2")
        engine = ChaosEngine(
            FaultSchedule(
                [LossBurst(0.001, "s1-s2", until=0.002, loss_bad=1.0)]
            ),
            net,
        )
        engine.arm()
        net.run(until=0.0015)
        assert link._a_to_b._loss_model is not None
        net.run(until=0.003)
        assert link._a_to_b._loss_model is None


class TestSwitchFaults:
    def test_crash_wipes_flows_and_drops(self):
        net, h1, h2, s1, _ = two_switch_net()
        got = blast(net, h1, h2, count=10, spacing=1e-3)
        engine = ChaosEngine(FaultSchedule([RouterCrash(0.0035, "s1")]), net)
        engine.arm()
        net.run(until=0.05)
        assert s1.failed
        assert len(s1.table) == 0
        assert sorted(p.ip.ident for p in got) == [0, 1, 2, 3]
        assert s1.stats.dropped_failed == 6

    def test_restart_restores_flows_and_traffic(self):
        net, h1, h2, s1, _ = two_switch_net()
        got = blast(net, h1, h2, count=10, spacing=1e-3)
        engine = ChaosEngine(
            FaultSchedule([RouterCrash(0.0035, "s1", restart_at=0.0065)]), net
        )
        engine.arm()
        net.run(until=0.05)
        assert not s1.failed
        assert len(s1.table) == 2  # both MAC routes back
        assert sorted(p.ip.ident for p in got) == [0, 1, 2, 3, 7, 8, 9]

    def test_behavior_window_turns_switch_adversarial(self):
        net, h1, h2, s1, _ = two_switch_net()
        got = blast(net, h1, h2, count=10, spacing=1e-3)
        engine = ChaosEngine(
            FaultSchedule(
                [BehaviorOn(0.0035, "s1", behavior="blackhole", until=0.0065)]
            ),
            net,
        )
        engine.arm()
        net.run(until=0.05)
        assert s1.behavior is None  # restored
        assert s1.stats.behavior_handled == 3
        assert sorted(p.ip.ident for p in got) == [0, 1, 2, 3, 7, 8, 9]


class TestAdversaryStrategyEvents:
    def test_activation_window_tampers_then_restores(self):
        net, h1, h2, s1, _ = two_switch_net()
        got = blast(net, h1, h2, count=10, spacing=1e-3)
        engine = ChaosEngine(
            FaultSchedule(
                [AdversaryStrategy(0.0035, "s1", strategy="sampled_corruption",
                                   rate=1.0, until=0.0065)]
            ),
            net,
        )
        engine.arm()
        net.run(until=0.05)
        assert s1.behavior is None  # restored after the window
        strategy = engine.strategy_behaviors["s1"]
        # datagrams 4..6 crossed the active window and were corrupted
        # in-flight (still delivered: no voter on this toy topology)
        assert strategy.packets_tampered == 3
        assert strategy.active_seconds == pytest.approx(0.003)
        assert strategy.activated_at is None
        assert len(got) == 10
        corrupted = [p for p in got if set(p.payload) != {p.payload[-1]}]
        assert len(corrupted) == 3

    def test_strategy_uses_named_rng_stream(self):
        def tampered_idents(seed):
            net, h1, h2, _, _ = two_switch_net(seed=seed)
            got = blast(net, h1, h2, count=20, spacing=1e-3)
            ChaosEngine(
                FaultSchedule(
                    [AdversaryStrategy(0.0, "s1",
                                       strategy="sampled_corruption",
                                       rate=0.5)],
                    name="probe",
                ),
                net,
            ).arm()
            net.run(until=0.05)
            return sorted(p.ip.ident for p in got
                          if set(p.payload) != {p.payload[-1]})

        assert tampered_idents(3) == tampered_idents(3)
        assert tampered_idents(3) != tampered_idents(4)

    def test_compare_bound_strategy_without_core_fails_at_arm(self):
        net, *_ = two_switch_net()
        engine = ChaosEngine(
            FaultSchedule(
                [AdversaryStrategy(0.001, "s1", strategy="sweep_timed")]
            ),
            net,
        )
        with pytest.raises(ValueError, match="compare core"):
            engine.arm()


def test_chaos_run_is_bit_reproducible():
    """Same schedule + seed -> byte-identical survivability record."""
    from repro.analysis.tasks import chaos_run

    schedule = builtin_battery()["crash_restart"].to_dict()
    a = json.dumps(chaos_run(schedule=schedule, seed=9, duration=0.03),
                   sort_keys=True)
    b = json.dumps(chaos_run(schedule=schedule, seed=9, duration=0.03),
                   sort_keys=True)
    assert a == b


class TestExplicitBranchTargets:
    """adversary_strategy events may name the branch index explicitly —
    needed when the switch name carries no ``r<i>`` hint."""

    def gateway_net(self):
        from repro.openflow.switch import OpenFlowSwitch

        net = Network(seed=5)
        net.add_node(OpenFlowSwitch(net.sim, "edge_gateway",
                                    trace_bus=net.trace))
        return net

    def compare_core(self, net):
        from repro.core import CompareConfig, CompareCore

        return CompareCore(net.sim, CompareConfig(k=3))

    def test_branch_field_round_trip(self):
        schedule = FaultSchedule(
            [AdversaryStrategy(0.001, "edge_gateway",
                               strategy="probation_evader", branch=2)]
        )
        schedule.validate()
        d = schedule.to_dict()
        assert d["events"][0]["branch"] == 2
        assert FaultSchedule.from_dict(d).to_dict() == d
        # an event without the field must not serialise it
        bare = FaultSchedule(
            [AdversaryStrategy(0.001, "r1", strategy="sweep_timed")]
        ).to_dict()
        assert "branch" not in bare["events"][0]

    def test_negative_branch_rejected(self):
        with pytest.raises(ValueError, match="branch"):
            FaultSchedule(
                [AdversaryStrategy(0.1, "r1", branch=-1)]
            ).validate()

    def test_explicit_branch_arms_opaque_switch_name(self):
        net = self.gateway_net()
        engine = ChaosEngine(
            FaultSchedule(
                [AdversaryStrategy(0.001, "edge_gateway",
                                   strategy="probation_evader", branch=1)]
            ),
            net,
            compare_core=self.compare_core(net),
        )
        engine.arm()  # must not raise: the branch is explicit
        assert "edge_gateway" in engine.strategy_behaviors

    def test_unresolvable_target_errors_clearly(self):
        net = self.gateway_net()
        engine = ChaosEngine(
            FaultSchedule(
                [AdversaryStrategy(0.001, "edge_gateway",
                                   strategy="probation_evader")]
            ),
            net,
            compare_core=self.compare_core(net),
        )
        with pytest.raises(ValueError, match="explicit 'branch' field"):
            engine.arm()

    def test_explicit_branch_wins_over_name_hint(self):
        # switch r0 would resolve to branch 0; the event says branch 2
        net, *_ = two_switch_net()
        from repro.openflow.switch import OpenFlowSwitch

        net.add_node(OpenFlowSwitch(net.sim, "r0", trace_bus=net.trace))
        engine = ChaosEngine(
            FaultSchedule(
                [AdversaryStrategy(0.001, "r0",
                                   strategy="probation_evader", branch=2)]
            ),
            net,
            compare_core=self.compare_core(net),
        )
        engine.arm()
        assert engine.strategy_behaviors["r0"].branch == 2
