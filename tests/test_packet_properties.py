"""Property-based tests for the packet layer (hypothesis).

These guard the invariants the compare element relies on: serialisation
is deterministic and injective enough (parse∘serialise = identity), and
copies are bit-identical until mutated.
"""

from hypothesis import given, settings, strategies as st

from repro.net import (
    IpAddress,
    MacAddress,
    Packet,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_SYN,
    Vlan,
    internet_checksum,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IpAddress)
ports = st.integers(min_value=0, max_value=65535)
payloads = st.binary(max_size=256)
idents = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def udp_packets(draw):
    vlan = draw(st.one_of(st.none(), st.integers(0, 4095).map(Vlan)))
    return Packet.udp(
        draw(macs), draw(macs), draw(ips), draw(ips),
        draw(ports), draw(ports), payload=draw(payloads),
        ident=draw(idents), vlan=vlan,
    )


@st.composite
def tcp_packets(draw):
    flags = draw(
        st.sets(st.sampled_from([TCP_SYN, TCP_ACK, TCP_FIN, TCP_PSH])).map(
            lambda s: sum(s)
        )
    )
    return Packet.tcp(
        draw(macs), draw(macs), draw(ips), draw(ips),
        draw(ports), draw(ports),
        seq=draw(st.integers(0, (1 << 32) - 1)),
        ack=draw(st.integers(0, (1 << 32) - 1)),
        flags=flags,
        window=draw(st.integers(0, 65535)),
        payload=draw(payloads),
        ident=draw(idents),
    )


@st.composite
def icmp_packets(draw):
    return Packet.icmp_echo(
        draw(macs), draw(macs), draw(ips), draw(ips),
        ident=draw(idents), seqno=draw(idents),
        reply=draw(st.booleans()), payload=draw(payloads),
        ip_ident=draw(idents),
    )


any_packet = st.one_of(udp_packets(), tcp_packets(), icmp_packets())


@given(any_packet)
@settings(max_examples=120)
def test_parse_roundtrip(packet):
    assert Packet.parse(packet.to_bytes()) == packet


@given(any_packet)
@settings(max_examples=120)
def test_wire_len_equals_serialised_length(packet):
    assert packet.wire_len == len(packet.to_bytes())


@given(any_packet)
@settings(max_examples=80)
def test_serialisation_is_deterministic(packet):
    assert packet.to_bytes() == packet.to_bytes()


@given(any_packet)
@settings(max_examples=80)
def test_copy_is_bit_identical(packet):
    assert packet.copy().to_bytes() == packet.to_bytes()


@given(any_packet)
@settings(max_examples=80)
def test_ip_header_checksum_valid_on_wire(packet):
    raw = packet.to_bytes()
    offset = 14 + (4 if packet.vlan is not None else 0)
    assert internet_checksum(raw[offset : offset + 20]) == 0


@given(udp_packets(), st.integers(0, 255), st.integers(0, 5000))
@settings(max_examples=80)
def test_payload_mutation_changes_bytes(packet, xor, pos):
    if not packet.payload:
        return
    mutated = packet.copy()
    idx = pos % len(mutated.payload)
    flipped = bytearray(mutated.payload)
    flipped[idx] ^= xor
    mutated.payload = bytes(flipped)
    if xor == 0:
        assert mutated == packet
    else:
        assert mutated != packet


@given(st.binary(max_size=64))
@settings(max_examples=60)
def test_checksum_self_verifies(data):
    checksum = internet_checksum(data)
    if len(data) % 2:
        data += b"\x00"
    assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0
