"""Cross-module integration tests: the NetCo end-to-end guarantees.

The central safety invariant (Section III): with at most ⌊k/2⌋ malicious
routers, every frame delivered out of the combiner is bit-identical to a
frame that entered it, and every frame that entered it is delivered
exactly once.  The attack matrix exercises that invariant against every
adversary model in the library.
"""

import pytest

from repro.adversary import (
    BenignBehavior,
    BlackholeBehavior,
    DropBehavior,
    HeaderRewriteBehavior,
    MirrorBehavior,
    PayloadCorruptionBehavior,
    PortSwapBehavior,
    ReplayFloodBehavior,
    dst_mac_rewrite,
    match_udp,
    vlan_rewrite,
)
from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
from repro.net import Network, Packet
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def build_rig(k=3, mark_sources=False, seed=11):
    net = Network(seed=seed)
    params = CombinerChainParams(
        k=k,
        mark_sources=mark_sources,
        compare=CompareConfig(k=k, buffer_timeout=2e-3),
    )
    chain = build_combiner_chain(net, "nc", params)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")
    return net, chain, h1, h2


def attack_factory(name, net, chain, h1, h2):
    """Build one attack behaviour for the matrix."""
    if name == "benign":
        return BenignBehavior()
    if name == "corrupt":
        return PayloadCorruptionBehavior()
    if name == "blackhole":
        return BlackholeBehavior()
    if name == "drop-udp":
        return DropBehavior(selector=match_udp())
    if name == "rewrite-dst":
        return HeaderRewriteBehavior(dst_mac_rewrite(h1.mac))
    if name == "rewrite-vlan":
        return HeaderRewriteBehavior(vlan_rewrite(666))
    if name == "replay":
        return ReplayFloodBehavior(amplification=5)
    if name == "mirror":
        router = chain.router(0)
        back_port = net.port_no_between(router.name, chain.endpoint_a.name)
        return MirrorBehavior(back_port)
    if name == "port-swap":
        router = chain.router(0)
        a_port = net.port_no_between(router.name, chain.endpoint_a.name)
        b_port = net.port_no_between(router.name, chain.endpoint_b.name)
        return PortSwapBehavior({a_port: b_port, b_port: a_port})
    raise ValueError(name)


ATTACKS = (
    "benign",
    "corrupt",
    "blackhole",
    "drop-udp",
    "rewrite-dst",
    "rewrite-vlan",
    "replay",
    "mirror",
    "port-swap",
)


class TestAttackMatrix:
    @pytest.mark.parametrize("attack", ATTACKS)
    @pytest.mark.parametrize("k", (3, 5))
    def test_single_traitor_is_masked(self, attack, k):
        net, chain, h1, h2 = build_rig(k=k)
        behavior = attack_factory(attack, net, chain, h1, h2)
        behavior.attach(chain.router(0))

        sent_frames = set()
        delivered = []
        original_send = h1.send

        def tracking_send(packet):
            sent_frames.add(packet.to_bytes())
            original_send(packet)

        h1.send = tracking_send
        h2.bind_raw(delivered.append)

        result = run_ping(PathEndpoints(net, h1, h2), count=8, interval=1e-3)
        # liveness: every cycle completes despite the traitor
        assert result.received == 8, f"{attack} broke liveness at k={k}"
        # safety: everything h2 got was exactly something h1 sent
        for frame in delivered:
            assert frame.to_bytes() in sent_frames, f"{attack} leaked a forged frame"
        # exactly-once: no duplicates delivered
        assert result.duplicates == 0

    @pytest.mark.parametrize("attack", ("rewrite-dst", "replay"))
    def test_noncooperating_majority_cannot_forge(self, attack):
        # two traitors misbehaving *differently* (the paper's
        # non-cooperation assumption) may censor traffic, but h2 still
        # never receives a frame h1 did not send
        net, chain, h1, h2 = build_rig(k=3)
        # traitor 0: the parametrised attack; traitor 1: a different one
        attack_factory(attack, net, chain, h1, h2).attach(chain.router(0))
        PayloadCorruptionBehavior(flip_offset=3).attach(chain.router(1))

        sent_frames = set()
        original_send = h1.send

        def tracking_send(packet):
            sent_frames.add(packet.to_bytes())
            original_send(packet)

        h1.send = tracking_send
        delivered = []
        h2.bind_raw(delivered.append)
        run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        for frame in delivered:
            assert frame.to_bytes() in sent_frames

    def test_coordinated_majority_collusion_defeats_netco(self):
        # the explicit boundary of the model: two traitors applying the
        # *identical* transformation outvote the honest router, and the
        # forged frame is delivered — which is why the paper's trust
        # argument rests on vendor/country diversity
        net, chain, h1, h2 = build_rig(k=3)
        PayloadCorruptionBehavior(flip_offset=0).attach(chain.router(0))
        PayloadCorruptionBehavior(flip_offset=0).attach(chain.router(1))
        delivered = []
        h2.bind_raw(delivered.append)
        run_ping(PathEndpoints(net, h1, h2), count=3, interval=1e-3)
        corrupted = [p for p in delivered if p.payload and p.payload[0] == 0xFF]
        assert corrupted, "identical collusion should win the vote"


class TestSourceMarking:
    def test_marked_chain_carries_benign_traffic(self):
        net, chain, h1, h2 = build_rig(mark_sources=True)
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5

    def test_branch_impersonation_detected(self):
        # a malicious router rewrites the source marker to impersonate
        # another branch; the endpoint's port/marker check drops it
        from repro.core.endpoint import branch_marker

        net, chain, h1, h2 = build_rig(mark_sources=True)

        def impersonate(packet):
            packet.eth.src = branch_marker(1)

        HeaderRewriteBehavior(impersonate).attach(chain.router(0))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5  # masked
        spoofs = (
            chain.endpoint_a.estats.spoof_drops + chain.endpoint_b.estats.spoof_drops
        )
        assert spoofs >= 5


class TestMixedWorkloads:
    def test_concurrent_udp_and_ping(self):
        net, chain, h1, h2 = build_rig()
        from repro.traffic import Pinger, UdpReceiver, UdpSender

        receiver = UdpReceiver(h2, 5001)
        sender = UdpSender(h1, h2.mac, h2.ip, 5001, rate_bps=20e6)
        pinger = Pinger(h1, h2.mac, h2.ip)
        sender.start(duration=0.02)
        pinger.run(count=10, interval=2e-3)
        net.run(until=0.08)
        assert pinger.result().received == 10
        assert receiver.result(sender, 0.02).loss_rate == 0.0

    def test_bidirectional_pings(self):
        net, chain, h1, h2 = build_rig()
        from repro.traffic import Pinger

        forward = Pinger(h1, h2.mac, h2.ip)
        backward = Pinger(h2, h1.mac, h1.ip)
        forward.run(count=5, interval=1e-3)
        backward.run(count=5, interval=1e-3)
        net.run(until=0.05)
        assert forward.result().received == 5
        assert backward.result().received == 5


class TestDeterminism:
    def run_once(self, seed):
        net, chain, h1, h2 = build_rig(seed=seed)
        PayloadCorruptionBehavior().attach(chain.router(1))
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=30e6, duration=0.02
        )
        stats = chain.compare_core.stats
        return (
            result.received_unique,
            result.jitter_s,
            stats.submissions,
            stats.released,
        )

    def test_same_seed_identical_run(self):
        assert self.run_once(5) == self.run_once(5)
