"""Train=1 vs train=32 equivalence: the batch tier's exactness contract.

The packet-train tier must be an *invisible* optimisation: for the same
seed, every observable of a run — flow results, combiner verdicts,
quarantine transitions, alarms, figure records, RunReport metrics — is
bit-identical whether packets move one per event or 32 per train.  These
tests drive that contract across 24 seeds on fig5-style combiner runs
**with live chaos schedules** (a router crash and a Gilbert–Elliott loss
burst mid-run), where the exactness boundaries (vote splits, fault
windows, per-packet loss draws) are all exercised at once.
"""

import pytest

from repro.analysis.tasks import chaos_run
from repro.chaos import FaultSchedule, LossBurst, RouterCrash

SEEDS = list(range(24))

#: crash branch 0's router mid-flow (it restarts), and turn branch 1's
#: egress link bursty-lossy across the middle of the run — both fault
#: windows overlap live traffic
CHAOS_SCHEDULE = FaultSchedule(
    [
        RouterCrash(0.010, "r0", restart_at=0.025),
        LossBurst(
            0.012,
            "link_b1",
            until=0.032,
            p_good_to_bad=0.2,
            p_bad_to_good=0.3,
            loss_bad=0.7,
        ),
    ],
    name="batch-equivalence",
).to_dict()


def _run(seed: int, variant: str, train: int) -> dict:
    return chaos_run(
        CHAOS_SCHEDULE,
        seed=seed,
        variant=variant,
        duration=0.04,
        rate_mbps=40.0,
        params={"batch_train": train} if train > 1 else None,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_identical_across_train(seed):
    variant = "central3" if seed % 2 == 0 else "central5"
    legacy = _run(seed, variant, train=1)
    batched = _run(seed, variant, train=32)
    # the full survivability record: flow accounting, injected fault
    # timeline, quarantine/readmit verdicts, alarms, compare stats
    assert batched == legacy


@pytest.mark.parametrize("seed", SEEDS)
def test_adversary_run_identical_across_train(seed):
    """The batch tier must not perturb detection-latency records either:
    alarm times, quarantine transitions, leak/masked-damage accounting
    are bit-identical with 32-packet trains, for every strategy."""
    from repro.analysis.tasks import ADVBENCH_ADVERSARIES, adversary_run

    adversary = ADVBENCH_ADVERSARIES[seed % len(ADVBENCH_ADVERSARIES)]
    variant = "central5" if adversary.startswith("colluding") else "central3"

    def run(train):
        return adversary_run(
            seed=seed,
            variant=variant,
            adversary=adversary,
            profile="vigilant",
            duration=0.02,
            activate_at=0.004,
            params={"batch_train": train} if train > 1 else None,
        )

    assert run(32) == run(1)


def _strip_internal(metrics: dict) -> dict:
    """Drop scheduler-internal accounting, keep every observable metric.

    ``sim_*`` (event counts differ by construction: trains collapse
    outer events into micro-events), ``trace_records_*`` (batch.merge /
    batch.split records exist only in batched runs) and ``batch*`` (the
    tier's own counters) are the *only* keys allowed to differ.
    """
    return {
        key: value
        for key, value in metrics.items()
        if not key.startswith(("sim_", "trace_records_", "batch"))
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_run_report_identical_across_train(seed):
    from repro.obs.summary import build_run_report

    report1, _ = build_run_report(
        quick=True, seed=seed, sample_rate=0.25, train=1
    )
    report32, _ = build_run_report(
        quick=True, seed=seed, sample_rate=0.25, train=32
    )
    assert report32.records == report1.records
    assert report32.spans == report1.spans
    assert _strip_internal(report32.metrics) == _strip_internal(report1.metrics)
    # and the batched run really used the batch tier
    batched = [
        v for k, v in report32.metrics.items() if k.startswith("batches_total")
    ]
    assert batched and sum(batched) > 0
