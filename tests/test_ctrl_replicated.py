"""End-to-end tests for the replicated control plane (repro.ctrl).

The headline acceptance criteria live here: with k=3 and one lying
replica, zero malicious flow-mods reach any switch, the liar is
quarantined, and the data-plane outcome is bit-identical to an
unreplicated run on the same seed.
"""

import pytest

from repro.analysis.tasks import ctrl_run
from repro.ctrl.compare import ControlCompare, ControlCompareConfig
from repro.ctrl.replicated import (
    BOGUS_PORT,
    CompromisePlan,
    ReplicatedControlPlane,
)
from repro.net import MacAddress
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.openflow.actions import Output
from repro.openflow.controller import Controller
from repro.openflow.match import Match
from repro.openflow.messages import FLOWMOD_ADD, FlowMod, PacketOut
from repro.scenarios import CtrlParams, build_ctrl_testbed
from repro.sim import Simulator

SEED = 1
RUN_KW = dict(variant="central3", duration=0.03, rate_mbps=10.0)


def run(ctrl_k, adversary="none", seed=SEED, **kw):
    return ctrl_run(seed=seed, ctrl_k=ctrl_k, adversary=adversary, **{**RUN_KW, **kw})


class TestBitIdentity:
    def test_k3_matches_unreplicated_run(self):
        solo = run(ctrl_k=1)
        voted = run(ctrl_k=3)
        assert solo["sent"] == voted["sent"]
        assert solo["data_fingerprint"] == voted["data_fingerprint"]
        assert voted["lost"] == 0
        # and the voter really was in the loop for k=3 but not k=1
        assert solo["ctrl"]["submissions"] == 0
        assert voted["ctrl"]["submissions"] > 0
        assert voted["ctrl"]["released"] > 0

    def test_same_seed_is_deterministic(self):
        a = run(ctrl_k=3, adversary="lying")
        b = run(ctrl_k=3, adversary="lying")
        assert a == b


class TestLyingReplica:
    def test_zero_malicious_flow_mods_installed(self):
        rec = run(ctrl_k=3, adversary="lying")
        assert rec["malicious_emitted"] > 0  # the liar did lie
        assert rec["malicious_installed"] == 0  # ...to no effect
        assert rec["ctrl"]["malicious_released"] == 0
        assert rec["lost"] == 0

    def test_liar_is_quarantined_with_latency_recorded(self):
        rec = run(ctrl_k=3, adversary="lying")
        assert rec["ctrl_quarantined"] == [1]
        assert rec["detection_latency"] is not None
        assert 0.0 <= rec["detection_latency"] < 0.02
        # still lying through probation: never readmitted
        assert rec["ctrl_readmitted"] == []
        assert rec["ctrl"]["probation_resets"] > 0

    def test_data_plane_unaffected_by_masked_liar(self):
        clean = run(ctrl_k=3)
        lying = run(ctrl_k=3, adversary="lying")
        assert lying["data_fingerprint"] == clean["data_fingerprint"]

    def test_unreplicated_liar_installs_its_lies(self):
        # The contrast row: k=1 has no voter, so the lies land.
        rec = run(ctrl_k=1, adversary="lying")
        assert rec["malicious_installed"] == rec["malicious_emitted"] > 0
        assert rec["lost"] > 0


class TestCrashedReplica:
    def test_crash_is_masked_detected_and_healed(self):
        # restart_at=0.030 + a probation window must fit inside the run
        rec = run(ctrl_k=3, adversary="crash", duration=0.045)
        assert rec["lost"] == 0
        assert rec["malicious_installed"] == 0
        assert rec["ctrl_quarantined"] == [1]
        assert rec["ctrl_readmitted"] == [1]  # restarted, probation served

    def test_crash_does_not_change_data_plane(self):
        clean = run(ctrl_k=3)
        crash = run(ctrl_k=3, adversary="crash")
        assert crash["data_fingerprint"] == clean["data_fingerprint"]


class TestPassThrough:
    def test_k1_bypasses_the_voter_entirely(self):
        tb = build_ctrl_testbed("central3", ctrl=CtrlParams(ctrl_k=1), seed=0)
        seen = []
        tb.control_plane.compare.submit = lambda *a, **kw: seen.append(a)
        tb.network.run(until=0.002)
        assert seen == []
        assert tb.quarantine is None  # no quarantine controller at k=1


class TestReplicaApi:
    def _plane(self, k=3):
        sim = Simulator()
        return ReplicatedControlPlane(
            sim, lambda index, name: Controller(sim, name=name), k=k
        )

    def test_replica_index_resolution(self):
        plane = self._plane()
        assert plane.replica_index(2) == 2
        assert plane.replica_index("c1") == 1
        assert plane.replica_index("ctrl_c0") == 0
        with pytest.raises(KeyError):
            plane.replica_index(3)
        with pytest.raises(KeyError):
            plane.replica_index("c9")

    def test_crash_restart_idempotent(self):
        plane = self._plane()
        plane.crash_replica("c1")
        plane.crash_replica("c1")
        assert plane.replicas[1].crashed
        plane.restart_replica(1)
        plane.restart_replica(1)
        assert not plane.replicas[1].crashed

    def test_compromise_validation(self):
        plane = self._plane()
        with pytest.raises(ValueError):
            plane.compromise_replica(0, strategy="nope")
        with pytest.raises(ValueError):
            plane.compromise_replica(0, lie_every=0)
        plane.compromise_replica(0, strategy="priority")
        assert plane.replicas[0].compromise.strategy == "priority"
        plane.restore_replica(0)
        plane.restore_replica(0)
        assert plane.replicas[0].compromise is None

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            self._plane(k=0)


def _mod(port=2):
    return FlowMod(
        command=FLOWMOD_ADD,
        match=Match(dl_dst=MacAddress.from_index(2)),
        actions=[Output(port)],
        priority=10,
    )


class TestCompromisePlan:
    def test_blackhole_taints_and_rewrites(self):
        plan = CompromisePlan(strategy="blackhole")
        mutated, tainted = plan.apply(_mod(), now=0.0)
        assert tainted
        assert mutated.actions[0].port == BOGUS_PORT

    def test_suppress_withholds(self):
        plan = CompromisePlan(strategy="suppress")
        mutated, tainted = plan.apply(_mod(), now=0.0)
        assert tainted and mutated is None

    def test_lie_every_paces_the_campaign(self):
        plan = CompromisePlan(strategy="priority", lie_every=3)
        verdicts = [plan.apply(_mod(), now=0.0)[1] for _ in range(6)]
        assert verdicts == [False, False, True, False, False, True]
        assert plan.lies_told == 2

    def test_until_bounds_the_campaign(self):
        plan = CompromisePlan(strategy="blackhole", until=1.0)
        assert plan.apply(_mod(), now=0.5)[1]
        assert not plan.apply(_mod(), now=1.0)[1]

    def test_packet_outs_pass_clean(self):
        plan = CompromisePlan(strategy="blackhole")
        out = PacketOut(packet=None, actions=[Output(1)], in_port=2, buffer_id=1)
        mutated, tainted = plan.apply(out, now=0.0)
        assert mutated is out and not tainted


class TestCtrlMetrics:
    """Satellites: queue-drop/unknown-message counters plus the voter's
    vote/blocked/latency instruments, all bound at construction."""

    def test_controller_queue_drops_counter(self):
        with use_registry(MetricsRegistry(enabled=True)) as registry:
            sim = Simulator()
            ctrl = Controller(sim, name="busy", proc_time=1.0, queue_capacity=1)
            ctrl.receive_from_switch(None, object())
            ctrl.receive_from_switch(None, object())  # queue full -> drop
        assert ctrl.messages_dropped == 1
        samples = registry.samples()
        assert samples['controller_queue_drops_total{controller="busy"}'] == 1

    def test_controller_unknown_message_counter(self):
        with use_registry(MetricsRegistry(enabled=True)) as registry:
            sim = Simulator()
            ctrl = Controller(sim, name="plain")
            ctrl.receive_from_switch(None, object())
        samples = registry.samples()
        assert samples['controller_unknown_messages_total{controller="plain"}'] == 1

    def test_vote_blocked_and_latency_metrics(self):
        with use_registry(MetricsRegistry(enabled=True)) as registry:
            sim = Simulator()
            compare = ControlCompare(
                sim, ControlCompareConfig(k=3, vote_timeout=0.01), name="cc"
            )
            compare.register_switch(1, lambda message: None)
            compare.submit(0, 1, _mod())
            compare.submit(1, 1, _mod())  # quorum -> released
            compare.submit(2, 1, _mod(port=BOGUS_PORT))  # minority lie
            sim.run(until=0.05)
        samples = registry.samples()
        assert samples['ctrl_votes_total{compare="cc"}'] == 3
        assert (
            samples['ctrl_flowmods_blocked_total{compare="cc",reason="no_quorum"}']
            == 1
        )
        latency = samples['ctrl_vote_latency_seconds{compare="cc"}']
        assert latency["count"] == 1

    def test_metrics_disabled_by_default(self):
        sim = Simulator()
        ctrl = Controller(sim, name="dark")
        assert ctrl._c_queue_drops is None and ctrl._c_unknown is None
