"""Tests for the OpenFlow switch datapath and control channel."""

import pytest

from repro.net import MacAddress, Network, Packet
from repro.openflow import (
    Controller,
    FLOWMOD_ADD,
    FLOWMOD_DELETE,
    FLOWMOD_DELETE_STRICT,
    FlowMod,
    FlowStatsRequest,
    Match,
    OpenFlowSwitch,
    Output,
    PacketOut,
    PortStatsRequest,
    SetVlanVid,
    flood,
    to_controller,
)
from repro.sim import CpuResource


def three_hosts_one_switch(proc_time=0.0, **switch_kwargs):
    net = Network(seed=1)
    s1 = OpenFlowSwitch(
        net.sim, "s1", trace_bus=net.trace, proc_time=proc_time, **switch_kwargs
    )
    net.add_node(s1)
    hosts = [net.add_host(f"h{i}") for i in (1, 2, 3)]
    for host in hosts:
        net.connect(host, s1)
    return net, s1, hosts


def udp_between(a, b, dport=5001):
    return Packet.udp(a.mac, b.mac, a.ip, b.ip, 1, dport, payload=b"x")


class TestForwarding:
    def test_install_and_forward(self):
        net, s1, (h1, h2, h3) = three_hosts_one_switch()
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(udp_between(h1, h2))
        net.run()
        assert len(got) == 1
        assert s1.stats.forwarded == 1

    def test_no_match_without_controller_drops(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(udp_between(h1, h2))
        net.run()
        assert got == []
        assert s1.stats.dropped_no_match == 1

    def test_empty_action_list_drops(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(Match(dl_dst=h2.mac), [])
        h1.send(udp_between(h1, h2))
        net.run()
        assert s1.stats.dropped_no_actions == 1

    def test_flood_excludes_ingress(self):
        net, s1, (h1, h2, h3) = three_hosts_one_switch()
        s1.install(Match.wildcard(), [flood()])
        h2_got, h3_got, h1_got = [], [], []
        h1.bind_raw(h1_got.append)
        h2.bind_raw(h2_got.append)
        h3.bind_raw(h3_got.append)
        h2.promiscuous = h3.promiscuous = h1.promiscuous = True
        h1.send(udp_between(h1, h2))
        net.run()
        assert len(h2_got) == 1 and len(h3_got) == 1 and len(h1_got) == 0

    def test_modify_then_output(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(
            Match(dl_dst=h2.mac),
            [SetVlanVid(42), Output(net.port_no_between("s1", "h2"))],
        )
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(udp_between(h1, h2))
        net.run()
        assert got[0].vlan.vid == 42

    def test_output_before_modify_sends_unmodified(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(
            Match(dl_dst=h2.mac),
            [Output(net.port_no_between("s1", "h2")), SetVlanVid(42)],
        )
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(udp_between(h1, h2))
        net.run()
        assert got[0].vlan is None

    def test_actions_do_not_mutate_original(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(
            Match(dl_dst=h2.mac),
            [SetVlanVid(42), Output(net.port_no_between("s1", "h2"))],
        )
        original = udp_between(h1, h2)
        h2.bind_udp(5001, lambda p: None)
        h1.send(original)
        net.run()
        assert original.vlan is None

    def test_bad_port_output_drops(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(Match(dl_dst=h2.mac), [Output(99)])
        h1.send(udp_between(h1, h2))
        net.run()  # no crash; trace records the drop
        assert net.trace.count("switch.drop") == 1


class TestServiceModel:
    def test_proc_time_delays_forwarding(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch(proc_time=1e-3)
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        h1.send(udp_between(h1, h2))
        net.run()
        assert times[0] == pytest.approx(1e-3)

    def test_service_is_single_server(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch(proc_time=1e-3)
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        for _ in range(3):
            h1.send(udp_between(h1, h2))
        net.run()
        assert times == pytest.approx([1e-3, 2e-3, 3e-3])

    def test_per_byte_cost(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch(
            proc_time=0.0, proc_per_byte=1e-6
        )
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        pkt = udp_between(h1, h2)
        h1.send(pkt)
        net.run()
        assert times[0] == pytest.approx(pkt.wire_len * 1e-6)

    def test_service_queue_overflow_drops(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch(
            proc_time=1e-3, service_queue_capacity=2
        )
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        got = []
        h2.bind_udp(5001, got.append)
        for _ in range(5):
            h1.send(udp_between(h1, h2))
        net.run()
        assert len(got) == 2
        assert s1.stats.dropped_service_queue == 3

    def test_shared_cpu_serialises_two_switches(self):
        net = Network(seed=1)
        cpu = CpuResource("shared")
        s1 = OpenFlowSwitch(net.sim, "s1", proc_time=1e-3, cpu=cpu)
        s2 = OpenFlowSwitch(net.sim, "s2", proc_time=1e-3, cpu=cpu)
        net.add_node(s1)
        net.add_node(s2)
        h1, h2, h3, h4 = (net.add_host(f"h{i}") for i in range(1, 5))
        net.connect(h1, s1)
        net.connect(s1, h2)
        net.connect(h3, s2)
        net.connect(s2, h4)
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        s2.install(Match(dl_dst=h4.mac), [Output(net.port_no_between("s2", "h4"))])
        times = []
        h2.bind_udp(5001, lambda p: times.append(("s1", net.sim.now)))
        h4.bind_udp(5001, lambda p: times.append(("s2", net.sim.now)))
        h1.send(udp_between(h1, h2))
        h3.send(udp_between(h3, h4))
        net.run()
        # the second packet waits for the shared CPU
        assert sorted(t for _, t in times) == pytest.approx([1e-3, 2e-3])


class RecordingController(Controller):
    def __init__(self, sim, **kwargs):
        super().__init__(sim, **kwargs)
        self.packet_ins = []
        self.flow_removed = []
        self.port_stats = []
        self.flow_stats = []

    def on_packet_in(self, switch, event):
        self.packet_ins.append(event)

    def on_flow_removed(self, switch, event):
        self.flow_removed.append(event)

    def on_port_stats(self, switch, reply):
        self.port_stats.append(reply)

    def on_flow_stats(self, switch, reply):
        self.flow_stats.append(reply)


class TestControlChannel:
    def test_table_miss_sends_packet_in(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        h1.send(udp_between(h1, h2))
        net.run()
        assert len(ctl.packet_ins) == 1
        event = ctl.packet_ins[0]
        assert event.in_port == net.port_no_between("s1", "h1")
        assert event.buffer_id is not None

    def test_channel_latency_applies_both_ways(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl, latency=1e-3)
        got = []
        h2.bind_udp(5001, got.append)

        out_port = net.port_no_between("s1", "h2")
        original_handler = ctl.on_packet_in

        def reactive(switch, event):
            original_handler(switch, event)
            ctl.send_packet_out(
                switch, PacketOut(packet=event.packet, actions=[Output(out_port)])
            )

        ctl.on_packet_in = reactive
        h1.send(udp_between(h1, h2))
        net.run()
        assert len(got) == 1
        assert net.sim.now >= 2e-3

    def test_packet_out_with_buffer_id(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        h1.send(udp_between(h1, h2))
        net.run()
        event = ctl.packet_ins[0]
        got = []
        h2.bind_udp(5001, got.append)
        ctl.send_packet_out(
            s1,
            PacketOut(
                packet=None,
                actions=[Output(net.port_no_between("s1", "h2"))],
                buffer_id=event.buffer_id,
            ),
        )
        net.run()
        assert len(got) == 1

    def test_flow_mod_add_and_delete(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        match = Match(dl_dst=h2.mac)
        ctl.send_flow_mod(
            s1, FlowMod(FLOWMOD_ADD, match, [Output(2)], priority=5)
        )
        net.run()
        assert len(s1.table) == 1
        ctl.send_flow_mod(s1, FlowMod(FLOWMOD_DELETE, match))
        net.run()
        assert len(s1.table) == 0
        assert len(ctl.flow_removed) == 1

    def test_flow_mod_delete_strict(self):
        net, s1, _hosts = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        match = Match.wildcard()
        ctl.send_flow_mod(s1, FlowMod(FLOWMOD_ADD, match, [Output(1)], priority=1))
        ctl.send_flow_mod(s1, FlowMod(FLOWMOD_ADD, match, [Output(1)], priority=2))
        ctl.send_flow_mod(s1, FlowMod(FLOWMOD_DELETE_STRICT, match, priority=2))
        net.run()
        assert len(s1.table) == 1
        assert s1.table.entries[0].priority == 1

    def test_idle_timeout_triggers_flow_removed(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        s1.install(
            Match(dl_dst=h2.mac),
            [Output(net.port_no_between("s1", "h2"))],
            idle_timeout=0.01,
        )
        # traffic long after the timeout forces a sweep
        net.sim.schedule(0.1, lambda: h1.send(udp_between(h1, h2)))
        net.run()
        assert len(ctl.flow_removed) == 1
        assert ctl.flow_removed[0].reason == "idle"

    def test_output_to_controller_action(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        s1.install(Match(dl_dst=h2.mac), [to_controller()])
        h1.send(udp_between(h1, h2))
        net.run()
        assert len(ctl.packet_ins) == 1
        assert ctl.packet_ins[0].reason == "action"

    def test_port_stats_request(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        h1.send(udp_between(h1, h2))
        net.run()
        ctl.send(s1, PortStatsRequest(s1.datapath_id))
        net.run()
        reply = ctl.port_stats[0]
        rx = {s.port_no: s.rx_packets for s in reply.stats}
        assert rx[net.port_no_between("s1", "h1")] == 1

    def test_flow_stats_request(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim)
        s1.connect_controller(ctl)
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        h1.send(udp_between(h1, h2))
        net.run()
        ctl.send(s1, FlowStatsRequest(s1.datapath_id))
        net.run()
        assert ctl.flow_stats[0].stats[0].packet_count == 1

    def test_controller_proc_time_queues_messages(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        ctl = RecordingController(net.sim, proc_time=1e-3)
        s1.connect_controller(ctl)
        arrival_times = []
        inner = ctl.on_packet_in

        def timed(switch, event):
            arrival_times.append(net.sim.now)
            inner(switch, event)

        ctl.on_packet_in = timed
        for i in range(3):
            h1.send(
                Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001,
                           ident=h1.next_ip_ident())
            )
        net.run()
        assert arrival_times == pytest.approx([1e-3, 2e-3, 3e-3])


class TestPortBlocking:
    def test_block_port_drops_ingress(self):
        net, s1, (h1, h2, _) = three_hosts_one_switch()
        s1.install(Match(dl_dst=h2.mac), [Output(net.port_no_between("s1", "h2"))])
        got = []
        h2.bind_udp(5001, got.append)
        s1.block_port(net.port_no_between("s1", "h1"), duration=1.0)
        h1.send(udp_between(h1, h2))
        net.run(until=0.5)
        assert got == []

    def test_datapath_ids_unique(self):
        net, s1, _ = three_hosts_one_switch()
        s2 = OpenFlowSwitch(net.sim, "sx")
        assert s1.datapath_id != s2.datapath_id
