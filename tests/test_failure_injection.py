"""Failure injection: NetCo under benign faults (not just malice).

Random link loss, a dead branch, a mid-run compromise and a lossy
compare attachment — the combiner's quorum must absorb what it can and
alarm on what it cannot.
"""

import pytest

from repro.adversary import BlackholeBehavior
from repro.chaos import (
    ChaosEngine,
    FaultSchedule,
    QuarantineController,
    RouterCrash,
)
from repro.core import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
    ALARM_ROUTER_UNAVAILABLE,
    CombinerChainParams,
    CompareConfig,
    build_combiner_chain,
)
from repro.net import Network
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow
from repro.traffic.udp import UdpSender, _decode_payload


def build_rig(
    k=3,
    branch_loss=0.0,
    compare_link_loss=0.0,
    miss_threshold=8,
    seed=31,
):
    net = Network(seed=seed)
    params = CombinerChainParams(
        k=k,
        compare=CompareConfig(k=k, buffer_timeout=2e-3, miss_threshold=miss_threshold),
    )
    chain = build_combiner_chain(net, "nc", params)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")

    if branch_loss > 0.0:
        # lossy branch links (cheap hardware, bad cables): rebuild the
        # loss on the per-direction RNG by patching the link attributes
        for router in chain.routers:
            for link in net.links:
                names = {link.a.node.name, link.b.node.name}
                if router.name in names and (
                    chain.endpoint_a.name in names or chain.endpoint_b.name in names
                ):
                    link._a_to_b._loss = branch_loss
                    link._b_to_a._loss = branch_loss
    if compare_link_loss > 0.0 and chain.compare_host is not None:
        for link in net.links:
            names = {link.a.node.name, link.b.node.name}
            if chain.compare_host.name in names:
                link._a_to_b._loss = compare_link_loss
                link._b_to_a._loss = compare_link_loss
    return net, chain, h1, h2


class TestRandomLoss:
    def test_low_branch_loss_fully_absorbed(self):
        # 2% per-branch loss: P(>=2 of 3 copies lost) ~ 0.1%, so pings
        # sail through
        net, chain, h1, h2 = build_rig(branch_loss=0.02)
        result = run_ping(PathEndpoints(net, h1, h2), count=50, interval=5e-4)
        assert result.received >= 49

    def test_udp_loss_far_below_raw_loss(self):
        net, chain, h1, h2 = build_rig(branch_loss=0.05)
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05
        )
        # each copy crosses two lossy links (5% each -> ~9.75% per
        # copy); quorum needs 2 of 3: P(2+ copies lost) ~ 2.7%, far
        # below the ~19% a single unprotected lossy path would see
        assert result.loss_rate < 0.06

    def test_heavy_branch_loss_degrades_visibly(self):
        net, chain, h1, h2 = build_rig(branch_loss=0.4, seed=33)
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=10e6, duration=0.05
        )
        assert 0.1 < result.loss_rate < 0.9

    def test_lossy_compare_attachment(self):
        # copies lost on the way to the compare still leave a quorum,
        # but a lost *release* loses the packet: expect ~5-6% loss per
        # direction, ~11% per ping cycle
        net, chain, h1, h2 = build_rig(compare_link_loss=0.05)
        result = run_ping(PathEndpoints(net, h1, h2), count=30, interval=5e-4)
        assert 22 <= result.received < 30


class TestDeadBranch:
    def test_dead_router_from_start(self):
        net, chain, h1, h2 = build_rig()
        BlackholeBehavior().attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=20, interval=5e-4)
        assert result.received == 20
        alarms = chain.compare_core.alarms.of_kind(ALARM_ROUTER_UNAVAILABLE)
        assert alarms and alarms[0].branch == 1

    def test_mid_run_compromise_detected(self):
        net, chain, h1, h2 = build_rig(miss_threshold=5)
        # the router is benign for the first half, then dies
        net.sim.schedule(
            0.01, lambda: BlackholeBehavior().attach(chain.router(0))
        )
        result = run_ping(PathEndpoints(net, h1, h2), count=40, interval=5e-4)
        assert result.received == 40  # service uninterrupted
        alarms = chain.compare_core.alarms.of_kind(ALARM_ROUTER_UNAVAILABLE)
        assert alarms
        assert alarms[0].time > 0.01  # raised only after the failure

    def test_recovery_clears_future_alarms(self):
        net, chain, h1, h2 = build_rig(miss_threshold=5)
        behavior = BlackholeBehavior()
        behavior.attach(chain.router(0))
        # the router comes back after 15 ms
        net.sim.schedule(0.015, lambda: setattr(chain.router(0), "behavior", None))
        result = run_ping(PathEndpoints(net, h1, h2), count=60, interval=5e-4)
        assert result.received == 60
        alarms = chain.compare_core.alarms.of_kind(ALARM_ROUTER_UNAVAILABLE)
        assert len(alarms) == 1  # one outage, one alarm

    def test_two_dead_routers_with_k5(self):
        net, chain, h1, h2 = build_rig(k=5)
        BlackholeBehavior().attach(chain.router(0))
        BlackholeBehavior().attach(chain.router(3))
        result = run_ping(PathEndpoints(net, h1, h2), count=20, interval=5e-4)
        assert result.received == 20

    def test_two_dead_routers_kill_k3(self):
        net, chain, h1, h2 = build_rig(k=3)
        BlackholeBehavior().attach(chain.router(0))
        BlackholeBehavior().attach(chain.router(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=10, interval=5e-4)
        assert result.received == 0


class TestSelfHealingLifecycle:
    """Crash → quarantine → restart → re-admission, end to end."""

    WARMUP = 1e-3
    DURATION = 0.05
    CRASH_AT = 0.010
    RESTART_AT = 0.025

    def run_crash_flow(self, restart=True, rate_bps=20e6):
        net, chain, h1, h2 = build_rig(k=3)
        core = chain.compare_core
        core.config.probation_clean_target = 10
        controller = QuarantineController(core, net.trace)
        schedule = FaultSchedule(
            [
                RouterCrash(
                    self.CRASH_AT,
                    "nc_r1",
                    restart_at=self.RESTART_AT if restart else None,
                )
            ],
            name="lifecycle",
        )
        ChaosEngine(schedule, net).arm()

        received = []  # (seq, ttl, arrival time)
        h2.bind_udp(5001, lambda p: received.append(
            (_decode_payload(p.payload)[0], p.ip.ttl, net.sim.now)))
        sender = UdpSender(
            h1, dst_mac=h2.mac, dst_ip=h2.ip, dport=5001, rate_bps=rate_bps
        )
        sender.start(self.DURATION, delay=self.WARMUP)
        net.run(until=self.WARMUP + self.DURATION + 0.02)
        return net, chain, controller, sender, received

    def test_full_lifecycle_transitions(self):
        net, chain, controller, sender, received = self.run_crash_flow()
        events = [(t["event"], t["branch"]) for t in controller.transitions]
        assert events == [("quarantine", 1), ("readmit", 1)]
        q_time = controller.transitions[0]["time"]
        r_time = controller.transitions[1]["time"]
        assert self.CRASH_AT < q_time < self.RESTART_AT
        assert r_time > self.RESTART_AT
        core = chain.compare_core
        assert not core.is_quarantined(1)
        assert core.active_branches() == [0, 1, 2]
        assert core.stats.quarantines == 1 and core.stats.readmissions == 1

    def test_alarm_ordering_unavailable_precedes_quarantine(self):
        net, chain, controller, sender, received = self.run_crash_flow()
        kinds = [a.kind for a in chain.compare_core.alarms.alarms]
        assert ALARM_ROUTER_UNAVAILABLE in kinds
        assert ALARM_BRANCH_QUARANTINED in kinds
        assert kinds.index(ALARM_ROUTER_UNAVAILABLE) < kinds.index(
            ALARM_BRANCH_QUARANTINED
        )
        assert kinds.index(ALARM_BRANCH_QUARANTINED) < kinds.index(
            ALARM_BRANCH_READMITTED
        )
        # same story on the trace bus, for RunReport consumers
        alarm_kinds = [r.data["kind"] for r in net.trace.select("alarm")]
        assert alarm_kinds.index(ALARM_ROUTER_UNAVAILABLE) < alarm_kinds.index(
            ALARM_BRANCH_QUARANTINED
        )

    def test_seq_and_ttl_continuity_across_restart(self):
        net, chain, controller, sender, received = self.run_crash_flow()
        # k=3 tolerates one dead branch: no datagram is ever lost
        seqs = [seq for seq, _ttl, _t in received]
        assert seqs == list(range(sender.sent))
        # the released copies keep the same hop count before, during and
        # after the crash (no path change, no TTL glitch on re-admission)
        assert len({ttl for _seq, ttl, _t in received}) == 1

    def test_zero_post_quarantine_gaps(self):
        net, chain, controller, sender, received = self.run_crash_flow()
        q_time = controller.transitions[0]["time"]
        seen = {seq for seq, _ttl, _t in received}
        post = [
            s for s in range(sender.sent)
            if self.WARMUP + s * sender.interval >= q_time
        ]
        assert post, "run too short: nothing sent after quarantine"
        assert all(s in seen for s in post)

    def test_crash_without_restart_stays_quarantined(self):
        net, chain, controller, sender, received = self.run_crash_flow(
            restart=False
        )
        core = chain.compare_core
        assert core.is_quarantined(1)
        assert core.active_branches() == [0, 2]
        assert [t["event"] for t in controller.transitions] == ["quarantine"]
        assert core.stats.readmissions == 0
        # forwarding continued on the surviving pair
        assert len(received) == sender.sent
