"""Cross-layer trace correlation: one packet's story across data plane,
voter, control plane and fault windows — plus the ``obs trace`` CLI,
``obs diff --quiet`` and per-shard profiling."""

import pytest

from repro.obs.cli import obs_main
from repro.obs.report import RunReport
from repro.obs.spans import cross_layer_story
from repro.obs.summary import (
    run_instrumented_ctrl_scenario,
    run_instrumented_scenario,
)
from repro.sim.trace import TraceRecord


@pytest.fixture(scope="module")
def data_run():
    return run_instrumented_scenario("central3", duration=0.002, seed=1)


@pytest.fixture(scope="module")
def ctrl_run():
    return run_instrumented_ctrl_scenario(
        variant="central3", ctrl_k=3, adversary="none", duration=0.005, seed=1
    )


@pytest.fixture(scope="module")
def lying_run():
    return run_instrumented_ctrl_scenario(
        variant="central3", ctrl_k=3, adversary="lying", duration=0.005, seed=1
    )


# ----------------------------------------------------------------------
# story assembly
# ----------------------------------------------------------------------
class TestDataPlaneStory:
    def test_marked_packets_have_trajectories(self, data_run):
        tracer = data_run.tracer
        assert tracer.marked > 0
        ids = tracer.trace_ids()
        assert ids, "full-sampling run should index trajectories"

    def test_story_interleaves_data_and_voter(self, data_run):
        tracer = data_run.tracer
        tid = tracer.trace_ids()[1]
        story = cross_layer_story(tracer.trajectory(tid))
        layers = {entry["layer"] for entry in story}
        assert "data" in layers
        assert "voter" in layers  # central3 votes every forwarded packet
        times = [entry["time"] for entry in story]
        assert times == sorted(times)

    def test_story_reduces_packets_to_summaries(self, data_run):
        tracer = data_run.tracer
        tid = tracer.trace_ids()[0]
        story = cross_layer_story(tracer.trajectory(tid))
        for entry in story:
            packet = entry["data"].get("packet")
            if packet is not None:
                assert isinstance(packet, str)


class TestCtrlStory:
    def test_ctrl_vote_spans_carry_trace(self, ctrl_run):
        tracer = ctrl_run.tracer
        votes = [
            r
            for spans in tracer.trajectories().values()
            for r in spans
            if r.topic == "ctrl.vote"
        ]
        assert votes, "primer flows should trigger votable FlowMods"
        assert all("trace" in r.data for r in votes)

    def test_story_spans_three_layers(self, ctrl_run):
        tracer = ctrl_run.tracer
        best = max(
            tracer.trace_ids(),
            key=lambda tid: len(
                {r.topic.split(".")[0] for r in tracer.trajectory(tid)}
            ),
        )
        story = cross_layer_story(tracer.trajectory(best))
        layers = {entry["layer"] for entry in story}
        assert {"data", "voter", "control"} <= layers


class TestFaultWindowCorrelation:
    def test_chaos_records_woven_in_by_time(self, lying_run):
        chaos_records = lying_run.testbed.network.trace.select(topic="chaos.*")
        assert chaos_records, "lying adversary schedule should fire"
        tracer = lying_run.tracer
        tid = tracer.trace_ids()[-1]
        # the compromise fires at t=0.01, after these short flows end: a
        # zero-slack story excludes it, a slack covering the gap weaves
        # it in — both directions of the time-window correlation
        tight = cross_layer_story(
            tracer.trajectory(tid), chaos_records=chaos_records
        )
        assert all(entry["layer"] != "fault" for entry in tight)
        slack = cross_layer_story(
            tracer.trajectory(tid), chaos_records=chaos_records,
            window_slack=0.02,
        )
        faults = [e for e in slack if e["layer"] == "fault"]
        assert faults
        assert faults[0]["topic"].startswith("chaos.")

    def test_window_overlap_logic(self):
        spans = [
            TraceRecord(time=1.0, topic="span.hop", source="s1", data={}),
            TraceRecord(time=2.0, topic="span.hop", source="s2", data={}),
        ]
        inside = TraceRecord(
            time=0.5, topic="chaos.lying", source="chaos",
            data={"target": "s1", "until": 1.5},
        )
        before = TraceRecord(
            time=0.1, topic="chaos.crash", source="chaos",
            data={"target": "s2", "restart_at": 0.2},
        )
        story = cross_layer_story(spans, chaos_records=[inside, before])
        faults = [e for e in story if e["layer"] == "fault"]
        assert [f["topic"] for f in faults] == ["chaos.lying"]

    def test_instant_fault_needs_overlap(self):
        spans = [TraceRecord(time=1.0, topic="span.hop", source="s1", data={})]
        instant = TraceRecord(
            time=5.0, topic="chaos.drop", source="chaos", data={"target": "s1"}
        )
        assert all(
            e["layer"] != "fault"
            for e in cross_layer_story(spans, chaos_records=[instant])
        )
        slack = cross_layer_story(
            spans, chaos_records=[instant], window_slack=10.0
        )
        assert any(e["layer"] == "fault" for e in slack)


# ----------------------------------------------------------------------
# obs trace CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    def test_list_ids(self, capsys):
        assert obs_main(["trace", "--list", "--duration", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "trace ids:" in out

    def test_story_printed(self, capsys):
        assert obs_main(["trace", "2", "--duration", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "trace 2:" in out
        assert "[   data]" in out

    def test_missing_id_exits_1(self, capsys):
        assert obs_main(["trace", "999999", "--duration", "0.001"]) == 1
        assert "no trajectory" in capsys.readouterr().err


# ----------------------------------------------------------------------
# obs diff --quiet (exit code + one-line summary survive)
# ----------------------------------------------------------------------
class TestDiffQuiet:
    def _reports(self, tmp_path, drops):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        RunReport(
            name="a", metrics={'link_queue_drops_total{link="x"}': 0.0}
        ).save(base)
        RunReport(
            name="b", metrics={'link_queue_drops_total{link="x"}': drops}
        ).save(new)
        return str(base), str(new)

    def test_quiet_keeps_verdict_and_exit_code(self, tmp_path, capsys):
        base, new = self._reports(tmp_path, 500.0)
        assert obs_main(["diff", base, new, "--quiet"]) == 1
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert len(lines) == 1  # per-finding lines suppressed
        assert "BREACHED" in lines[0]

    def test_quiet_clean_diff_exits_0(self, tmp_path, capsys):
        base, new = self._reports(tmp_path, 0.0)
        assert obs_main(["diff", base, new, "-q"]) == 0
        assert "within thresholds" in capsys.readouterr().out


# ----------------------------------------------------------------------
# per-shard profiling
# ----------------------------------------------------------------------
class TestProfiling:
    def test_run_profiled_dumps_and_aggregates(self, tmp_path):
        from repro.farm.profiling import (
            aggregate_profiles,
            collect_profiles,
            profile_path,
            run_profiled,
        )
        from repro.farm.spec import RunSpec

        spec = RunSpec("prof.echo", {"value": 1}, seed=1)
        result = run_profiled(
            lambda: sum(range(1000)), spec, attempt=1, profile_dir=str(tmp_path)
        )
        assert result == sum(range(1000))
        dumps = collect_profiles(str(tmp_path))
        assert dumps == [profile_path(str(tmp_path), spec, attempt=1)]
        aggregated = aggregate_profiles(str(tmp_path), top=5)
        assert aggregated is not None
        count, table = aggregated
        assert count == 1
        assert "cumulative" in table

    def test_dump_written_even_on_task_failure(self, tmp_path):
        from repro.farm.profiling import collect_profiles, run_profiled
        from repro.farm.spec import RunSpec

        spec = RunSpec("prof.boom", {}, seed=1)

        def boom():
            raise ValueError("task bug")

        with pytest.raises(ValueError):
            run_profiled(boom, spec, attempt=1, profile_dir=str(tmp_path))
        assert collect_profiles(str(tmp_path))
