"""Tests for hosts: demux, echo responder, CPU model, taps, blocking."""

import pytest

from repro.net import Network, Packet
from repro.net.node import NetworkError


def two_hosts(stack_delay=0.0, **host_kwargs):
    net = Network(seed=1)
    h1 = net.add_host("h1", stack_delay=stack_delay, **host_kwargs)
    h2 = net.add_host("h2", stack_delay=stack_delay, **host_kwargs)
    net.connect(h1, h2)
    return net, h1, h2


class TestDemux:
    def test_udp_handler_by_port(self):
        net, h1, h2 = two_hosts()
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001, payload=b"x"))
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 9999, payload=b"y"))
        net.run()
        assert len(got) == 1 and got[0].payload == b"x"

    def test_tcp_handler_by_port(self):
        net, h1, h2 = two_hosts()
        got = []
        h2.bind_tcp(80, got.append)
        h1.send(Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 1234, 80))
        net.run()
        assert len(got) == 1

    def test_double_bind_rejected(self):
        net, _h1, h2 = two_hosts()
        h2.bind_udp(5001, lambda p: None)
        with pytest.raises(NetworkError):
            h2.bind_udp(5001, lambda p: None)
        h2.bind_tcp(80, lambda p: None)
        with pytest.raises(NetworkError):
            h2.bind_tcp(80, lambda p: None)

    def test_unbind_allows_rebinding(self):
        net, _h1, h2 = two_hosts()
        h2.bind_udp(5001, lambda p: None)
        h2.unbind_udp(5001)
        h2.bind_udp(5001, lambda p: None)  # no error

    def test_raw_handler_sees_everything(self):
        net, h1, h2 = two_hosts()
        got = []
        h2.bind_raw(got.append)
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        h1.send(Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 80))
        net.run()
        assert len(got) == 2

    def test_foreign_frames_rejected_and_counted(self):
        net, h1, h2 = two_hosts()
        wrong_mac = net.add_host("h3").mac
        h1.send(Packet.udp(h1.mac, wrong_mac, h1.ip, h2.ip, 1, 5001))
        net.run()
        assert h2.rx_foreign == 1

    def test_promiscuous_accepts_foreign(self):
        net = Network(seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2", promiscuous=True)
        net.connect(h1, h2)
        got = []
        h2.bind_raw(got.append)
        other = net.add_host("h3").mac
        h1.send(Packet.udp(h1.mac, other, h1.ip, h2.ip, 1, 5001))
        net.run()
        assert len(got) == 1

    def test_broadcast_accepted(self):
        from repro.net import MacAddress

        net, h1, h2 = two_hosts()
        got = []
        h2.bind_raw(got.append)
        h1.send(Packet.udp(h1.mac, MacAddress.BROADCAST, h1.ip, h2.ip, 1, 1))
        net.run()
        assert len(got) == 1


class TestEchoResponder:
    def test_ping_reply(self):
        net, h1, h2 = two_hosts()
        replies = []
        h1.bind_icmp(replies.append)
        h1.send(Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, ident=1, seqno=1))
        net.run()
        assert len(replies) == 1
        assert replies[0].l4.is_echo_reply
        assert replies[0].payload == b""

    def test_reply_echoes_payload(self):
        net, h1, h2 = two_hosts()
        replies = []
        h1.bind_icmp(replies.append)
        h1.send(
            Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1, payload=b"abc")
        )
        net.run()
        assert replies[0].payload == b"abc"

    def test_no_reply_to_wrong_ip(self):
        net, h1, h2 = two_hosts()
        replies = []
        h1.bind_icmp(replies.append)
        h1.send(Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h1.ip, 1, 1))  # dst ip wrong
        net.run()
        assert replies == []

    def test_no_reply_to_replies(self):
        net, h1, h2 = two_hosts()
        seen = []
        h1.bind_icmp(seen.append)
        h1.send(
            Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1, reply=True)
        )
        net.run()
        assert seen == []  # h2 silently ignores an unsolicited reply


class TestCpuModel:
    def test_stack_delay_delays_dispatch(self):
        net, h1, h2 = two_hosts(stack_delay=1e-3)
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        net.run()
        # one stack traversal on send, one on receive
        assert times[0] == pytest.approx(2e-3)

    def test_recv_cost_serialises_arrivals(self):
        net = Network(seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2", recv_cost_base=1e-3)
        net.connect(h1, h2)
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        for _ in range(3):
            h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        net.run()
        assert times == pytest.approx([1e-3, 2e-3, 3e-3])

    def test_recv_queue_bound_drops(self):
        net = Network(seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2", recv_cost_base=1e-3)
        h2.recv_queue_capacity = 2
        net.connect(h1, h2)
        got = []
        h2.bind_udp(5001, got.append)
        for _ in range(5):
            h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        net.run()
        assert len(got) == 2
        assert h2.rx_dropped == 3

    def test_send_waits_for_busy_cpu(self):
        net = Network(seed=1)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2", recv_cost_base=1e-3)
        net.connect(h1, h2)
        sent_at = []
        h1.bind_udp(7, lambda p: sent_at.append(net.sim.now))
        # burst keeps h2's CPU busy until t=3ms; a reply queued at t=0
        # cannot depart before the CPU frees.
        for _ in range(3):
            h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        h2.bind_udp(5001, lambda p: None)
        net.sim.schedule(
            0.0,
            lambda: h2.send(Packet.udp(h2.mac, h1.mac, h2.ip, h1.ip, 1, 7)),
        )
        net.run()
        assert sent_at[0] >= 3e-3

    def test_stack_jitter_varies_latency(self):
        net = Network(seed=1)
        h1 = net.add_host("h1", stack_delay=1e-4, stack_jitter=5e-5)
        h2 = net.add_host("h2")
        net.connect(h1, h2)
        times = []
        h2.bind_udp(5001, lambda p: times.append(net.sim.now))
        for i in range(10):
            net.sim.schedule(
                i * 1e-3,
                lambda: h1.send(
                    Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001,
                               ident=h1.next_ip_ident())
                ),
            )
        net.run()
        latencies = {round(t % 1e-3, 9) for t in times}
        assert len(latencies) > 1  # not all identical


class TestPorts:
    def test_port_tap_sees_received_packets(self):
        net, h1, h2 = two_hosts()
        tapped = []
        h2.port(1).taps.append(tapped.append)
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        net.run()
        assert len(tapped) == 1

    def test_blocked_port_drops_rx(self):
        net, h1, h2 = two_hosts()
        got = []
        h2.bind_udp(5001, got.append)
        h2.port(1).block_for(1.0)
        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        net.run(until=0.5)
        assert got == []

    def test_block_expires(self):
        net, h1, h2 = two_hosts()
        got = []
        h2.bind_udp(5001, got.append)
        h2.port(1).block_for(0.1)
        net.sim.schedule(
            0.2, lambda: h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001))
        )
        net.run()
        assert len(got) == 1

    def test_port_counters(self):
        net, h1, h2 = two_hosts()
        pkt = Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 5001)
        h2.bind_udp(5001, lambda p: None)
        h1.send(pkt)
        net.run()
        assert h1.port(1).tx_packets == 1
        assert h2.port(1).rx_packets == 1
        assert h2.port(1).rx_bytes == pkt.wire_len

    def test_next_ip_ident_monotone_and_wrapping(self):
        net, h1, _h2 = two_hosts()
        first = h1.next_ip_ident()
        assert h1.next_ip_ident() == first + 1
        h1._ip_ident = 0xFFFF
        assert h1.next_ip_ident() == 0
