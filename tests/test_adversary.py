"""Unit tests for each adversarial behaviour against a plain switch."""

import pytest

from repro.adversary import (
    BenignBehavior,
    BlackholeBehavior,
    CompositeBehavior,
    DropBehavior,
    GeneratorFloodBehavior,
    HeaderRewriteBehavior,
    MirrorAndDropBehavior,
    MirrorBehavior,
    PacketInjectionBehavior,
    PayloadCorruptionBehavior,
    PortSwapBehavior,
    ReplayFloodBehavior,
    RerouteBehavior,
    dst_mac_rewrite,
    match_all,
    match_all_of,
    match_any_of,
    match_dst_ip,
    match_dst_mac,
    match_icmp,
    match_none,
    match_tcp,
    match_udp,
    vlan_rewrite,
)
from repro.net import Network, Packet
from repro.openflow import Match, OpenFlowSwitch, Output


def rig():
    """h1 -- s1 -- {h2, h3}; routing by MAC destination."""
    net = Network(seed=3)
    s1 = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
    net.add_node(s1)
    h1 = net.add_host("h1", promiscuous=True)
    h2 = net.add_host("h2", promiscuous=True)
    h3 = net.add_host("h3", promiscuous=True)
    for h in (h1, h2, h3):
        net.connect(h, s1)
    for h in (h1, h2, h3):
        s1.install(
            Match(dl_dst=h.mac),
            [Output(net.port_no_between("s1", h.name))],
            priority=10,
        )
    rx = {h.name: [] for h in (h1, h2, h3)}
    for h in (h1, h2, h3):
        h.bind_raw(rx[h.name].append)
    return net, s1, h1, h2, h3, rx


def udp(a, b, ident=0, payload=b"data"):
    return Packet.udp(a.mac, b.mac, a.ip, b.ip, 1, 5001, payload=payload, ident=ident)


class TestSelectors:
    def test_basic_selectors(self):
        net, s1, h1, h2, h3, rx = rig()
        packet = udp(h1, h2)
        ping = Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1)
        tcp = Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 1, 2)
        assert match_all()(packet) and not match_none()(packet)
        assert match_dst_mac(h2.mac)(packet) and not match_dst_mac(h3.mac)(packet)
        assert match_dst_ip(h2.ip)(packet)
        assert match_udp()(packet) and not match_udp()(ping)
        assert match_tcp()(tcp) and match_icmp()(ping)

    def test_combinators(self):
        net, s1, h1, h2, h3, rx = rig()
        packet = udp(h1, h2)
        both = match_all_of([match_udp(), match_dst_mac(h2.mac)])
        either = match_any_of([match_icmp(), match_dst_mac(h2.mac)])
        assert both(packet) and either(packet)
        assert not match_all_of([match_udp(), match_icmp()])(packet)


class TestBenignAndComposite:
    def test_benign_behavior_forwards_normally(self):
        net, s1, h1, h2, h3, rx = rig()
        BenignBehavior().attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert len(rx["h2"]) == 1
        assert s1.stats.behavior_handled == 1

    def test_composite_first_handler_wins(self):
        net, s1, h1, h2, h3, rx = rig()
        drop_udp = DropBehavior(selector=match_udp())
        behavior = CompositeBehavior([drop_udp, BenignBehavior()])
        behavior.attach(s1)
        h1.send(udp(h1, h2))
        h1.send(Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1))
        net.run()
        # UDP dropped... but DropBehavior falls through to normal
        # forwarding for non-matching, so ICMP is delivered by it
        icmp_rx = [p for p in rx["h2"] if p.ip.proto == 1]
        udp_rx = [p for p in rx["h2"] if p.ip.proto == 17]
        assert len(icmp_rx) >= 1 and udp_rx == []


class TestReroute:
    def test_selected_traffic_rerouted(self):
        net, s1, h1, h2, h3, rx = rig()
        wrong_port = net.port_no_between("s1", "h3")
        RerouteBehavior(wrong_port, selector=match_dst_mac(h2.mac)).attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert rx["h2"] == [] and len(rx["h3"]) == 1

    def test_unselected_traffic_unaffected(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = RerouteBehavior(
            net.port_no_between("s1", "h3"), selector=match_dst_mac(h2.mac)
        )
        behavior.attach(s1)
        h1.send(udp(h1, h3))
        net.run()
        assert len(rx["h3"]) == 1
        assert behavior.packets_tampered == 0

    def test_port_swap(self):
        net, s1, h1, h2, h3, rx = rig()
        p2 = net.port_no_between("s1", "h2")
        p3 = net.port_no_between("s1", "h3")
        PortSwapBehavior({p2: p3, p3: p2}).attach(s1)
        h1.send(udp(h1, h2))
        h1.send(udp(h1, h3, ident=1))
        net.run()
        assert len(rx["h3"]) == 1 and len(rx["h2"]) == 1
        assert rx["h3"][0].eth.dst == h2.mac  # swapped delivery
        assert rx["h2"][0].eth.dst == h3.mac


class TestMirror:
    def test_mirror_copies_and_forwards(self):
        net, s1, h1, h2, h3, rx = rig()
        MirrorBehavior(
            net.port_no_between("s1", "h3"), selector=match_dst_mac(h2.mac)
        ).attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert len(rx["h2"]) == 1 and len(rx["h3"]) == 1

    def test_mirror_without_forwarding(self):
        net, s1, h1, h2, h3, rx = rig()
        MirrorBehavior(
            net.port_no_between("s1", "h3"),
            selector=match_dst_mac(h2.mac),
            forward_original=False,
        ).attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert rx["h2"] == [] and len(rx["h3"]) == 1

    def test_mirror_and_drop(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = MirrorAndDropBehavior(
            mirror_port=net.port_no_between("s1", "h3"),
            mirror_selector=match_dst_mac(h2.mac),
            drop_selector=match_dst_mac(h1.mac),
        )
        behavior.attach(s1)
        h1.send(udp(h1, h2))   # mirrored + forwarded
        h2.send(udp(h2, h1, ident=1))  # dropped
        net.run()
        assert len(rx["h2"]) == 1 and len(rx["h3"]) == 1
        assert rx["h1"] == []
        assert behavior.mirrored == 1 and behavior.dropped == 1

    def test_mirror_in_port_restriction(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = MirrorAndDropBehavior(
            mirror_port=net.port_no_between("s1", "h3"),
            mirror_selector=match_dst_mac(h2.mac),
            drop_selector=match_none(),
            mirror_in_ports=frozenset({net.port_no_between("s1", "h1")}),
        )
        behavior.attach(s1)
        h3.send(udp(h3, h2))  # enters on the restricted-out port: no mirror
        net.run()
        assert behavior.mirrored == 0
        assert len(rx["h2"]) == 1


class TestModify:
    def test_drop_behavior_counts(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = DropBehavior(selector=match_dst_mac(h2.mac))
        behavior.attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert rx["h2"] == [] and behavior.dropped == 1

    def test_probabilistic_drop(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = DropBehavior(
            drop_probability=0.5, rng=net.rng.stream("adversary")
        )
        behavior.attach(s1)
        for i in range(200):
            net.sim.schedule(i * 1e-5, lambda i=i: h1.send(udp(h1, h2, ident=i)))
        net.run()
        assert 60 < len(rx["h2"]) < 140

    def test_header_rewrite_reroutes_via_table(self):
        net, s1, h1, h2, h3, rx = rig()
        HeaderRewriteBehavior(dst_mac_rewrite(h3.mac)).attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert rx["h2"] == [] and len(rx["h3"]) == 1

    def test_vlan_rewrite_mutator(self):
        packet = udp_sample = None
        net, s1, h1, h2, h3, rx = rig()
        sample = udp(h1, h2)
        vlan_rewrite(99)(sample)
        assert sample.vlan.vid == 99
        vlan_rewrite(7)(sample)
        assert sample.vlan.vid == 7

    def test_payload_corruption_changes_bits_not_route(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = PayloadCorruptionBehavior(flip_offset=1)
        behavior.attach(s1)
        original = udp(h1, h2, payload=b"abcd")
        h1.send(original.copy())
        net.run()
        assert len(rx["h2"]) == 1
        assert rx["h2"][0].payload == b"a\x9dcd"
        assert behavior.corrupted == 1

    def test_packet_injection_timer(self):
        net, s1, h1, h2, h3, rx = rig()

        def factory(i):
            return Packet.udp(h3.mac, h2.mac, h3.ip, h2.ip, 6, 6, ident=i)

        behavior = PacketInjectionBehavior(
            factory, inject_port=net.port_no_between("s1", "h2"), period=1e-3
        )
        behavior.attach(s1)
        behavior.start()
        net.run(until=5.5e-3)
        behavior.stop()
        assert behavior.injected == 6  # t=0..5ms inclusive
        assert len(rx["h2"]) == 6

    def test_injection_requires_attach(self):
        behavior = PacketInjectionBehavior(lambda i: None, 1, 1e-3)
        with pytest.raises(RuntimeError):
            behavior.start()


class TestDos:
    def test_replay_flood_amplifies(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = ReplayFloodBehavior(amplification=4)
        behavior.attach(s1)
        h1.send(udp(h1, h2))
        net.run()
        assert len(rx["h2"]) == 5  # original + 4 replays
        assert behavior.replayed == 4

    def test_replay_flood_validation(self):
        with pytest.raises(ValueError):
            ReplayFloodBehavior(amplification=0)

    def test_generator_flood(self):
        net, s1, h1, h2, h3, rx = rig()

        def factory(i):
            return Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 9, 9, ident=i)

        behavior = GeneratorFloodBehavior(
            factory, out_port=net.port_no_between("s1", "h2"), rate_pps=1000
        )
        behavior.attach(s1)
        behavior.start()
        net.run(until=0.0105)
        behavior.stop()
        assert 10 <= behavior.generated <= 11

    def test_generator_flood_validation(self):
        with pytest.raises(ValueError):
            GeneratorFloodBehavior(lambda i: None, 1, rate_pps=0)

    def test_blackhole_swallows_everything(self):
        net, s1, h1, h2, h3, rx = rig()
        behavior = BlackholeBehavior()
        behavior.attach(s1)
        h1.send(udp(h1, h2))
        h2.send(udp(h2, h1, ident=1))
        net.run()
        assert rx["h1"] == [] and rx["h2"] == []
        assert behavior.swallowed == 2

    def test_selective_blackhole(self):
        net, s1, h1, h2, h3, rx = rig()
        BlackholeBehavior(selector=match_dst_mac(h2.mac)).attach(s1)
        h1.send(udp(h1, h2))
        h1.send(udp(h1, h3, ident=1))
        net.run()
        assert rx["h2"] == [] and len(rx["h3"]) == 1
