"""Tests for the UDP CBR sender/receiver (the iperf -u analogue)."""

import pytest

from repro.net import Network
from repro.traffic import UdpReceiver, UdpSender


def rig(rate_bps=1e6, payload_size=100, send_cost=0.0, loss=0.0):
    net = Network(seed=5)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, h2, rate_bps=1e9, loss=loss, queue_capacity=10_000)
    receiver = UdpReceiver(h2, 5001)
    sender = UdpSender(
        h1, h2.mac, h2.ip, 5001,
        rate_bps=rate_bps, payload_size=payload_size, send_cost=send_cost,
    )
    return net, sender, receiver


class TestSender:
    def test_paces_at_target_rate(self):
        net, sender, receiver = rig(rate_bps=1e6, payload_size=125)
        sender.start(duration=0.1)
        net.run(until=0.2)
        # 1 Mbit/s of 1000-bit payloads = 1000 pps for 0.1 s
        assert sender.sent == pytest.approx(100, abs=2)

    def test_send_cost_caps_rate(self):
        net, sender, receiver = rig(rate_bps=1e9, payload_size=125, send_cost=1e-3)
        assert sender.interval == 1e-3
        sender.start(duration=0.05)
        net.run(until=0.1)
        assert sender.sent == pytest.approx(50, abs=2)

    def test_stop_halts(self):
        net, sender, receiver = rig()
        sender.start(duration=1.0)
        net.sim.schedule(0.01, sender.stop)
        net.run(until=0.1)
        assert sender.sent < 200

    def test_payload_size_floor(self):
        net, sender, receiver = rig()
        with pytest.raises(ValueError):
            UdpSender(net.host("h1"), None, None, 1, rate_bps=1e6, payload_size=4)
        with pytest.raises(ValueError):
            UdpSender(net.host("h1"), None, None, 1, rate_bps=0)


class TestReceiver:
    def test_clean_flow_no_loss(self):
        net, sender, receiver = rig()
        sender.start(duration=0.05)
        net.run(until=0.2)
        result = receiver.result(sender, 0.05)
        assert result.lost == 0
        assert result.loss_rate == 0.0
        assert result.received_unique == sender.sent

    def test_throughput_matches_offered(self):
        net, sender, receiver = rig(rate_bps=2e6, payload_size=250)
        sender.start(duration=0.1)
        net.run(until=0.3)
        result = receiver.result(sender, 0.1)
        assert result.throughput_mbps == pytest.approx(2.0, rel=0.05)
        assert result.offered_mbps == pytest.approx(2.0, rel=0.05)

    def test_loss_detected(self):
        net, sender, receiver = rig(loss=0.2)
        sender.start(duration=0.1)
        net.run(until=0.3)
        result = receiver.result(sender, 0.1)
        assert 0.05 < result.loss_rate < 0.4

    def test_duplicates_counted_once(self):
        net, sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        from repro.net import Packet
        import struct

        payload = struct.pack("!IQ", 1, 1000) + b"\x00" * 88
        packet = Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 50000, 5001,
                            payload=payload)
        for _ in range(3):
            h1.send(packet.copy())
        net.run()
        assert receiver.received_unique == 1
        assert receiver.duplicates == 2

    def test_reordering_counted(self):
        net, sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        from repro.net import Packet
        import struct

        def mk(seq):
            payload = struct.pack("!IQ", seq, 1000) + b"\x00" * 88
            return Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 50000, 5001,
                              payload=payload, ident=seq)

        for seq in (0, 2, 1):
            h1.send(mk(seq))
        net.run()
        assert receiver.reordered == 1

    def test_malformed_payload_ignored(self):
        net, sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        from repro.net import Packet

        h1.send(Packet.udp(h1.mac, h2.mac, h1.ip, h2.ip, 5, 5001, payload=b"xx"))
        net.run()
        assert receiver.received_unique == 0

    def test_close_unbinds(self):
        net, sender, receiver = rig()
        receiver.close()
        net.host("h2").bind_udp(5001, lambda p: None)  # no conflict
