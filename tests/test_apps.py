"""Tests for controller applications: learning switch, static routing,
hub rule installers."""

import pytest

from repro.apps import (
    LearningSwitchApp,
    StaticMacRouter,
    hub_rule_count,
    install_hub_rules,
    install_mux_rules,
)
from repro.net import Network, Packet
from repro.openflow import OpenFlowSwitch


def line_topology(n_switches=1, n_hosts=2):
    net = Network(seed=1)
    switches = []
    for i in range(n_switches):
        s = OpenFlowSwitch(net.sim, f"s{i+1}", trace_bus=net.trace)
        net.add_node(s)
        switches.append(s)
    for a, b in zip(switches, switches[1:]):
        net.connect(a, b)
    hosts = [net.add_host(f"h{i+1}") for i in range(n_hosts)]
    net.connect(hosts[0], switches[0])
    net.connect(hosts[1], switches[-1])
    return net, switches, hosts


def udp(a, b, dport=5001, ident=0):
    return Packet.udp(a.mac, b.mac, a.ip, b.ip, 1, dport, ident=ident)


class TestLearningSwitch:
    def test_first_packet_floods(self):
        net, (s1,), (h1, h2) = line_topology()
        app = LearningSwitchApp(net.sim)
        s1.connect_controller(app)
        got = []
        h2.bind_udp(5001, got.append)
        h1.send(udp(h1, h2))
        net.run()
        assert len(got) == 1
        assert app.floods == 1

    def test_return_traffic_installs_flow(self):
        net, (s1,), (h1, h2) = line_topology()
        app = LearningSwitchApp(net.sim)
        s1.connect_controller(app)
        h2.bind_udp(5001, lambda p: None)
        h1.bind_udp(5001, lambda p: None)
        h1.send(udp(h1, h2, ident=1))
        net.run()
        h2.send(udp(h2, h1, ident=2))  # dst h1 now known -> flow install
        net.run()
        assert app.flows_installed == 1
        assert len(s1.table) == 1

    def test_learned_flow_bypasses_controller(self):
        net, (s1,), (h1, h2) = line_topology()
        app = LearningSwitchApp(net.sim)
        s1.connect_controller(app)
        h2.bind_udp(5001, lambda p: None)
        h1.bind_udp(5001, lambda p: None)
        h1.send(udp(h1, h2, ident=1))
        net.run()
        h2.send(udp(h2, h1, ident=2))
        net.run()
        before = app.messages_received
        h2.send(udp(h2, h1, ident=3))
        net.run()
        assert app.messages_received == before  # no new packet-in

    def test_multi_switch_learning_end_to_end(self):
        net, switches, (h1, h2) = line_topology(n_switches=3)
        app = LearningSwitchApp(net.sim)
        for s in switches:
            s.connect_controller(app)
        got = []
        h2.bind_udp(5001, got.append)
        h1.bind_udp(5001, lambda p: None)
        h1.send(udp(h1, h2, ident=1))
        net.run()
        h2.send(udp(h2, h1, ident=2))
        net.run()
        h1.send(udp(h1, h2, ident=3))
        net.run()
        assert len(got) == 2
        assert app.learned_port(switches[0], h1.mac) > 0

    def test_flow_idle_timeout_configurable(self):
        net, (s1,), (h1, h2) = line_topology()
        app = LearningSwitchApp(net.sim, flow_idle_timeout=0.05)
        s1.connect_controller(app)
        h1.bind_udp(5001, lambda p: None)
        h2.bind_udp(5001, lambda p: None)
        h1.send(udp(h1, h2, ident=1))
        net.run()
        h2.send(udp(h2, h1, ident=2))
        net.run()
        assert s1.table.entries[0].idle_timeout == 0.05


class TestStaticMacRouter:
    def test_install_pair_enables_ping(self):
        net, switches, (h1, h2) = line_topology(n_switches=3)
        router = StaticMacRouter(net)
        forward, backward = router.install_pair(h1, h2)
        assert forward[0] == h1.name and forward[-1] == h2.name
        replies = []
        h1.bind_icmp(replies.append)
        h1.send(Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1))
        net.run()
        assert len(replies) == 1

    def test_route_of_reports_installed_port(self):
        net, switches, (h1, h2) = line_topology(n_switches=2)
        router = StaticMacRouter(net)
        router.install_pair(h1, h2)
        assert router.route_of("s1", h2) == net.port_no_between("s1", "s2")
        assert router.route_of("s2", h2) == net.port_no_between("s2", "h2")

    def test_install_path_validates_destination(self):
        net, switches, (h1, h2) = line_topology()
        router = StaticMacRouter(net)
        with pytest.raises(ValueError):
            router.install_path(["h1", "s1"], h2)
        with pytest.raises(ValueError):
            router.install_path(["h2"], h2)

    def test_full_mesh(self):
        net, (s1,), (h1, h2) = line_topology()
        h3 = net.add_host("h3")
        net.connect(h3, s1)
        StaticMacRouter(net).install_full_mesh([h1, h2, h3])
        got = []
        h3.bind_udp(5001, got.append)
        h1.send(udp(h1, h3))
        net.run()
        assert len(got) == 1


class TestHubRules:
    def test_hub_rules_duplicate_upstream_traffic(self):
        net = Network(seed=1)
        s1 = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
        net.add_node(s1)
        h_up = net.add_host("up", promiscuous=True)
        sinks = [net.add_host(f"d{i}", promiscuous=True) for i in range(3)]
        net.connect(h_up, s1)
        for sink in sinks:
            net.connect(s1, sink)
        upstream_port = net.port_no_between("s1", "up")
        branch_ports = [net.port_no_between("s1", f"d{i}") for i in range(3)]
        install_hub_rules(s1, upstream_port, branch_ports)
        counts = {i: [] for i in range(3)}
        for i, sink in enumerate(sinks):
            sink.bind_raw(counts[i].append)
        h_up.send(udp(h_up, sinks[0]))
        net.run()
        assert all(len(counts[i]) == 1 for i in range(3))

    def test_hub_rules_merge_reverse_traffic(self):
        net = Network(seed=1)
        s1 = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
        net.add_node(s1)
        h_up = net.add_host("up", promiscuous=True)
        d0 = net.add_host("d0")
        net.connect(h_up, s1)
        net.connect(s1, d0)
        install_hub_rules(
            s1, net.port_no_between("s1", "up"), [net.port_no_between("s1", "d0")]
        )
        got = []
        h_up.bind_raw(got.append)
        d0.send(udp(d0, h_up))
        net.run()
        assert len(got) == 1

    def test_mux_rules_forward_to_compare_port(self):
        net = Network(seed=1)
        s1 = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
        net.add_node(s1)
        source = net.add_host("src")
        compare = net.add_host("cmp", promiscuous=True)
        net.connect(source, s1)
        net.connect(s1, compare)
        install_mux_rules(
            s1,
            [net.port_no_between("s1", "src")],
            net.port_no_between("s1", "cmp"),
        )
        got = []
        compare.bind_raw(got.append)
        source.send(udp(source, compare))
        net.run()
        assert len(got) == 1

    def test_hub_rule_count_is_small(self):
        # the paper's cost argument: trusted components stay simple
        assert hub_rule_count([2, 3, 4]) == 4
