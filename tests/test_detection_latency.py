"""Detection-latency property suite: the advbench safety contract.

Three claims, each driven across 24 seeds per adversary strategy:

1. **No masked damage below quorum.**  While an honest quorum holds, no
   tampered wire image is ever released to the receiver, no attack-window
   packet is lost to the adversary before quarantine, and no honest
   branch is quarantined — for *every* strategy in the library, including
   the colluding minority that stays forever silent.
2. **Bounded time-to-alarm.**  Strategies whose tamper volume exceeds the
   vigilant profile's thresholds (probation evader, sweep-timed,
   path-inconsistency) are alarmed on and quarantined within a fixed
   horizon of activation.
3. **Honest runs never false-quarantine.**  With the strategy scheduled
   after the run ends (a benign control), the quarantine log stays empty.

The colluding-*quorum* row is the deliberate negative control: once the
adversary holds a vote majority the combiner is beaten by construction,
damage is admitted, and nothing alarms — the table documents the
boundary rather than pretending to detect past it.
"""

import functools

import pytest

from repro.analysis.tasks import ADVBENCH_ADVERSARIES, adversary_run

SEEDS = list(range(24))

#: max allowed (quarantine time - activation time) on the vigilant
#: profile; worst strategy observed is path_inconsistency at ~11.1 ms
HORIZON = 0.015

#: strategies whose tamper rate exceeds vigilant thresholds -> must be
#: caught within HORIZON
ABOVE_THRESHOLD = ("probation_evader", "sweep_timed", "path_inconsistency")

#: collusion rows need k=5 so a >1-branch minority exists below quorum
COLLUSION = ("colluding_minority", "colluding_quorum")

SUB_QUORUM = tuple(a for a in ADVBENCH_ADVERSARIES if a != "colluding_quorum")


@functools.lru_cache(maxsize=None)
def record(adversary: str, seed: int, activate_at: float = 0.004) -> dict:
    """One cached advbench record; each (adversary, seed) runs once."""
    variant = "central5" if adversary in COLLUSION else "central3"
    return adversary_run(
        seed=seed,
        variant=variant,
        adversary=adversary,
        profile="vigilant",
        duration=0.02,
        activate_at=activate_at,
    )


# ----------------------------------------------------------------------
# 1. safety below quorum
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("adversary", SUB_QUORUM)
def test_no_masked_damage_below_quorum(adversary, seed):
    rec = record(adversary, seed)
    assert rec["masked_damage"] == 0
    assert rec["packets_leaked_before_quarantine"] == 0
    assert rec["false_quarantines"] == 0
    assert rec["false_quarantine_rate"] == 0.0


@pytest.mark.parametrize("seed", SEEDS)
def test_colluding_minority_is_silent_but_harmless(seed):
    # m = quorum-1 identical wrong images never outvote the honest
    # majority, and never trip a single-source alarm either: documented
    # evasion, bounded to zero damage by the vote policy alone.
    rec = record("colluding_minority", seed)
    assert rec["tampered"] > 0
    assert rec["masked_damage"] == 0
    assert rec["packets_leaked_before_quarantine"] == 0


# ----------------------------------------------------------------------
# 2. bounded time-to-alarm above threshold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("adversary", ABOVE_THRESHOLD)
def test_above_threshold_alarms_within_horizon(adversary, seed):
    rec = record(adversary, seed)
    assert rec["tampered"] > 0
    assert rec["time_to_first_alarm"] is not None
    assert rec["detection_latency"] is not None
    assert rec["time_to_first_alarm"] <= rec["detection_latency"]
    assert rec["detection_latency"] <= HORIZON
    # the quarantined branch really is the adversarial one
    assert set(rec["quarantined"]) & set(rec["adversary_branches"])


@pytest.mark.parametrize("seed", SEEDS)
def test_probation_evader_completes_evasion_cycle(seed):
    # the evader goes quiet once quarantined, rides probation back in --
    # both transitions must appear in the record
    rec = record("probation_evader", seed)
    assert rec["quarantined"]
    assert rec["readmitted"]


@pytest.mark.parametrize("seed", SEEDS)
def test_sampled_corruption_alarm_follows_tampering(seed):
    # a single-branch corrupt copy always surfaces as a single-source
    # expiry eventually, so tampering and alarming coincide
    rec = record("sampled_p1", seed)
    if rec["tampered"]:
        assert rec["time_to_first_alarm"] is not None


# ----------------------------------------------------------------------
# 3. honest control: false-quarantine rate exactly 0
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_honest_run_never_quarantines(seed):
    # activation scheduled after the run ends -> the strategy never
    # fires; an honest fleet must show a pristine quarantine log
    rec = record("sampled_p1", seed, activate_at=1.0)
    assert rec["tampered"] == 0
    assert rec["quarantined"] == []
    assert rec["false_quarantines"] == 0
    assert rec["false_quarantine_rate"] == 0.0
    assert rec["masked_damage"] == 0


# ----------------------------------------------------------------------
# negative control: at-quorum collusion is beyond the design point
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_colluding_quorum_admits_damage(seed):
    rec = record("colluding_quorum", seed)
    assert rec["masked_damage"] > 0
    assert rec["packets_leaked_before_quarantine"] > 0
    assert rec["detection_latency"] is None
