"""Live dashboard: FleetState snapshots, HTTP endpoints, the watch CLI."""

import json
import urllib.error
import urllib.request

import pytest

from repro.farm import FarmExecutor, FarmProgress, ResultCache, RunSpec, register_runner
from repro.obs.dashboard import DashboardServer
from repro.obs.events import EventLogWriter, FarmEventLogger
from repro.obs.fleet import FleetState
from repro.obs.fleet_cli import fleet_main
from repro.obs.metrics import MetricsRegistry, use_registry


@register_runner("dash.echo")
def dash_echo_task(value, seed=0):
    return {"value": value}


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers.get("Content-Type", ""), response.read().decode("utf-8")


def _run_small_farm(cache=None, jobs=1, specs=None):
    progress = FarmProgress()
    fleet = FleetState(progress, cache=cache, jobs=jobs, name="unit")
    executor = FarmExecutor(jobs=jobs, cache=cache, progress=progress)
    if specs is None:
        specs = [RunSpec("dash.echo", {"value": i}, seed=i) for i in range(3)]
    executor.run(specs)
    return fleet


# ----------------------------------------------------------------------
# FleetState
# ----------------------------------------------------------------------
class TestFleetState:
    def test_snapshot_after_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fleet = _run_small_farm(cache=cache)
        snap = fleet.snapshot()
        assert snap["finished"] is True
        assert snap["progress"]["done"] == 3
        assert snap["progress"]["executed"] == 3
        assert snap["per_runner"]["dash.echo"]["done"] == 3
        assert snap["in_flight"] == []
        assert snap["ewma_task_wall_s"] is not None
        assert snap["eta_s"] is None  # queue drained
        assert snap["cache"]["misses"] == 3
        fleet.detach()

    def test_snapshot_is_json_serialisable(self):
        fleet = _run_small_farm()
        json.dumps(fleet.snapshot())  # must not raise
        fleet.detach()

    def test_recent_events_pagination(self):
        fleet = _run_small_farm()
        events = fleet.recent_events()
        assert events, "run should have produced bus records"
        last = events[-1]["seq"]
        assert fleet.recent_events(after=last) == []
        tail = fleet.recent_events(after=last - 2)
        assert [e["seq"] for e in tail] == [last - 1, last]
        fleet.detach()

    def test_in_flight_visible_mid_run(self):
        progress = FarmProgress()
        fleet = FleetState(progress, jobs=2, name="midrun")
        spec = RunSpec("dash.echo", {"value": 1}, seed=1)
        progress.task_queued(spec)
        progress.task_started(spec, attempt=2)
        snap = fleet.snapshot()
        assert len(snap["in_flight"]) == 1
        assert snap["in_flight"][0]["attempt"] == 2
        progress.task_done(spec, wall_time=0.5)
        assert fleet.snapshot()["in_flight"] == []
        fleet.detach()

    def test_eta_uses_ewma_and_jobs(self):
        progress = FarmProgress()
        fleet = FleetState(progress, jobs=2, name="eta")
        specs = [RunSpec("dash.echo", {"value": i}, seed=i) for i in range(5)]
        for spec in specs:
            progress.task_queued(spec)
        progress.task_started(specs[0], attempt=1)
        progress.task_done(specs[0], wall_time=1.0)
        # 4 remaining, ewma 1.0s, 2 jobs -> ~2s
        assert fleet.eta_seconds() == pytest.approx(2.0)
        fleet.detach()


# ----------------------------------------------------------------------
# DashboardServer endpoints
# ----------------------------------------------------------------------
class TestDashboardServer:
    def test_endpoints(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            cache = ResultCache(tmp_path / "cache")
        fleet = _run_small_farm(cache=cache)
        with DashboardServer(fleet=fleet, registry=registry) as server:
            base = server.url
            status, ctype, body = _get(base + "/")
            assert status == 200 and "/metrics" in body

            status, ctype, body = _get(base + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "cache_misses_total 3" in body

            status, ctype, body = _get(base + "/fleet")
            assert status == 200 and ctype.startswith("application/json")
            snap = json.loads(body)
            assert snap["progress"]["done"] == 3
            assert snap["finished"] is True

            status, _, body = _get(base + "/events?after=0")
            assert status == 200
            events = json.loads(body)
            assert any(e["topic"] == "farm.summary" for e in events)

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/nope")
            assert excinfo.value.code == 404
        fleet.detach()

    def test_fleet_503_when_unattached(self):
        with DashboardServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/fleet")
            assert excinfo.value.code == 503

    def test_ephemeral_port_and_repoint(self):
        server = DashboardServer()
        port = server.start()
        assert port > 0
        assert server.url == f"http://127.0.0.1:{port}"
        # re-pointing at a new battery must not rebind the socket
        fleet = _run_small_farm()
        server.fleet = fleet
        status, _, body = _get(server.url + "/fleet")
        assert status == 200
        assert json.loads(body)["progress"]["done"] == 3
        server.stop()
        fleet.detach()


# ----------------------------------------------------------------------
# the fleet CLI: watch / replay
# ----------------------------------------------------------------------
def _logged_farm_run(tmp_path, name="cli"):
    path = str(tmp_path / f"{name}.jsonl")
    progress = FarmProgress()
    writer = EventLogWriter(path, name=name)
    logger = FarmEventLogger(writer, progress)
    executor = FarmExecutor(jobs=1, progress=progress)
    executor.run([RunSpec("dash.echo", {"value": i}, seed=i) for i in range(3)])
    logger.detach()
    writer.close()
    return path


class TestFleetCli:
    def test_watch_once_from_events(self, tmp_path, capsys):
        path = _logged_farm_run(tmp_path)
        assert fleet_main(["watch", "--events", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "[finished]" in out
        assert "tasks: 3/3 done" in out
        assert "\x1b[" not in out  # --once never emits ANSI control codes

    def test_watch_once_from_url(self, tmp_path, capsys):
        fleet = _run_small_farm()
        with DashboardServer(fleet=fleet) as server:
            assert fleet_main(["watch", "--url", server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "tasks: 3/3 done" in out
        fleet.detach()

    def test_watch_unreachable_source_exits_1(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert fleet_main(["watch", "--events", missing, "--once"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_replay_check_ok(self, tmp_path, capsys):
        path = _logged_farm_run(tmp_path)
        assert fleet_main(["replay", path, "--check"]) == 0
        assert "replay ok" in capsys.readouterr().out

    def test_replay_check_flags_truncation(self, tmp_path, capsys):
        path = _logged_farm_run(tmp_path)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        truncated = str(tmp_path / "truncated.jsonl")
        with open(truncated, "w", encoding="utf-8") as fh:
            fh.writelines(lines[: len(lines) // 2])
        assert fleet_main(["replay", truncated]) == 0  # report-only
        assert fleet_main(["replay", truncated, "--check"]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_profile_empty_dir_exits_1(self, tmp_path, capsys):
        assert fleet_main(["profile", str(tmp_path)]) == 1
        assert "no profile dumps" in capsys.readouterr().err
