"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.analysis.cli import COMMANDS, main


class TestCli:
    def test_casestudy_command(self, capsys):
        assert main(["casestudy"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "attack" in out and "protected" in out
        assert "20" in out  # the doubled requests

    def test_virtualized_command(self, capsys):
        assert main(["virtualized"]) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out and "PREVENTED" in out

    def test_fig7_quick(self, capsys):
        assert main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "linespeed" in out and "central5" in out
        assert "paper" in out

    def test_fig6_quick(self, capsys):
        assert main(["fig6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "loss" in out

    def test_fig7_parallel_output_matches_serial(self, capsys, tmp_path):
        args = ["fig7", "--quick", "--cache-dir", str(tmp_path / "c")]
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert main(args + ["--jobs", "1", "--no-cache"]) == 0
        serial = capsys.readouterr().out

        def record_lines(out):
            return [line for line in out.splitlines()
                    if not line.startswith(("[farm]", "[fig7 finished"))]

        assert record_lines(parallel) == record_lines(serial)

    def test_fig7_cached_rerun_reports_full_hits(self, capsys, tmp_path):
        args = ["fig7", "--quick", "--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0% hits" in first or "miss" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "(100% hits)" in second
        # the cached record is the same record
        assert [l for l in first.splitlines() if "rtt_ms" in l] == [
            l for l in second.splitlines() if "rtt_ms" in l
        ]

    def test_no_cache_flag_disables_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "c"
        assert main(["fig7", "--quick", "--no-cache",
                     "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()
        out = capsys.readouterr().out
        assert "[farm]" in out and "[farm] cache" not in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_all_known_commands_registered(self):
        assert set(COMMANDS) == {
            "table1", "fig4", "fig5", "fig6", "fig7", "fig8",
            "advbench", "casestudy", "chaos", "ctrlbft", "virtualized",
        }
