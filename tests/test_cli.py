"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.analysis.cli import COMMANDS, main


class TestCli:
    def test_casestudy_command(self, capsys):
        assert main(["casestudy"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "attack" in out and "protected" in out
        assert "20" in out  # the doubled requests

    def test_virtualized_command(self, capsys):
        assert main(["virtualized"]) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out and "PREVENTED" in out

    def test_fig7_quick(self, capsys):
        assert main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "linespeed" in out and "central5" in out
        assert "paper" in out

    def test_fig6_quick(self, capsys):
        assert main(["fig6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "loss" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_all_known_commands_registered(self):
        assert set(COMMANDS) == {
            "table1", "fig4", "fig5", "fig6", "fig7", "fig8",
            "casestudy", "virtualized",
        }
