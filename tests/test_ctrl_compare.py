"""Tests for the control-plane voter (repro.ctrl.compare)."""

import pytest

from repro.core.alarms import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
)
from repro.ctrl.compare import ControlCompare, ControlCompareConfig
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.messages import FLOWMOD_ADD, FlowMod
from repro.net import MacAddress
from repro.sim import Simulator

DPID = 7


def mod(priority=10, port=2, mac_index=2):
    return FlowMod(
        command=FLOWMOD_ADD,
        match=Match(dl_dst=MacAddress.from_index(mac_index)),
        actions=[Output(port)],
        priority=priority,
    )


class Harness:
    def __init__(self, **config_kwargs):
        self.sim = Simulator()
        config_kwargs.setdefault("k", 3)
        config_kwargs.setdefault("vote_timeout", 0.01)
        self.compare = ControlCompare(
            self.sim, ControlCompareConfig(**config_kwargs), name="cc"
        )
        self.released = []
        self.compare.register_switch(DPID, self.released.append)

    def submit(self, replica, message, tainted=False):
        self.compare.submit(replica, DPID, message, tainted=tainted)

    def alarms(self, kind=None):
        alarms = self.compare.alarms.alarms
        if kind is None:
            return alarms
        return [a for a in alarms if a.kind == kind]


class TestRelease:
    def test_majority_releases_exactly_once(self):
        h = Harness()
        for replica in range(3):
            h.submit(replica, mod())
        assert len(h.released) == 1
        assert h.compare.stats.released == 1
        assert h.compare.stats.late_copies == 1

    def test_single_replica_never_reaches_quorum(self):
        h = Harness()
        h.submit(0, mod())
        h.sim.run(until=0.05)
        assert h.released == []
        assert h.compare.stats.blocked_no_quorum == 1

    def test_divergent_copies_vote_separately(self):
        h = Harness()
        h.submit(0, mod(port=2))
        h.submit(1, mod(port=9999))  # the lie
        h.submit(2, mod(port=2))
        assert len(h.released) == 1
        assert h.released[0].actions[0].port == 2

    def test_released_message_is_the_voted_object(self):
        h = Harness()
        first = mod()
        h.submit(0, first)
        h.submit(1, mod())
        assert h.released[0] is first

    def test_messages_for_different_switches_vote_separately(self):
        h = Harness()
        other = []
        h.compare.register_switch(DPID + 1, other.append)
        h.submit(0, mod())
        h.compare.submit(1, DPID + 1, mod())
        assert h.released == [] and other == []

    def test_quorum_override(self):
        h = Harness(k=3, quorum=3)
        h.submit(0, mod())
        h.submit(1, mod())
        assert h.released == []
        h.submit(2, mod())
        assert len(h.released) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControlCompareConfig(k=0).validate()
        with pytest.raises(ValueError):
            ControlCompareConfig(k=3, quorum=4).validate()
        with pytest.raises(ValueError):
            ControlCompareConfig(vote_timeout=0.0).validate()


class TestDivergenceAlarm:
    def test_unconfirmed_minority_raises_divergence_alarm(self):
        h = Harness(divergence_threshold=1)
        h.submit(0, mod())
        h.submit(1, mod(port=9999))
        h.submit(2, mod())
        h.sim.run(until=0.05)  # liar's entry expires unreleased
        alarms = h.alarms(ALARM_MINORITY_DIVERGENCE)
        assert [a.branch for a in alarms] == [1]

    def test_divergence_threshold_requires_strikes(self):
        h = Harness(divergence_threshold=2)
        h.submit(0, mod())
        h.submit(1, mod(port=9999))
        h.submit(2, mod())
        h.sim.run(until=0.05)
        assert h.alarms(ALARM_MINORITY_DIVERGENCE) == []
        h.submit(0, mod(mac_index=3))
        h.submit(1, mod(mac_index=3, port=9999))
        h.submit(2, mod(mac_index=3))
        h.sim.run(until=0.1)
        assert [a.branch for a in h.alarms(ALARM_MINORITY_DIVERGENCE)] == [1]

    def test_divergence_alarm_not_repeated(self):
        h = Harness(divergence_threshold=1)
        for round_ in range(4):
            h.submit(0, mod(mac_index=round_ + 2))
            h.submit(1, mod(mac_index=round_ + 2, port=9999))
            h.submit(2, mod(mac_index=round_ + 2))
        h.sim.run(until=0.05)
        assert len(h.alarms(ALARM_MINORITY_DIVERGENCE)) == 1

    def test_blocked_metric_reasons(self):
        h = Harness()
        h.submit(1, mod(port=9999))  # counted minority -> no_quorum
        h.compare.quarantine_branch(2, reason="test")
        h.submit(2, mod(mac_index=5))  # probation only -> quarantined
        h.sim.run(until=0.05)
        assert h.compare.stats.blocked_no_quorum == 1
        assert h.compare.stats.blocked_quarantined == 1
        assert h.compare.stats.blocked == 2


class TestMissingReplica:
    def test_silent_replica_alarms_after_threshold(self):
        h = Harness(miss_threshold=3)
        for round_ in range(3):
            h.submit(0, mod(mac_index=round_ + 2))
            h.submit(1, mod(mac_index=round_ + 2))
            # replica 2 silent
        h.sim.run(until=0.05)
        alarms = h.alarms(ALARM_ROUTER_UNAVAILABLE)
        assert [a.branch for a in alarms] == [2]
        assert alarms[0].details["consecutive_misses"] == 3

    def test_fresh_vote_heals_miss_count(self):
        h = Harness(miss_threshold=2)
        h.submit(0, mod())
        h.submit(1, mod())
        h.sim.run(until=0.05)  # one miss for replica 2
        h.submit(0, mod(mac_index=3))
        h.submit(1, mod(mac_index=3))
        h.submit(2, mod(mac_index=3))  # heals
        h.sim.run(until=0.1)
        h.submit(0, mod(mac_index=4))
        h.submit(1, mod(mac_index=4))
        h.sim.run(until=0.15)
        assert h.alarms(ALARM_ROUTER_UNAVAILABLE) == []


class TestQuarantineProbation:
    def test_quarantined_copies_do_not_count(self):
        h = Harness()
        h.compare.quarantine_branch(1, reason="test")
        h.submit(0, mod())
        h.submit(1, mod())  # probation only
        assert h.released == []
        assert h.compare.stats.quarantined_copies == 1

    def test_dynamic_quorum_after_quarantine(self):
        h = Harness(k=3)  # quorum 2 of 3
        h.compare.quarantine_branch(1, reason="test")
        # active = {0, 2}: strict majority of 2 is still 2
        h.submit(0, mod())
        assert h.released == []
        h.submit(2, mod())
        assert len(h.released) == 1

    def test_probation_clean_copies_readmit(self):
        h = Harness(probation_clean_target=2)
        h.compare.quarantine_branch(1, reason="test")
        for round_ in range(2):
            h.submit(0, mod(mac_index=round_ + 2))
            h.submit(2, mod(mac_index=round_ + 2))  # releases
            h.submit(1, mod(mac_index=round_ + 2))  # clean probation copy
        assert not h.compare.is_quarantined(1)
        assert [a.branch for a in h.alarms(ALARM_BRANCH_READMITTED)] == [1]

    def test_divergent_probation_copy_resets_progress(self):
        h = Harness(probation_clean_target=2)
        h.compare.quarantine_branch(1, reason="test")
        h.submit(0, mod())
        h.submit(2, mod())
        h.submit(1, mod())  # clean: 1/2
        h.submit(0, mod(mac_index=3))
        h.submit(2, mod(mac_index=3))
        h.submit(1, mod(mac_index=3, port=9999))  # divergent probation copy
        h.sim.run(until=0.05)  # the lie expires -> reset
        assert h.compare.stats.probation_resets == 1
        assert h.compare.is_quarantined(1)

    def test_readmission_clears_divergence_strikes(self):
        h = Harness(divergence_threshold=1, probation_clean_target=1)
        h.submit(0, mod())
        h.submit(1, mod(port=9999))
        h.submit(2, mod())
        h.sim.run(until=0.05)
        h.compare.quarantine_branch(1, reason="divergence")
        h.submit(0, mod(mac_index=3))
        h.submit(2, mod(mac_index=3))
        h.submit(1, mod(mac_index=3))  # clean -> readmitted
        assert not h.compare.is_quarantined(1)
        # A relapse must alarm again from scratch.
        h.submit(0, mod(mac_index=4))
        h.submit(1, mod(mac_index=4, port=9999))
        h.submit(2, mod(mac_index=4))
        h.sim.run(until=0.1)
        assert len(h.alarms(ALARM_MINORITY_DIVERGENCE)) == 2

    def test_min_active_branches_refuses_last_quarantine(self):
        h = Harness(k=2, min_active_branches=1)
        assert h.compare.quarantine_branch(0, reason="test")
        assert not h.compare.quarantine_branch(1, reason="test")
        assert len(h.alarms(ALARM_BRANCH_QUARANTINED)) == 1


class TestEvictionWithQuarantine:
    """Satellite: expired/evicted entries must not re-trigger missing-
    branch alarms for quarantined replicas (they are *expected* to be
    absent from the quorum count while on probation)."""

    def test_pop_expired_does_not_alarm_quarantined_branch(self):
        h = Harness(miss_threshold=1)
        h.compare.quarantine_branch(2, reason="test")
        for round_ in range(4):
            h.submit(0, mod(mac_index=round_ + 2))
            h.submit(1, mod(mac_index=round_ + 2))
            # replica 2 absent from the counted vote every round
        h.sim.run(until=0.05)  # sweeper pops all released entries
        assert len(h.compare.book) == 0
        assert h.alarms(ALARM_ROUTER_UNAVAILABLE) == []

    def test_probation_voters_not_counted_missing(self):
        h = Harness(miss_threshold=1)
        h.compare.quarantine_branch(2, reason="test")
        h.submit(0, mod())
        h.submit(1, mod())
        h.submit(2, mod())  # present, on probation
        h.sim.run(until=0.05)
        assert h.alarms(ALARM_ROUTER_UNAVAILABLE) == []

    def test_evict_oldest_finalise_does_not_alarm_quarantined_branch(self):
        h = Harness(miss_threshold=1)
        h.compare.quarantine_branch(2, reason="test")
        h.submit(0, mod())
        h.submit(1, mod())  # released without replica 2
        for entry in h.compare.book.evict_oldest(1):
            h.compare._finalise(entry)
        assert h.alarms(ALARM_ROUTER_UNAVAILABLE) == []
        # the same eviction for a *non*-quarantined absentee does alarm
        h.compare.readmit_branch(2)
        h.submit(0, mod(mac_index=3))
        h.submit(1, mod(mac_index=3))
        for entry in h.compare.book.evict_oldest(1):
            h.compare._finalise(entry)
        assert [a.branch for a in h.alarms(ALARM_ROUTER_UNAVAILABLE)] == [2]

    def test_flush_finalises_everything(self):
        h = Harness()
        h.submit(0, mod())
        h.submit(1, mod())
        h.submit(0, mod(mac_index=3))  # pending
        h.compare.flush()
        assert len(h.compare.book) == 0
        assert h.compare.stats.expired_released == 1
        assert h.compare.stats.blocked_no_quorum == 1
