"""Tests for the ARP implementation, alone and through a combiner."""

import pytest

from repro.net import ETH_TYPE_ARP, IpAddress, MacAddress, Network
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpPayload, attach_arp
from repro.openflow import Match, OpenFlowSwitch, Output, flood


class TestArpPayload:
    def test_roundtrip(self):
        arp = ArpPayload(
            ARP_REQUEST,
            MacAddress.from_index(1), IpAddress("10.0.0.1"),
            MacAddress(0), IpAddress("10.0.0.2"),
        )
        parsed = ArpPayload.from_bytes(arp.to_bytes())
        assert parsed.op == ARP_REQUEST
        assert parsed.sender_ip == IpAddress("10.0.0.1")
        assert parsed.target_ip == IpAddress("10.0.0.2")

    def test_malformed_rejected(self):
        assert ArpPayload.from_bytes(b"short") is None
        bad = bytearray(
            ArpPayload(
                ARP_REQUEST, MacAddress(0), IpAddress(0), MacAddress(0), IpAddress(0)
            ).to_bytes()
        )
        bad[0] = 9  # wrong hardware type
        assert ArpPayload.from_bytes(bytes(bad)) is None


def lan(n_hosts=3):
    """Hosts on one switch that floods broadcasts and learns nothing."""
    net = Network(seed=19)
    switch = OpenFlowSwitch(net.sim, "s1", trace_bus=net.trace)
    net.add_node(switch)
    hosts = []
    for i in range(n_hosts):
        host = net.add_host(f"h{i+1}")
        net.connect(host, switch)
        hosts.append(host)
    switch.install(Match(dl_dst=MacAddress.BROADCAST), [flood()], priority=20)
    for host in hosts:
        switch.install(
            Match(dl_dst=host.mac),
            [Output(net.port_no_between("s1", host.name))],
            priority=10,
        )
    services = [attach_arp(host) for host in hosts]
    return net, hosts, services


class TestResolution:
    def test_basic_resolution(self):
        net, (h1, h2, _h3), (arp1, arp2, _arp3) = lan()
        results = []
        arp1.resolve(h2.ip, results.append)
        net.run(until=0.01)
        assert results == [h2.mac]
        assert arp1.requests_sent == 1
        assert arp2.replies_sent == 1

    def test_cache_hit_sends_no_request(self):
        net, (h1, h2, _h3), (arp1, _a2, _a3) = lan()
        arp1.resolve(h2.ip, lambda mac: None)
        net.run(until=0.01)
        before = arp1.requests_sent
        results = []
        arp1.resolve(h2.ip, results.append)
        net.run(until=0.02)
        assert results == [h2.mac]
        assert arp1.requests_sent == before

    def test_concurrent_resolutions_share_one_request(self):
        net, (h1, h2, _h3), (arp1, _a2, _a3) = lan()
        results = []
        arp1.resolve(h2.ip, results.append)
        arp1.resolve(h2.ip, results.append)
        net.run(until=0.01)
        assert results == [h2.mac, h2.mac]
        assert arp1.requests_sent == 1

    def test_unanswered_resolution_fails_after_retries(self):
        net, (h1, _h2, _h3), (arp1, _a2, _a3) = lan()
        results = []
        arp1.resolve(IpAddress("10.9.9.9"), results.append)
        net.run(until=0.1)
        assert results == [None]
        assert arp1.requests_sent == arp1.max_retries
        assert arp1.failures == 1

    def test_only_target_replies(self):
        net, (h1, h2, h3), (arp1, arp2, arp3) = lan()
        arp1.resolve(h2.ip, lambda mac: None)
        net.run(until=0.01)
        assert arp2.replies_sent == 1
        assert arp3.replies_sent == 0

    def test_opportunistic_learning_from_requests(self):
        net, (h1, h2, _h3), (arp1, arp2, _a3) = lan()
        arp1.resolve(h2.ip, lambda mac: None)
        net.run(until=0.01)
        # h2 saw h1's request and cached the sender mapping
        assert arp2.lookup(h1.ip) == h1.mac

    def test_cache_expiry(self):
        net, (h1, h2, _h3), (arp1, _a2, _a3) = lan()
        arp1.cache_timeout = 0.005
        arp1.resolve(h2.ip, lambda mac: None)
        net.run(until=0.001)
        assert arp1.lookup(h2.ip) == h2.mac
        net.run(until=0.02)
        assert arp1.lookup(h2.ip) is None

    def test_retry_recovers_from_lost_request(self):
        net, (h1, h2, _h3), (arp1, _a2, _a3) = lan()
        # drop the first broadcast by blocking h2 briefly
        h2.port(1).block_for(1.5e-3)
        results = []
        arp1.resolve(h2.ip, results.append)
        net.run(until=0.05)
        assert results == [h2.mac]
        assert arp1.requests_sent >= 2


class TestArpThroughCombiner:
    def test_broadcast_resolution_across_combiner(self):
        """ARP's broadcasts replicate through the hub and the replies
        win their vote like any other packet."""
        from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain

        net = Network(seed=20)
        chain = build_combiner_chain(
            net, "nc",
            CombinerChainParams(k=3, compare=CompareConfig(k=3, buffer_timeout=2e-3)),
        )
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        net.connect(h1, chain.endpoint_a)
        net.connect(h2, chain.endpoint_b)
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
        # broadcasts need a route through the untrusted routers too
        chain.install_mac_route(MacAddress.BROADCAST, toward="b")

        arp1 = attach_arp(h1)
        attach_arp(h2)
        results = []
        arp1.resolve(h2.ip, results.append)
        net.run(until=0.05)
        assert results == [h2.mac]
        # the reply was voted on: one release, no duplicates delivered
        assert chain.compare_core.stats.released >= 2
