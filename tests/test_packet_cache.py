"""Wire-image cache, copy-on-write and the Packet mutability contract.

The compare element votes on exact packet bytes, so the cached wire
image must never go stale: every adversarial rewrite the repo models
(VLAN moves, MAC retargeting, payload corruption, TTL games) must change
``to_bytes()``/``__hash__`` exactly as a cache-less packet would.  These
tests pin that, plus the documented contract itself: packets hash by
value, so mutating one *after* using it as a dict key is a caller bug,
and mutating a header object shared by copy-on-write raises.
"""

from __future__ import annotations

import pytest

from repro.adversary.modify import dst_mac_rewrite, vlan_rewrite
from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import (
    Ethernet,
    Ipv4,
    Packet,
    PacketError,
    Vlan,
    incremental_checksum_update,
    internet_checksum,
)


def make_packet(payload: bytes = b"hello-netco", vlan: Vlan = None) -> Packet:
    return Packet.udp(
        src_mac=MacAddress.from_index(1),
        dst_mac=MacAddress.from_index(2),
        src_ip=IpAddress.from_index(1),
        dst_ip=IpAddress.from_index(2),
        sport=4000,
        dport=5001,
        payload=payload,
        vlan=vlan,
    )


class TestWireCache:
    def test_to_bytes_is_memoised(self):
        packet = make_packet()
        assert packet.to_bytes() is packet.to_bytes()

    def test_wire_cache_reports_validity(self):
        packet = make_packet()
        assert packet.wire_cache() is None
        wire = packet.to_bytes()
        assert packet.wire_cache() is wire
        packet.ip.ttl = 5
        assert packet.wire_cache() is None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: setattr(p.eth, "src", MacAddress.from_index(9)),
            lambda p: setattr(p.eth, "dst", MacAddress.from_index(9)),
            lambda p: setattr(p.ip, "ttl", 3),
            lambda p: setattr(p.ip, "src", IpAddress.from_index(9)),
            lambda p: setattr(p.l4, "dport", 9999),
            lambda p: setattr(p, "payload", b"tampered"),
            lambda p: setattr(p, "vlan", Vlan(7)),
            lambda p: setattr(p, "eth", Ethernet(MacAddress.from_index(3),
                                                 MacAddress.from_index(4))),
        ],
        ids=["eth.src", "eth.dst", "ip.ttl", "ip.src", "l4.dport",
             "payload", "vlan-attach", "eth-replace"],
    )
    def test_any_mutation_invalidates(self, mutate):
        packet = make_packet()
        before = packet.to_bytes()
        mutate(packet)
        after = packet.to_bytes()
        assert after != before
        assert after == packet._serialise()  # cache agrees with scratch build

    def test_serialisation_matches_scratch_build_when_cached(self):
        packet = make_packet(vlan=Vlan(10, pcp=3))
        assert packet.to_bytes() == packet._serialise()

    def test_wire_len_uses_cache_and_survives_invalidation(self):
        packet = make_packet()
        cold = packet.wire_len
        assert cold == len(packet.to_bytes())
        packet.payload = b"xx" * 300
        assert packet.wire_len == len(packet.to_bytes())


class TestAdversarialRewrites:
    """The rewrites adversary behaviors apply must defeat the cache."""

    def test_vlan_rewrite_changes_bytes_and_hash(self):
        packet = make_packet()
        packet.to_bytes()  # warm
        copy = packet.copy()
        before_hash = hash(copy)
        vlan_rewrite(66)(copy)
        assert copy.to_bytes() != packet.to_bytes()
        assert hash(copy) != before_hash
        parsed = Packet.parse(copy.to_bytes())
        assert parsed.vlan is not None and parsed.vlan.vid == 66

    def test_vlan_vid_rewrite_on_tagged_packet(self):
        packet = make_packet(vlan=Vlan(5))
        packet.to_bytes()
        copy = packet.copy()
        vlan_rewrite(99)(copy)
        assert copy.to_bytes() != packet.to_bytes()
        assert Packet.parse(copy.to_bytes()).vlan.vid == 99
        assert Packet.parse(packet.to_bytes()).vlan.vid == 5

    def test_dst_mac_rewrite_changes_bytes(self):
        packet = make_packet()
        packet.to_bytes()
        copy = packet.copy()
        dst_mac_rewrite(MacAddress.from_index(77))(copy)
        assert copy.to_bytes() != packet.to_bytes()
        assert Packet.parse(copy.to_bytes()).eth.dst == MacAddress.from_index(77)

    def test_payload_corruption_changes_bytes(self):
        packet = make_packet()
        packet.to_bytes()
        copy = packet.copy()
        corrupted = bytearray(copy.payload)
        corrupted[0] ^= 0xFF
        copy.payload = bytes(corrupted)
        assert copy.to_bytes() != packet.to_bytes()
        # The original's cached image is untouched.
        assert Packet.parse(packet.to_bytes()).payload == packet.payload


class TestCopyOnWrite:
    def test_warm_copy_shares_wire_image(self):
        packet = make_packet()
        wire = packet.to_bytes()
        copy = packet.copy()
        assert copy.to_bytes() is wire  # shared, not re-serialised

    def test_cold_copy_is_equal_but_independent(self):
        packet = make_packet()
        copy = packet.copy()
        assert copy == packet
        copy.ip.ttl = 9
        assert copy != packet

    def test_mutating_copy_leaves_original_cache_valid(self):
        packet = make_packet()
        wire = packet.to_bytes()
        copy = packet.copy()
        copy.eth.dst = MacAddress.from_index(42)
        assert packet.to_bytes() is wire
        assert copy.to_bytes() != wire

    def test_mutating_original_leaves_copy_intact(self):
        packet = make_packet()
        packet.to_bytes()
        copy = packet.copy()
        packet.ip.ttl = 2
        assert Packet.parse(copy.to_bytes()).ip.ttl == 64

    def test_read_access_keeps_shared_cache(self):
        packet = make_packet()
        wire = packet.to_bytes()
        copy = packet.copy()
        # Property access materialises a private header but the bytes are
        # unchanged, so the shared wire image must stay valid.
        assert copy.eth.src == packet.fields()[0].src
        assert copy.to_bytes() is wire

    def test_meta_never_survives_copy(self):
        packet = make_packet()
        packet.meta = {"branch": 3}
        copy = packet.copy()
        assert copy.meta is None

    def test_fields_does_not_materialise(self):
        packet = make_packet()
        copy = packet.copy()
        eth, _vlan, ip, _l4, _payload = copy.fields()
        assert eth is packet.fields()[0]  # still the shared object
        assert ip is packet.fields()[2]


class TestMutabilityContract:
    def test_stashed_header_reference_mutation_raises(self):
        packet = make_packet()
        stashed = packet.eth  # reference taken before the copy
        packet.copy()
        with pytest.raises(PacketError):
            stashed.src = MacAddress.from_index(9)

    def test_mutation_through_owner_is_fine_after_copy(self):
        packet = make_packet()
        packet.copy()
        packet.eth.src = MacAddress.from_index(9)  # materialises first
        assert packet.fields()[0].src == MacAddress.from_index(9)

    def test_dict_key_then_mutation_is_a_stale_hash(self):
        """The documented bug: value-hashed mutable keys go stale."""
        packet = make_packet()
        stored_hash = hash(packet)
        table = {packet: "entry"}
        packet.ip.ttl = 7
        # The stored slot used the old hash; the mutated packet hashes
        # differently, so no value-equal key can reach the entry any more.
        # (Lookup by the *same object* is not asserted: CPython's dict
        # probe short-circuits on key identity before comparing stored
        # hashes, so it can still stumble on the slot for some hash
        # seeds.)
        assert hash(packet) != stored_hash
        twin = make_packet()
        twin.ip.ttl = 7
        assert twin == packet
        assert twin not in table

    def test_equality_is_over_bytes(self):
        one = make_packet()
        two = make_packet()
        assert one == two and hash(one) == hash(two)
        two.l4.sport = 4001
        assert one != two


class TestInPlaceRewrites:
    @pytest.mark.parametrize("ttl", [2, 3, 17, 64, 128, 255])
    def test_decrement_ttl_patch_is_bit_identical(self, ttl):
        packet = make_packet()
        packet.ip.ttl = ttl
        packet.to_bytes()  # warm: decrement patches the cached image
        packet.decrement_ttl()
        patched = packet.to_bytes()
        assert patched == packet._serialise()
        parsed = Packet.parse(patched)  # parse re-verifies the IP checksum
        assert parsed.ip.ttl == ttl - 1

    def test_decrement_ttl_cold_still_works(self):
        packet = make_packet()
        packet.decrement_ttl()
        assert Packet.parse(packet.to_bytes()).ip.ttl == 63

    def test_decrement_ttl_tagged_packet(self):
        packet = make_packet(vlan=Vlan(12))
        packet.to_bytes()
        packet.decrement_ttl()
        assert packet.to_bytes() == packet._serialise()

    def test_rewrite_eth_patch_is_bit_identical(self):
        packet = make_packet()
        packet.to_bytes()
        packet.rewrite_eth(src=MacAddress.from_index(7),
                           dst=MacAddress.from_index(8))
        assert packet.to_bytes() == packet._serialise()
        parsed = Packet.parse(packet.to_bytes())
        assert parsed.eth.src == MacAddress.from_index(7)
        assert parsed.eth.dst == MacAddress.from_index(8)

    def test_routed_hop_on_cow_copy_keeps_cache(self):
        """The legacy-router hop: copy, TTL-1, MAC rewrite — one serialise."""
        packet = make_packet()
        packet.to_bytes()
        hop = packet.copy()
        hop.decrement_ttl()
        hop.rewrite_eth(src=MacAddress.from_index(5),
                        dst=MacAddress.from_index(6))
        assert hop.wire_cache() is not None  # never went cold
        assert hop.to_bytes() == hop._serialise()
        assert packet.to_bytes() == packet._serialise()

    def test_decrement_below_zero_raises(self):
        packet = make_packet()
        packet.ip.ttl = 0
        with pytest.raises(PacketError):
            packet.decrement_ttl()


class TestIncrementalChecksum:
    def test_matches_full_recompute_for_all_ttls(self):
        ip = Ipv4(IpAddress.from_index(1), IpAddress.from_index(2), 17)
        for ttl in range(1, 256):
            ip.ttl = ttl
            full = ip.to_bytes(100)
            old_sum = int.from_bytes(full[10:12], "big")
            old_word = int.from_bytes(full[8:10], "big")
            new_word = ((ttl - 1) << 8) | full[9]
            ip.ttl = ttl - 1
            expect = int.from_bytes(ip.to_bytes(100)[10:12], "big")
            assert incremental_checksum_update(old_sum, old_word, new_word) == expect

    def test_checksum_of_patched_header_verifies(self):
        packet = make_packet()
        packet.to_bytes()
        packet.decrement_ttl()
        wire = packet.to_bytes()
        assert internet_checksum(wire[14:34]) == 0  # RFC 1071 self-check
