"""Tests for the coarse-granular (whole-network) combiner."""

import pytest

from repro.adversary import (
    BlackholeBehavior,
    HeaderRewriteBehavior,
    PayloadCorruptionBehavior,
    dst_mac_rewrite,
)
from repro.scenarios.transport import build_transport_scenario
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


class TestConstruction:
    def test_replica_counts(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=4)
        assert combiner.k == 3
        assert combiner.depth == 4
        names = {s.name for chain in combiner.replica_networks for s in chain}
        assert len(names) == 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_transport_scenario(k=0)
        with pytest.raises(ValueError):
            build_transport_scenario(depth=0)

    def test_route_direction_validated(self):
        net, combiner, src, dst = build_transport_scenario()
        with pytest.raises(ValueError):
            combiner.install_mac_route(dst.mac, toward="sideways")


class TestBenign:
    def test_ping_through_replicated_networks(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=1)
        result = run_ping(PathEndpoints(net, src, dst), count=10, interval=1e-3)
        assert result.received == 10
        assert result.duplicates == 0

    def test_udp_no_loss_no_duplicates(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=1)
        result = run_udp_flow(PathEndpoints(net, src, dst), rate_bps=20e6,
                              duration=0.03)
        assert result.loss_rate == 0.0
        assert result.duplicates == 0

    def test_each_replica_carries_a_copy(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=2, seed=1)
        run_ping(PathEndpoints(net, src, dst), count=5, interval=1e-3)
        for branch in range(3):
            # every switch in every replica saw 5 requests + 5 replies
            for hop in range(2):
                assert combiner.switch(branch, hop).stats.forwarded == 10

    def test_depth_one_equals_fine_grained(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=1, seed=1)
        result = run_ping(PathEndpoints(net, src, dst), count=5, interval=1e-3)
        assert result.received == 5


class TestCompromisedReplicaNetwork:
    @pytest.mark.parametrize("hop", [0, 1, 2])
    def test_corruption_at_any_depth_masked(self, hop):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=2)
        PayloadCorruptionBehavior().attach(combiner.switch(1, hop))
        result = run_ping(PathEndpoints(net, src, dst), count=8, interval=1e-3)
        assert result.received == 8, f"tamper at hop {hop} leaked"

    def test_blackhole_deep_inside_replica_masked(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=3)
        BlackholeBehavior().attach(combiner.switch(0, 2))
        result = run_ping(PathEndpoints(net, src, dst), count=8, interval=1e-3)
        assert result.received == 8

    def test_rerouting_inside_replica_masked(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=4)
        HeaderRewriteBehavior(dst_mac_rewrite(src.mac)).attach(
            combiner.switch(2, 1)
        )
        result = run_ping(PathEndpoints(net, src, dst), count=8, interval=1e-3)
        assert result.received == 8

    def test_fully_compromised_replica_network_masked(self):
        # every switch of replica 1 is hostile — still one branch
        net, combiner, src, dst = build_transport_scenario(k=3, depth=3, seed=5)
        for hop in range(3):
            PayloadCorruptionBehavior(flip_offset=hop).attach(
                combiner.switch(1, hop)
            )
        result = run_ping(PathEndpoints(net, src, dst), count=8, interval=1e-3)
        assert result.received == 8

    def test_two_compromised_networks_defeat_k3(self):
        net, combiner, src, dst = build_transport_scenario(k=3, depth=2, seed=6)
        BlackholeBehavior().attach(combiner.switch(0, 0))
        BlackholeBehavior().attach(combiner.switch(1, 1))
        result = run_ping(PathEndpoints(net, src, dst), count=5, interval=1e-3)
        assert result.received == 0
