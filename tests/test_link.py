"""Tests for the duplex link model: delay, serialisation, queueing, loss."""

import pytest

from repro.net import IpAddress, Link, MacAddress, Packet
from repro.net.node import Node, Port
from repro.sim import RngStreams, Simulator, TraceBus

M1, M2 = MacAddress.from_index(1), MacAddress.from_index(2)
IP1, IP2 = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")


class Sink(Node):
    """Records (time, packet) arrivals."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []
        self.add_port(1)

    def receive(self, packet, in_port):
        self.arrivals.append((self.sim.now, packet))


def make_pair(sim, **link_kwargs):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.port(1), b.port(1), rng_streams=RngStreams(1), **link_kwargs)
    return a, b, link


def packet(size=100):
    pad = max(0, size - 42)
    return Packet.udp(M1, M2, IP1, IP2, 1, 2, payload=b"\x00" * pad)


class TestDelivery:
    def test_infinite_rate_zero_delay_delivers_immediately(self):
        sim = Simulator()
        a, b, _link = make_pair(sim)
        a.port(1).send(packet())
        sim.run()
        assert len(b.arrivals) == 1
        assert b.arrivals[0][0] == 0.0

    def test_propagation_delay(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, delay=1e-3)
        a.port(1).send(packet())
        sim.run()
        assert b.arrivals[0][0] == pytest.approx(1e-3)

    def test_serialisation_time(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, rate_bps=1e6)  # 1 Mbit/s
        pkt = packet(size=125)  # 1000 bits -> 1 ms
        a.port(1).send(pkt)
        sim.run()
        assert b.arrivals[0][0] == pytest.approx(pkt.wire_len * 8 / 1e6)

    def test_back_to_back_packets_serialise_sequentially(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, rate_bps=1e6)
        pkt = packet(size=125)
        ser = pkt.wire_len * 8 / 1e6
        a.port(1).send(pkt)
        a.port(1).send(packet(size=125))
        sim.run()
        times = [t for t, _ in b.arrivals]
        assert times == pytest.approx([ser, 2 * ser])

    def test_duplex_directions_are_independent(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, rate_bps=1e6)
        a.port(1).send(packet(size=125))
        b.port(1).send(packet(size=125))
        sim.run()
        # both arrive at the single-direction serialisation time
        assert a.arrivals[0][0] == pytest.approx(b.arrivals[0][0])

    def test_bidirectional_delivery(self):
        sim = Simulator()
        a, b, _ = make_pair(sim)
        b.port(1).send(packet())
        sim.run()
        assert len(a.arrivals) == 1


class TestQueueing:
    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, b, link = make_pair(sim, rate_bps=1e6, queue_capacity=3)
        for _ in range(10):
            a.port(1).send(packet(size=125))
        sim.run()
        assert len(b.arrivals) == 3
        stats = link.direction_stats(a.port(1))
        assert stats.queue_drops == 7
        assert stats.delivered_packets == 3

    def test_queue_drains_over_time(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, rate_bps=1e6, queue_capacity=2)
        pkt = packet(size=125)
        ser = pkt.wire_len * 8 / 1e6
        a.port(1).send(packet(size=125))
        sim.schedule(ser * 1.5, lambda: a.port(1).send(packet(size=125)))
        sim.run()
        assert len(b.arrivals) == 2

    def test_invalid_queue_capacity(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a.port(1), b.port(1), queue_capacity=0)


class TestLoss:
    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        a, b, _ = make_pair(sim, loss=0.0)
        for _ in range(50):
            a.port(1).send(packet())
        sim.run()
        assert len(b.arrivals) == 50

    def test_loss_rate_is_approximate(self):
        sim = Simulator()
        a, b, link = make_pair(sim, loss=0.3, queue_capacity=4000)
        for _ in range(2000):
            a.port(1).send(packet())
        sim.run()
        delivered = len(b.arrivals)
        assert 1200 < delivered < 1600  # ~70% of 2000
        assert link.direction_stats(a.port(1)).loss_drops == 2000 - delivered

    def test_loss_is_reproducible_across_runs(self):
        def run_once():
            sim = Simulator()
            a, b, _ = make_pair(sim, loss=0.5)
            for _ in range(100):
                a.port(1).send(packet())
            sim.run()
            return len(b.arrivals)

        assert run_once() == run_once()

    def test_invalid_loss_rejected(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a.port(1), b.port(1), loss=1.0)


class TestWiring:
    def test_peer_of(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        assert link.peer_of(a.port(1)) is b.port(1)
        assert link.peer_of(b.port(1)) is a.port(1)

    def test_peer_of_foreign_port_rejected(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        c = Sink(sim, "c")
        with pytest.raises(ValueError):
            link.peer_of(c.port(1))

    def test_stats_counters(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        pkt = packet()
        a.port(1).send(pkt)
        sim.run()
        stats = link.direction_stats(a.port(1))
        assert stats.tx_packets == 1
        assert stats.tx_bytes == pkt.wire_len
        assert stats.delivered_bytes == pkt.wire_len

    def test_drop_trace_emitted(self):
        sim = Simulator()
        bus = TraceBus()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(
            sim, a.port(1), b.port(1), rate_bps=1e3, queue_capacity=1,
            trace_bus=bus, rng_streams=RngStreams(1),
        )
        a.port(1).send(packet())
        a.port(1).send(packet())
        sim.run()
        assert bus.count("link.drop") == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a.port(1), b.port(1), delay=-1.0)
