"""Tests for the compare element: release, timeouts, DoS mitigation,
liveness alarms, cache cleanup and processing model."""

import pytest

from repro.core import (
    ALARM_DOS_SUSPECTED,
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
    ALARM_SINGLE_SOURCE_PACKET,
    CompareConfig,
    CompareContext,
    CompareCore,
)
from repro.net import IpAddress, MacAddress, Packet
from repro.sim import Simulator


def pkt(ident=0, payload=b"x"):
    return Packet.udp(
        MacAddress.from_index(1), MacAddress.from_index(2),
        IpAddress.from_index(1), IpAddress.from_index(2),
        1, 2, payload=payload, ident=ident,
    )


class Harness:
    """A compare plus a recording context."""

    def __init__(self, **config_kwargs):
        self.sim = Simulator()
        config_kwargs.setdefault("k", 3)
        config_kwargs.setdefault("buffer_timeout", 0.01)
        self.core = CompareCore(self.sim, CompareConfig(**config_kwargs))
        self.released = []
        self.blocked = []
        self.context = CompareContext(
            scope="s",
            release=self.released.append,
            block_branch=lambda branch, dur: self.blocked.append((branch, dur)),
        )

    def submit(self, packet, branch, claim=None):
        self.core.submit(packet, branch, self.context, claim=claim)


class TestRelease:
    def test_majority_releases_exactly_one_copy(self):
        h = Harness()
        p = pkt()
        for branch in range(3):
            h.submit(p.copy(), branch)
        h.sim.run(until=0.001)
        assert len(h.released) == 1
        assert h.core.stats.released == 1
        assert h.core.stats.late_copies == 1

    def test_released_packet_is_first_copy(self):
        h = Harness()
        first = pkt()
        h.submit(first, 0)
        h.submit(pkt(), 1)
        h.sim.run(until=0.001)
        assert h.released[0] is first

    def test_two_copies_suffice_for_k3(self):
        h = Harness()
        h.submit(pkt(), 0)
        h.submit(pkt(), 2)
        h.sim.run(until=0.001)
        assert len(h.released) == 1

    def test_single_copy_never_released(self):
        h = Harness()
        h.submit(pkt(), 1)
        h.sim.run(until=0.05)
        assert h.released == []
        assert h.core.stats.expired_unreleased == 1

    def test_k5_needs_three(self):
        h = Harness(k=5)
        h.submit(pkt(), 0)
        h.submit(pkt(), 1)
        h.sim.run(until=0.001)
        assert h.released == []
        h.submit(pkt(), 2)
        h.sim.run(until=0.002)
        assert len(h.released) == 1

    def test_explicit_quorum_override(self):
        h = Harness(k=3, quorum=3)
        h.submit(pkt(), 0)
        h.submit(pkt(), 1)
        h.sim.run(until=0.001)
        assert h.released == []

    def test_different_packets_do_not_vote_together(self):
        h = Harness()
        h.submit(pkt(ident=1), 0)
        h.submit(pkt(ident=2), 1)
        h.sim.run(until=0.001)
        assert h.released == []

    def test_tampered_copy_votes_separately(self):
        h = Harness()
        h.submit(pkt(payload=b"good"), 0)
        h.submit(pkt(payload=b"good"), 1)
        h.submit(pkt(payload=b"evil"), 2)
        h.sim.run(until=0.001)
        assert len(h.released) == 1
        assert h.released[0].payload == b"good"

    def test_scopes_are_isolated(self):
        h = Harness()
        other_released = []
        other = CompareContext("t", other_released.append)
        h.core.submit(pkt(), 0, h.context)
        h.core.submit(pkt(), 1, other)
        h.sim.run(until=0.001)
        assert h.released == [] and other_released == []

    def test_claims_are_part_of_the_vote(self):
        # two branches agree on bytes but disagree on the egress port:
        # no majority for either decision
        h = Harness()
        h.submit(pkt(), 0, claim=1)
        h.submit(pkt(), 1, claim=2)
        h.sim.run(until=0.001)
        assert h.released == []
        h.submit(pkt(), 2, claim=1)
        h.sim.run(until=0.002)
        assert len(h.released) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompareConfig(k=0).validate()
        with pytest.raises(ValueError):
            CompareConfig(k=3, quorum=4).validate()
        with pytest.raises(ValueError):
            CompareConfig(buffer_timeout=0).validate()


class TestTimeoutsAndAlarms:
    def test_single_source_alarm_on_expiry(self):
        h = Harness()
        h.submit(pkt(), 2)
        h.sim.run(until=0.05)
        alarms = h.core.alarms.of_kind(ALARM_SINGLE_SOURCE_PACKET)
        assert len(alarms) == 1
        assert alarms[0].branch == 2

    def test_no_alarm_for_two_branch_expiry(self):
        h = Harness(k=5)  # quorum 3
        h.submit(pkt(), 0)
        h.submit(pkt(), 1)
        h.sim.run(until=0.05)
        assert h.core.alarms.count(ALARM_SINGLE_SOURCE_PACKET) == 0
        assert h.core.stats.expired_unreleased == 1

    def test_router_unavailable_alarm_after_consecutive_misses(self):
        h = Harness(miss_threshold=5)
        for i in range(5):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)  # branch 2 never delivers
        h.sim.run(until=0.1)
        alarms = h.core.alarms.of_kind(ALARM_ROUTER_UNAVAILABLE)
        assert len(alarms) == 1
        assert alarms[0].branch == 2

    def test_miss_counter_resets_on_recovery(self):
        h = Harness(miss_threshold=5)
        for i in range(4):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)
        h.submit(pkt(ident=99), 0)
        h.submit(pkt(ident=99), 1)
        h.submit(pkt(ident=99), 2)  # branch 2 recovers
        h.sim.run(until=0.1)
        for i in range(4):
            h.submit(pkt(ident=100 + i), 0)
            h.submit(pkt(ident=100 + i), 1)
        h.sim.run(until=0.2)
        assert h.core.alarms.count(ALARM_ROUTER_UNAVAILABLE) == 0

    def test_stale_outage_entries_cannot_realarm_after_recovery(self):
        """Regression: outage-era entries finalise *after* the branch has
        healed (their deadline falls past the first clean vote).  Those
        stale misses must not count toward the threshold, or a healthy
        router gets alarmed on outdated evidence."""
        h = Harness(miss_threshold=5, buffer_timeout=0.01)
        # Outage: five entries at t=0 that branch 2 never delivers.
        # They finalise at t=0.01 — after the recovery below.
        for i in range(5):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)

        def heal():
            for i in range(100, 103):
                for branch in range(3):
                    h.submit(pkt(ident=i), branch)

        h.sim.schedule_at(0.005, heal)
        h.sim.run(until=0.05)
        assert h.core.alarms.count(ALARM_ROUTER_UNAVAILABLE) == 0

    def test_unavailable_alarm_not_repeated(self):
        h = Harness(miss_threshold=3)
        for i in range(10):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)
        h.sim.run(until=0.2)
        assert h.core.alarms.count(ALARM_ROUTER_UNAVAILABLE) == 1

    def test_flush_finalises_everything(self):
        h = Harness()
        h.submit(pkt(), 0)
        h.sim.run(until=0.001)
        h.core.flush()
        assert h.core.stats.expired_unreleased == 1
        assert len(h.core.book) == 0


class TestDosMitigation:
    def test_duplicate_flood_triggers_block(self):
        h = Harness(dup_threshold=4, block_duration=0.5)
        flood_packet = pkt()
        h.submit(flood_packet.copy(), 1)
        for _ in range(4):
            h.submit(flood_packet.copy(), 1)
        h.sim.run(until=0.001)
        assert h.blocked == [(1, 0.5)]
        assert h.core.alarms.count(ALARM_DOS_SUSPECTED) == 1

    def test_block_not_reissued_while_active(self):
        h = Harness(dup_threshold=2, block_duration=1.0)
        flood_packet = pkt()
        h.submit(flood_packet.copy(), 1)
        for _ in range(10):
            h.submit(flood_packet.copy(), 1)
        h.sim.run(until=0.001)
        assert len(h.blocked) == 1

    def test_benign_traffic_does_not_trigger_block(self):
        h = Harness(dup_threshold=3)
        for i in range(20):
            for branch in range(3):
                h.submit(pkt(ident=i), branch)
        h.sim.run(until=0.1)
        assert h.blocked == []

    def test_crafted_unique_flood_triggers_block(self):
        h = Harness(craft_threshold=10)
        for i in range(12):
            h.submit(pkt(ident=1000 + i), 2)  # unique junk from branch 2
        h.sim.run(until=0.1)
        assert h.core.stats.blocks_issued >= 1


class TestProcessingModel:
    def test_proc_time_delays_release(self):
        h = Harness(proc_time=1e-3)
        h.submit(pkt(), 0)
        h.submit(pkt(), 1)
        h.sim.run(until=0.01)
        # two copies served sequentially: release at ~2ms
        assert h.core.stats.released == 1
        assert h.sim.now >= 2e-3

    def test_queue_bound_drops_copies(self):
        h = Harness(proc_time=1e-3, service_queue_capacity=2, buffer_timeout=1.0)
        for i in range(10):
            h.submit(pkt(ident=i), 0)
        h.sim.run(until=0.001)
        assert h.core.stats.queue_drops == 8

    def test_cleanup_runs_when_cache_full(self):
        h = Harness(cache_capacity=4, buffer_timeout=100.0)
        for i in range(10):
            h.submit(pkt(ident=i), 0)
        h.sim.run(until=0.001)
        assert h.core.stats.cleanups >= 1
        assert h.core.stats.evicted > 0

    def test_cleanup_prefers_expired_entries(self):
        h = Harness(cache_capacity=4, buffer_timeout=0.001)
        for i in range(4):
            h.submit(pkt(ident=i), 0)
        h.sim.run(until=0.002)

        def late():
            for i in range(4, 6):
                h.submit(pkt(ident=i), 0)

        h.sim.schedule(0.001, late)
        h.sim.run(until=0.01)
        # old entries were expired, not force-evicted
        assert h.core.stats.evicted == 0

    def test_cleanup_stall_time_accounted(self):
        h = Harness(cache_capacity=2, buffer_timeout=100.0, cleanup_duration=5e-4)
        for i in range(6):
            h.submit(pkt(ident=i), 0)
        h.sim.run(until=0.01)
        assert h.core.stats.cleanup_stall_time >= 5e-4

    def test_sweeper_stops_when_idle(self):
        h = Harness()
        h.submit(pkt(), 0)
        h.sim.run()  # runs to completion only if the sweeper stops itself
        assert h.core.stats.expired_unreleased == 1


class TestEvictionWithQuarantine:
    """Entries leaving the cache via expiry or eviction must not count a
    quarantined branch as missing: its absence from the quorum is the
    *expected* consequence of quarantine, not a fresh outage."""

    def test_expired_entries_do_not_alarm_quarantined_branch(self):
        h = Harness(miss_threshold=1)
        assert h.core.quarantine_branch(2, reason="divergence")
        for i in range(4):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)  # released without branch 2
        h.sim.run(until=0.05)  # sweeper expires every tombstone
        assert len(h.core.book) == 0
        kinds = [a.kind for a in h.core.alarms.alarms]
        assert ALARM_ROUTER_UNAVAILABLE not in kinds

    def test_evicted_entries_do_not_alarm_quarantined_branch(self):
        # Cache pressure forces evict_oldest long before the deadline;
        # the finalise pass must apply the same quarantine exemption.
        h = Harness(miss_threshold=1, cache_capacity=2, buffer_timeout=100.0)
        assert h.core.quarantine_branch(2, reason="divergence")
        for i in range(6):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)
        h.sim.run(until=0.01)
        assert h.core.stats.evicted > 0
        kinds = [a.kind for a in h.core.alarms.alarms]
        assert ALARM_ROUTER_UNAVAILABLE not in kinds

    def test_evicted_entries_still_alarm_honest_absentee(self):
        # Same cache pressure, no quarantine: the absence is a real
        # outage signal and the eviction path must still count it.
        h = Harness(miss_threshold=1, cache_capacity=2, buffer_timeout=100.0)
        for i in range(6):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)
        h.sim.run(until=0.01)
        assert h.core.stats.evicted > 0
        unavailable = [
            a for a in h.core.alarms.alarms if a.kind == ALARM_ROUTER_UNAVAILABLE
        ]
        assert [a.branch for a in unavailable] == [2]

    def test_evicted_probation_copies_keep_their_credit(self):
        # A clean probation copy confirmed by a released majority counts
        # toward re-admission even when the entry leaves by eviction.
        h = Harness(
            miss_threshold=1,
            cache_capacity=2,
            buffer_timeout=100.0,
            probation_clean_target=4,
        )
        assert h.core.quarantine_branch(2, reason="divergence")
        for i in range(6):
            h.submit(pkt(ident=i), 0)
            h.submit(pkt(ident=i), 1)
            h.submit(pkt(ident=i), 2)  # clean probation copies
        h.sim.run(until=0.01)
        assert h.core.stats.readmissions == 1
        assert not h.core.is_quarantined(2)


class TestMinorityDivergence:
    """The per-branch divergence counter: a silent colluding minority is
    surfaced (alarm) without changing the vote."""

    def test_colluding_minority_alarms_without_changing_vote(self):
        # k=5: branches 3 and 4 deliver identical *altered* copies of
        # every packet.  Two identical copies never trip the
        # single-source alarm, and the honest majority still releases —
        # but the divergence counter accumulates and latches the alarm.
        h = Harness(k=5, divergence_threshold=4)
        for i in range(6):
            good, evil = pkt(ident=i, payload=b"good"), pkt(ident=i, payload=b"evil")
            for branch in (0, 1, 2):
                h.submit(good.copy(), branch)
            for branch in (3, 4):
                h.submit(evil.copy(), branch)
        h.sim.run(until=1.0)
        assert len(h.released) == 6  # the vote is unchanged
        assert all(p.payload == b"good" for p in h.released)
        diverging = sorted(
            a.branch for a in h.core.alarms.alarms
            if a.kind == ALARM_MINORITY_DIVERGENCE
        )
        assert diverging == [3, 4]
        assert h.core.stats.divergent_copies == 12
        assert h.core.stats.divergence_alarms == 2

    def test_alarm_latches_once_per_branch(self):
        h = Harness(k=3, divergence_threshold=2)
        for i in range(8):
            h.submit(pkt(ident=i, payload=b"good"), 0)
            h.submit(pkt(ident=i, payload=b"good"), 1)
            h.submit(pkt(ident=i, payload=b"evil"), 2)
        h.sim.run(until=1.0)
        alarms = [
            a for a in h.core.alarms.alarms
            if a.kind == ALARM_MINORITY_DIVERGENCE
        ]
        assert len(alarms) == 1
        assert alarms[0].branch == 2
        assert alarms[0].details["divergent_entries"] == 2

    def test_honest_branches_never_counted(self):
        h = Harness(k=3, divergence_threshold=1)
        for i in range(4):
            for branch in range(3):
                h.submit(pkt(ident=i), branch)
        h.sim.run(until=1.0)
        assert h.core.stats.divergent_copies == 0
        assert not [
            a for a in h.core.alarms.alarms
            if a.kind == ALARM_MINORITY_DIVERGENCE
        ]

    def test_readmission_resets_divergence_history(self):
        h = Harness(k=3, divergence_threshold=3, probation_clean_target=2)
        # two divergent entries for branch 2 (below the threshold)...
        for i in range(2):
            h.submit(pkt(ident=i, payload=b"good"), 0)
            h.submit(pkt(ident=i, payload=b"good"), 1)
            h.submit(pkt(ident=i, payload=b"evil"), 2)
        h.sim.run(until=0.05)
        assert h.core.stats.divergent_copies == 2
        # ... then quarantine, serve probation, readmit: history resets
        assert h.core.quarantine_branch(2, reason="operator")
        for i in range(10, 14):
            for branch in range(3):
                h.submit(pkt(ident=i), branch)
        h.sim.run(until=0.1)
        assert not h.core.is_quarantined(2)
        # two more divergent entries stay below the threshold again
        for i in range(20, 22):
            h.submit(pkt(ident=i, payload=b"good"), 0)
            h.submit(pkt(ident=i, payload=b"good"), 1)
            h.submit(pkt(ident=i, payload=b"evil"), 2)
        h.sim.run(until=0.2)
        assert not [
            a for a in h.core.alarms.alarms
            if a.kind == ALARM_MINORITY_DIVERGENCE
        ]

    def test_divergence_threshold_validated(self):
        with pytest.raises(ValueError):
            CompareConfig(divergence_threshold=0).validate()
