"""Tests for the observability stack: metrics, spans, run reports."""

import json

import pytest

from repro.net.packet import Packet
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NULL_INSTRUMENT,
    active_registry,
    use_registry,
)
from repro.obs.report import (
    DEFAULT_WATCHES,
    RunReport,
    WatchRule,
    collect_network,
    diff_reports,
    dump_records_jsonl,
    sanitise_value,
)
from repro.obs.spans import PacketTracer
from repro.sim import Simulator, TraceBus


def _packet(payload=b"x"):
    from repro.net.addresses import IpAddress, MacAddress

    return Packet.udp(
        src_mac=MacAddress.from_index(1),
        dst_mac=MacAddress.from_index(2),
        src_ip=IpAddress.from_index(1),
        dst_ip=IpAddress.from_index(2),
        sport=1000,
        dport=2000,
        payload=payload,
    )


class TestMetricsRegistry:
    def test_counter_inc_and_sample(self):
        reg = MetricsRegistry()
        c = reg.counter("pkts_total", "packets", labelnames=("link",))
        c.labels("a").inc()
        c.labels("a").inc(2)
        c.labels("b").inc()
        samples = reg.samples()
        assert samples['pkts_total{link="a"}'] == 3
        assert samples['pkts_total{link="b"}'] == 1

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("x_total").inc(-1)

    def test_gauge_set_inc_dec_and_pull(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert reg.samples()["depth"] == 4
        g.set_function(lambda: 42.0)
        assert reg.samples()["depth"] == 42

    def test_histogram_observe_and_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        sample = reg.samples()["lat_seconds"]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(6.5)
        solo = reg.histogram("lat_seconds")._solo()
        assert solo.quantile(0.5) == 2.0
        assert solo.quantile(1.0) == 4.0

    def test_labels_by_keyword(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("a", "b"))
        c.labels(b="2", a="1").inc()
        assert reg.samples()['x_total{a="1",b="2"}'] == 1

    def test_label_arity_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", labelnames=("a",))
        with pytest.raises(MetricsError):
            c.labels("1", "2")

    def test_reregistration_same_shape_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("l",))
        b = reg.counter("x_total", labelnames=("l",))
        assert a is b

    def test_reregistration_conflicting_shape_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("l",))
        with pytest.raises(MetricsError):
            reg.gauge("x_total", labelnames=("l",))
        with pytest.raises(MetricsError):
            reg.counter("x_total", labelnames=("other",))

    def test_unlabelled_family_requires_no_labels_call(self):
        reg = MetricsRegistry()
        reg.counter("plain_total").inc(7)
        assert reg.samples()["plain_total"] == 7

    def test_disabled_registry_hands_out_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total", labelnames=("l",))
        assert c is NULL_INSTRUMENT
        # every op is a silent no-op, labels() chains to itself
        c.labels("a").inc()
        c.observe(1.0)
        c.set(3)
        assert reg.samples() == {}

    def test_samples_with_extra_labels_merge_sorted(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("link",)).labels("l1").inc()
        samples = reg.samples({"scenario": "central3"})
        assert samples == {'x_total{link="l1",scenario="central3"}': 1}

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help text", labelnames=("l",)).labels("a").inc(2)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP x_total help text" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{l="a"} 2' in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_use_registry_restores_previous(self):
        before = active_registry()
        mine = MetricsRegistry()
        with use_registry(mine) as got:
            assert got is mine
            assert active_registry() is mine
        assert active_registry() is before

    def test_default_active_registry_is_disabled(self):
        assert active_registry().enabled is False

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestPacketTraceId:
    def test_trace_id_defaults_to_none(self):
        assert _packet().trace_id is None

    def test_trace_id_survives_copy(self):
        p = _packet()
        p.trace_id = 17
        q = p.copy()
        assert q.trace_id == 17
        assert q.meta is None  # meta still does NOT survive copy


class TestPacketTracer:
    def test_mark_assigns_incrementing_ids_and_emits_inject(self):
        bus = TraceBus()
        tracer = PacketTracer(bus)
        a, b = _packet(), _packet()
        assert tracer.mark(a, 0.0, "h1") == 1
        assert tracer.mark(b, 1.0, "h1") == 2
        assert tracer.marked == 2
        inject = bus.select(topic="span.inject")
        assert [r.data["trace"] for r in inject] == [1, 2]
        assert tracer.trajectory(1)[0].topic == "span.inject"

    def test_sample_rate_zero_marks_nothing(self):
        bus = TraceBus()
        tracer = PacketTracer(bus, sample_rate=0.0)
        assert tracer.mark(_packet(), 0.0, "h1") is None
        assert tracer.sampled_out == 1
        assert tracer.marked == 0

    def test_sampling_uses_rng_deterministically(self):
        import random

        bus = TraceBus()
        tracer = PacketTracer(bus, sample_rate=0.5, rng=random.Random(7))
        decisions = [tracer.mark(_packet(), 0.0, "h") is not None for _ in range(20)]
        bus2 = TraceBus()
        tracer2 = PacketTracer(bus2, sample_rate=0.5, rng=random.Random(7))
        decisions2 = [tracer2.mark(_packet(), 0.0, "h") is not None for _ in range(20)]
        assert decisions == decisions2
        assert 0 < tracer.marked < 20

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            PacketTracer(TraceBus(), sample_rate=1.5)

    def test_records_with_packet_payload_are_indexed(self):
        bus = TraceBus()
        tracer = PacketTracer(bus)
        p = _packet()
        tracer.mark(p, 0.0, "h1")
        bus.emit(1.0, "link.drop", "l1", reason="queue", packet=p)
        drops = tracer.drops()
        assert len(drops) == 1
        assert drops[0].topic == "link.drop"

    def test_unmarked_packets_are_not_indexed(self):
        bus = TraceBus()
        tracer = PacketTracer(bus)
        bus.emit(0.0, "link.drop", "l1", packet=_packet())
        bus.emit(0.0, "link.tx", "l1", queue_depth=1)
        assert tracer.trace_ids() == []
        assert tracer.events == 0

    def test_max_traces_overflow_counts(self):
        bus = TraceBus()
        tracer = PacketTracer(bus, max_traces=1)
        tracer.mark(_packet(), 0.0, "h")
        bus.emit(0.0, "span.hop", "n", trace=999)  # second trajectory
        assert tracer.overflow_events == 1
        assert tracer.trace_ids() == [1]

    def test_detach_stops_indexing(self):
        bus = TraceBus()
        tracer = PacketTracer(bus)
        tracer.mark(_packet(), 0.0, "h")
        tracer.detach()
        bus.emit(1.0, "span.hop", "n", trace=1)
        assert len(tracer.trajectory(1)) == 1  # only the inject record

    def test_clear_resets_counters_and_spans(self):
        bus = TraceBus()
        tracer = PacketTracer(bus)
        tracer.mark(_packet(), 0.0, "h")
        tracer.clear()
        assert tracer.trace_ids() == []
        assert tracer.marked == 0
        assert tracer.stats()["events"] == 0


class TestEndToEndTracing:
    def test_central3_trajectory_covers_duplication_vote_and_delivery(self):
        from repro.scenarios.testbed import build_testbed
        from repro.traffic.iperf import run_udp_flow

        tb = build_testbed("central3", seed=3)
        tracer = PacketTracer(tb.network.trace)
        tracer.attach(tb.network)
        result = run_udp_flow(tb.path(), rate_bps=50e6, duration=2e-3,
                              send_cost=tb.params.udp_send_cost)
        tb.compare_core.flush()
        assert result.received_unique > 0
        assert tracer.marked >= result.sent  # every datagram marked
        tid = tracer.trace_ids()[0]
        topics = {r.topic for r in tracer.trajectory(tid)}
        assert "span.inject" in topics
        assert "span.hop" in topics
        assert "compare.vote" in topics
        # the released copy reaches h2: its delivery hop is in the trail
        assert "h2" in tracer.hop_sources(tid)
        # k=3 voting: at least 2 vote events for a released packet
        votes = [r for r in tracer.trajectory(tid) if r.topic == "compare.vote"]
        assert len(votes) >= 2

    def test_endpoint_fanout_copies_stay_in_one_trajectory(self):
        from repro.scenarios.testbed import build_testbed
        from repro.traffic.iperf import run_ping

        tb = build_testbed("dup3", seed=3)
        tracer = PacketTracer(tb.network.trace)
        tracer.attach(tb.network)
        run_ping(tb.path(), count=1, interval=1e-3)
        tid = tracer.trace_ids()[0]
        dups = [r for r in tracer.trajectory(tid) if r.topic == "endpoint.dup"]
        assert dups and dups[0].data["fanout"] == 3
        # all three copies' hops are attributed to the same trace id
        hop_sources = tracer.hop_sources(tid)
        assert len([s for s in hop_sources if s.startswith("nc_r")]) >= 3

    def test_bare_hub_emits_dup_span_for_traced_packets(self):
        from repro.core.hub import Hub
        from repro.net import Network

        net = Network(seed=11)
        hub = net.add_node(Hub(net.sim, "hub", trace_bus=net.trace))
        h_up = net.add_host("up")
        downs = [net.add_host(f"d{i}") for i in range(3)]
        net.connect(h_up, hub, port_b=1)  # port 1 is the hub's upstream
        for host in downs:
            net.connect(hub, host)
        tracer = PacketTracer(net.trace)
        tracer.attach(net)
        h_up.send(Packet.udp(h_up.mac, downs[0].mac, h_up.ip, downs[0].ip, 1, 2))
        net.run()
        tid = tracer.trace_ids()[0]
        dups = [r for r in tracer.trajectory(tid) if r.topic == "hub.dup"]
        assert dups and dups[0].data["fanout"] == 3


class TestCollectAndReport:
    def _mini_run(self):
        from repro.obs.summary import run_instrumented_scenario

        return run_instrumented_scenario("central3", duration=2e-3, seed=5)

    def test_collect_network_pulls_component_counters(self):
        run = self._mini_run()
        samples = run.registry.samples()
        assert any(k.startswith("link_tx_packets_total") for k in samples)
        assert any(k.startswith("flowtable_lookups_total") for k in samples)
        assert any(k.startswith("compare_released_total") for k in samples)
        assert samples["sim_events_processed_total"] > 0
        assert samples["sim_pending_events_peak"] > 0
        # push histograms bound at construction observed real releases
        released = [v for k, v in samples.items()
                    if k.startswith("compare_release_latency_seconds")]
        assert released and released[0]["count"] > 0

    def test_report_roundtrip(self, tmp_path):
        report = RunReport(
            name="t", meta={"seed": 1},
            metrics={"a_total": 3, "h": {"count": 2, "sum": 0.5, "buckets": {}}},
            records=[{"scenario": "x"}], spans={"x": {"marked": 1}},
        )
        path = tmp_path / "r.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.counter_value("a_total") == 3
        assert loaded.counter_value("h") == 2  # histogram -> count
        assert loaded.counter_value("missing") == 0

    def test_report_rejects_newer_version(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"version": 999})

    def test_summary_report_is_deterministic(self):
        from repro.obs.summary import build_run_report

        kwargs = dict(scenarios=("central3",), duration=2e-3, seed=9)
        a, _ = build_run_report(**kwargs)
        b, _ = build_run_report(**kwargs)
        assert a.metrics == b.metrics
        assert a.records == b.records
        assert a.spans == b.spans


class TestDiff:
    def _report(self, **metrics):
        return RunReport(name="r", metrics=metrics)

    def test_watch_breach_requires_both_ratio_and_increase(self):
        rule = WatchRule("x*", max_ratio=1.5, max_increase=10.0)
        assert not rule.breached(100, 140)  # ratio ok
        assert not rule.breached(2, 9)      # ratio breached, increase ok
        assert rule.breached(100, 200)

    def test_diff_flags_breached_counters(self):
        base = self._report(**{'link_queue_drops_total{link="a"}': 0.0})
        new = self._report(**{'link_queue_drops_total{link="a"}': 100.0})
        findings = diff_reports(base, new)
        assert len(findings) == 1
        assert findings[0].breached
        assert "FAIL" in findings[0].describe()

    def test_diff_ignores_unwatched_keys(self):
        base = self._report(unwatched_total=0.0)
        new = self._report(unwatched_total=1e9)
        assert diff_reports(base, new) == []

    def test_diff_within_thresholds_passes(self):
        base = self._report(**{'flowtable_scan_steps_total{switch="s"}': 1000.0})
        new = self._report(**{'flowtable_scan_steps_total{switch="s"}': 1040.0})
        findings = diff_reports(base, new)
        assert findings and not findings[0].breached

    def test_first_matching_watch_wins(self):
        rules = [WatchRule("a*", max_ratio=10.0, max_increase=1e9),
                 WatchRule("*", max_ratio=1.0, max_increase=0.0)]
        base = self._report(a_total=1.0)
        new = self._report(a_total=5.0)
        findings = diff_reports(base, new, rules)
        assert not findings[0].breached  # matched the lenient rule first

    def test_default_watches_cover_flowtable_scans(self):
        patterns = [w.pattern for w in DEFAULT_WATCHES]
        assert any(p.startswith("flowtable_scan_steps") for p in patterns)


class TestJsonlDump:
    def test_sanitise_packet_and_nested(self):
        p = _packet()
        assert isinstance(sanitise_value(p), str)
        assert sanitise_value({"k": [p, 1, None]})["k"][1] == 1

    def test_dump_records_jsonl(self, tmp_path):
        bus = TraceBus()
        bus.emit(0.5, "link.drop", "l1", reason="queue", packet=_packet())
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            count = dump_records_jsonl(bus.records, fh)
        assert count == 1
        line = json.loads(path.read_text().strip())
        assert line["topic"] == "link.drop"
        assert line["data"]["reason"] == "queue"
        assert isinstance(line["data"]["packet"], str)


class TestObsCli:
    def test_summary_writes_report_and_prometheus(self, tmp_path, capsys):
        from repro.obs.cli import obs_main

        report_path = tmp_path / "r.json"
        prom_path = tmp_path / "p.txt"
        rc = obs_main([
            "summary", "--quick", "--duration", "0.002",
            "--report", str(report_path), "--prometheus", str(prom_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link_tx_packets_total" in out
        assert "compare_" in out
        report = RunReport.load(report_path)
        assert report.records
        assert "# TYPE" in prom_path.read_text()

    def test_diff_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import obs_main

        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        RunReport(name="a", metrics={'link_queue_drops_total{link="x"}': 0.0}).save(base)
        RunReport(name="b", metrics={'link_queue_drops_total{link="x"}': 0.0}).save(new)
        assert obs_main(["diff", str(base), str(new)]) == 0
        RunReport(name="b", metrics={'link_queue_drops_total{link="x"}': 500.0}).save(new)
        assert obs_main(["diff", str(base), str(new)]) == 1
        assert "BREACHED" in capsys.readouterr().out

    def test_diff_custom_watch_file(self, tmp_path):
        from repro.obs.cli import obs_main

        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        watch = tmp_path / "w.json"
        RunReport(name="a", metrics={"my_total": 1.0}).save(base)
        RunReport(name="b", metrics={"my_total": 100.0}).save(new)
        watch.write_text(json.dumps(
            [{"pattern": "my_total", "max_ratio": 1.1, "max_increase": 1.0}]
        ))
        assert obs_main(["diff", str(base), str(new), "--watch", str(watch)]) == 1

    def test_dump_writes_jsonl(self, tmp_path, capsys):
        from repro.obs.cli import obs_main

        out_path = tmp_path / "t.jsonl"
        rc = obs_main([
            "dump", "--scenario", "linespeed", "--duration", "0.002",
            "--topic", "span.*", "-o", str(out_path),
        ])
        assert rc == 0
        lines = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert lines and all(l["topic"].startswith("span.") for l in lines)

    def test_obs_dispatch_from_main_cli(self, tmp_path, capsys):
        from repro.analysis.cli import main

        base = tmp_path / "a.json"
        new = tmp_path / "b.json"
        RunReport(name="a").save(base)
        RunReport(name="b").save(new)
        assert main(["obs", "diff", str(base), str(new)]) == 0


class TestCaseStudySpanScreening:
    def test_span_screening_matches_tap_screening_all_scenarios(self):
        from repro.scenarios.datacenter import DatacenterCaseStudy

        study = DatacenterCaseStudy(seed=1, echo_count=5)
        for result in (study.run_baseline(), study.run_attack(),
                       study.run_protected()):
            tap, span = result.screening, result.span_screening
            assert span is not None, result.scenario
            assert span.per_node == tap.per_node, result.scenario
            assert span.strays == tap.strays, result.scenario
            assert span.stray_nodes == tap.stray_nodes, result.scenario


class TestEnginePeakPending:
    def test_peak_pending_tracks_high_water_mark(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.peak_pending_events == 5
        sim.run()
        assert sim.pending_events() == 0
        assert sim.peak_pending_events == 5  # sticky after drain
