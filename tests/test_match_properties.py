"""Property-based tests for the OpenFlow match and flow-table semantics."""

from hypothesis import given, settings, strategies as st

from repro.net import IpAddress, MacAddress, Packet, Vlan
from repro.openflow import FlowEntry, FlowTable, Match, Output

macs = st.integers(0, (1 << 48) - 1).map(MacAddress)
ips = st.integers(0, (1 << 32) - 1).map(IpAddress)
ports = st.integers(0, 65535)


@st.composite
def packets(draw):
    vlan = draw(st.one_of(st.none(), st.integers(0, 4095).map(Vlan)))
    return Packet.udp(
        draw(macs), draw(macs), draw(ips), draw(ips),
        draw(ports), draw(ports),
        payload=draw(st.binary(max_size=32)),
        ident=draw(st.integers(0, 0xFFFF)),
        vlan=vlan,
    )


MATCH_FIELDS = (
    "in_port", "dl_src", "dl_dst", "dl_vlan", "dl_type",
    "nw_src", "nw_dst", "nw_proto", "tp_src", "tp_dst",
)


@given(packets(), st.integers(1, 8))
@settings(max_examples=150)
def test_from_packet_always_self_matches(packet, in_port):
    match = Match.from_packet(packet, in_port=in_port)
    assert match.matches(packet, in_port)


@given(packets(), st.integers(1, 8), st.sets(st.sampled_from(MATCH_FIELDS)))
@settings(max_examples=150)
def test_wildcarding_only_widens(packet, in_port, fields_to_clear):
    """Clearing match fields can never stop a packet from matching."""
    match = Match.from_packet(packet, in_port=in_port)
    for field in fields_to_clear:
        setattr(match, field, None)
    assert match.matches(packet, in_port)


@given(packets(), st.integers(1, 8))
@settings(max_examples=100)
def test_match_equality_reflexive_and_hash_consistent(packet, in_port):
    a = Match.from_packet(packet, in_port)
    b = Match.from_packet(packet, in_port)
    assert a == b and hash(a) == hash(b)


@given(
    packets(),
    st.lists(
        st.tuples(st.integers(0, 31), st.booleans()),  # (priority, matches?)
        min_size=1,
        max_size=10,
    ),
)
@settings(max_examples=150)
def test_lookup_equals_bruteforce_max_priority(packet, entry_specs):
    """FlowTable.lookup == argmax over matching entries by (priority,
    -insertion index)."""
    table = FlowTable()
    entries = []
    other = Match(dl_dst=MacAddress((int(packet.eth.dst) + 1) % (1 << 48)))
    for priority, should_match in entry_specs:
        match = Match.from_packet(packet, 1) if should_match else other
        entry = FlowEntry(match, [Output(1)], priority=priority)
        # skip (match, priority) duplicates: OF replaces those
        if any(e.priority == priority and e.match == match for e in entries):
            continue
        table.add(entry)
        entries.append(entry)

    got = table.lookup(packet, 1, now=0.0)
    candidates = [
        (i, e) for i, e in enumerate(entries) if e.match.matches(packet, 1)
    ]
    if not candidates:
        assert got is None
    else:
        best = min(candidates, key=lambda pair: (-pair[1].priority, pair[0]))[1]
        assert got is best


@given(
    st.lists(st.tuples(st.floats(0.1, 5.0), st.booleans()), min_size=1, max_size=8),
    st.floats(0.0, 10.0),
)
@settings(max_examples=100)
def test_sweep_removes_exactly_the_expired(timeout_specs, now):
    table = FlowTable()
    for i, (timeout, use_hard) in enumerate(timeout_specs):
        table.add(
            FlowEntry(
                Match(in_port=i + 1),
                [Output(1)],
                priority=i,
                hard_timeout=timeout if use_hard else 0.0,
                idle_timeout=0.0 if use_hard else timeout,
                created_at=0.0,
            )
        )
    before = table.entries
    swept = table.sweep_expired(now)
    assert {id(e) for e in swept} == {
        id(e) for e in before if e.expired(now) is not None
    }
    for entry in table:
        assert entry.expired(now) is None
