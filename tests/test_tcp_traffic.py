"""Tests for the Reno TCP implementation."""

import pytest

from repro.net import Network, Packet
from repro.traffic import TcpReceiver, TcpSender


def rig(rate_bps=100e6, delay=100e-6, loss=0.0, queue_capacity=1000, seed=6):
    net = Network(seed=seed)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(
        h1, h2, rate_bps=rate_bps, delay=delay, loss=loss,
        queue_capacity=queue_capacity,
    )
    receiver = TcpReceiver(h2, 5001)
    sender = TcpSender(h1, h2.mac, h2.ip, 5001, min_rto=0.01)
    return net, sender, receiver


class TestHandshake:
    def test_connection_establishes(self):
        net, sender, receiver = rig()
        sender.start(duration=0.01)
        net.run(until=0.005)
        assert sender.connected
        assert receiver.peer_port == sender.sport

    def test_syn_retransmitted_on_loss(self):
        net, sender, receiver = rig()
        # drop the first SYN by blocking h2 briefly
        net.host("h2").port(1).block_for(0.02)
        sender.start(duration=0.5)
        net.run(until=0.4)
        assert sender.connected

    def test_second_connection_attempt_ignored(self):
        net, sender, receiver = rig()
        sender.start(duration=0.05)
        net.run(until=0.02)
        h3 = net.add_host("h3")
        # a stray SYN from another port is ignored by the busy receiver
        stray = Packet.tcp(
            net.host("h1").mac, net.host("h2").mac,
            net.host("h1").ip, net.host("h2").ip,
            49999, 5001, seq=0, flags=0x02,
        )
        net.host("h1").send(stray)
        net.run(until=0.05)
        assert receiver.peer_port == sender.sport


class TestBulkTransfer:
    def test_clean_path_reaches_link_capacity(self):
        net, sender, receiver = rig(rate_bps=100e6)
        sender.start(duration=0.2)
        net.run(until=0.3)
        result = sender.result(0.2)
        assert result.throughput_mbps > 80
        assert result.timeouts == 0
        assert receiver.bytes_in_order == result.bytes_acked

    def test_slow_start_doubles_window(self):
        net, sender, receiver = rig(rate_bps=1e9, delay=1e-3)
        sender.start(duration=0.02)
        net.run(until=0.004)
        cwnd_early = sender.cwnd
        net.run(until=0.010)
        assert sender.cwnd > cwnd_early

    def test_rtt_estimation_converges(self):
        net, sender, receiver = rig(delay=500e-6)
        sender.start(duration=0.1)
        net.run(until=0.2)
        assert sender.rtt_samples > 5
        # at least the two propagation delays; queueing inflates above
        assert sender.srtt > 0.9e-3

    def test_bytes_acked_consistent(self):
        net, sender, receiver = rig()
        sender.start(duration=0.05)
        net.run(until=0.1)
        result = sender.result(0.05)
        assert result.bytes_acked % sender.mss == 0
        assert result.bytes_acked > 0


class TestLossRecovery:
    def test_random_loss_recovers_with_fast_retransmit(self):
        net, sender, receiver = rig(loss=0.01, rate_bps=50e6)
        sender.start(duration=0.3)
        net.run(until=0.5)
        result = sender.result(0.3)
        assert result.bytes_acked > 0
        assert result.fast_retransmits + result.timeouts > 0
        assert result.throughput_mbps > 5

    def test_heavy_loss_still_makes_progress(self):
        net, sender, receiver = rig(loss=0.05, rate_bps=50e6)
        sender.start(duration=0.3)
        net.run(until=0.6)
        assert sender.result(0.3).bytes_acked > 10 * sender.mss

    def test_loss_reduces_throughput(self):
        net_clean, sender_clean, _ = rig(rate_bps=50e6)
        sender_clean.start(duration=0.2)
        net_clean.run(until=0.4)
        net_lossy, sender_lossy, _ = rig(loss=0.03, rate_bps=50e6)
        sender_lossy.start(duration=0.2)
        net_lossy.run(until=0.4)
        assert (
            sender_lossy.result(0.2).throughput_mbps
            < sender_clean.result(0.2).throughput_mbps
        )

    def test_timeout_resets_cwnd(self):
        net, sender, receiver = rig(rate_bps=50e6)
        sender.start(duration=0.3)
        net.run(until=0.05)
        # black out the path long enough to force an RTO
        net.host("h2").port(1).block_for(0.05)
        net.run(until=0.12)
        assert sender.timeouts >= 1
        net.run(until=0.5)
        assert sender.result(0.3).bytes_acked > 0  # recovered after RTO


class TestDuplicationResilience:
    def duplicate_rig(self, copies=3):
        """Hosts joined by a hub that duplicates every frame ``copies``
        times in both directions — a Dup-style path."""
        from repro.core import Hub

        net = Network(seed=7)
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        hub_out = Hub(net.sim, "hubx", trace_bus=net.trace)
        net.add_node(hub_out)
        link = dict(rate_bps=100e6, delay=50e-6, queue_capacity=1000)
        net.connect(h1, hub_out, port_b=1, **link)
        # wire 'copies' parallel loops back to a merge hub
        merge = Hub(net.sim, "merge", trace_bus=net.trace)
        net.add_node(merge)
        net.connect(h2, merge, port_b=1, **link)
        for _ in range(copies):
            net.connect(hub_out, merge, **link)
        receiver = TcpReceiver(h2, 5001)
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, min_rto=0.01)
        return net, sender, receiver

    def test_receiver_deduplicates_segments(self):
        net, sender, receiver = self.duplicate_rig()
        sender.start(duration=0.05)
        net.run(until=0.1)
        assert receiver.duplicate_segments > 0
        assert receiver.bytes_in_order == sender.result(0.05).bytes_acked

    def test_no_spurious_fast_retransmits_from_duplication(self):
        net, sender, receiver = self.duplicate_rig()
        sender.start(duration=0.1)
        net.run(until=0.2)
        result = sender.result(0.1)
        # DSACK + SACK-novelty handling: duplication alone must not
        # trigger loss recovery
        assert result.fast_retransmits == 0
        assert result.timeouts == 0
        assert result.bytes_acked > 0


class TestReceiver:
    def test_out_of_order_buffered_and_drained(self):
        net, sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        # hand-craft a connection: SYN, then segments out of order
        syn = Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 40001, 5001, seq=0,
                         flags=0x02)
        h1.send(syn)
        net.run(until=0.01)

        def seg(seq, payload):
            return Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 40001, 5001,
                              seq=seq, flags=0x10, payload=payload,
                              ident=h1.next_ip_ident())

        h1.send(seg(1 + 100, b"b" * 100))  # arrives first (gap)
        net.run(until=0.02)
        assert receiver.out_of_order_segments == 1
        assert receiver.bytes_in_order == 0
        h1.send(seg(1, b"a" * 100))
        net.run(until=0.03)
        assert receiver.bytes_in_order == 200
        assert receiver.rcv_nxt == 201

    def test_fin_acknowledged(self):
        net, sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        acks = []
        h1.bind_tcp(40001, acks.append)
        h1.send(Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 40001, 5001, seq=0,
                           flags=0x02))
        net.run(until=0.01)
        h1.send(Packet.tcp(h1.mac, h2.mac, h1.ip, h2.ip, 40001, 5001, seq=1,
                           flags=0x01 | 0x10, ident=1))
        net.run(until=0.02)
        assert acks[-1].l4.ack == 2  # FIN consumed one sequence number


class TestBoundedTransfer:
    def test_exact_bytes_delivered_then_fin(self):
        net, _sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, sport=40002,
                           total_bytes=100_000, min_rto=0.01)
        done = []
        sender.start(duration=1.0, done_cb=lambda: done.append(net.sim.now))
        net.run(until=0.5)
        assert sender.fin_sent and sender.fin_acked
        assert done, "done callback fires when the FIN is acknowledged"
        assert sender.result(0.5).bytes_acked == 100_000
        assert receiver.bytes_in_order == 100_000

    def test_non_mss_multiple_transfer(self):
        net, _sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, sport=40002,
                           total_bytes=5_000, min_rto=0.01)
        sender.start(duration=1.0)
        net.run(until=0.5)
        assert receiver.bytes_in_order == 5_000  # 3 full MSS + 620 bytes

    def test_bounded_transfer_survives_loss(self):
        net, _sender, receiver = rig(loss=0.02, seed=9)
        h1, h2 = net.host("h1"), net.host("h2")
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, sport=40002,
                           total_bytes=200_000, min_rto=0.01)
        sender.start(duration=2.0)
        net.run(until=2.5)
        assert sender.fin_acked
        assert receiver.bytes_in_order == 200_000

    def test_tiny_transfer(self):
        net, _sender, receiver = rig()
        h1, h2 = net.host("h1"), net.host("h2")
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, sport=40002,
                           total_bytes=1, min_rto=0.01)
        sender.start(duration=0.5)
        net.run(until=0.3)
        assert receiver.bytes_in_order == 1
        assert sender.fin_acked

    def test_bounded_transfer_through_combiner(self):
        from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
        from repro.net import Network

        net = Network(seed=10)
        chain = build_combiner_chain(
            net, "nc",
            CombinerChainParams(k=3, compare=CompareConfig(k=3, buffer_timeout=2e-3)),
        )
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        net.connect(h1, chain.endpoint_a)
        net.connect(h2, chain.endpoint_b)
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
        receiver = TcpReceiver(h2, 5001)
        sender = TcpSender(h1, h2.mac, h2.ip, 5001, total_bytes=50_000,
                           min_rto=0.01)
        sender.start(duration=1.0)
        net.run(until=0.5)
        assert sender.fin_acked
        assert receiver.bytes_in_order == 50_000
