"""Tests for MAC and IPv4 address value types."""

import pytest

from repro.net import IpAddress, MacAddress


class TestMacAddress:
    def test_parse_string(self):
        mac = MacAddress("02:00:00:00:00:01")
        assert int(mac) == 0x020000000001
        assert str(mac) == "02:00:00:00:00:01"

    def test_from_int_and_bytes_roundtrip(self):
        mac = MacAddress(0xAABBCCDDEEFF)
        assert MacAddress(mac.to_bytes()) == mac
        assert mac.to_bytes() == bytes.fromhex("aabbccddeeff")

    def test_copy_constructor(self):
        mac = MacAddress("02:00:00:00:00:01")
        assert MacAddress(mac) == mac

    @pytest.mark.parametrize(
        "bad", ["02:00:00:00:00", "0g:00:00:00:00:01", "020000000001", ""]
    )
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            MacAddress(1.5)

    def test_broadcast(self):
        assert MacAddress.BROADCAST.is_broadcast
        assert MacAddress.BROADCAST.is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_broadcast

    def test_multicast_bit(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("02:00:00:00:00:01").is_multicast

    def test_from_index_unique_and_local(self):
        a, b = MacAddress.from_index(1), MacAddress.from_index(2)
        assert a != b
        assert not a.is_multicast  # locally administered but unicast

    def test_from_index_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress.from_index(1 << 40)

    def test_hashable_and_ordered(self):
        a, b = MacAddress.from_index(1), MacAddress.from_index(2)
        assert len({a, b, MacAddress.from_index(1)}) == 2
        assert a < b

    def test_repr(self):
        assert "02:00:00:00:00:01" in repr(MacAddress("02:00:00:00:00:01"))


class TestIpAddress:
    def test_parse_string(self):
        ip = IpAddress("10.0.0.1")
        assert int(ip) == (10 << 24) | 1
        assert str(ip) == "10.0.0.1"

    def test_bytes_roundtrip(self):
        ip = IpAddress("192.168.1.254")
        assert IpAddress(ip.to_bytes()) == ip

    @pytest.mark.parametrize("bad", ["10.0.0", "256.0.0.1", "a.b.c.d", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            IpAddress(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            IpAddress(1 << 32)

    def test_from_index(self):
        assert str(IpAddress.from_index(1)) == "10.0.0.1"
        assert str(IpAddress.from_index(300)) == "10.0.1.44"

    def test_hashable_and_ordered(self):
        a, b = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")
        assert len({a, b}) == 2
        assert a < b

    def test_not_equal_to_mac(self):
        assert IpAddress("10.0.0.1") != MacAddress.from_index(1)
