"""Tests for the fat-tree topology builder."""

import pytest

from repro.apps import StaticMacRouter
from repro.net import build_fat_tree
from repro.traffic.iperf import PathEndpoints, run_ping


class TestStructure:
    def test_k4_element_counts(self):
        tree = build_fat_tree(4)
        assert len(tree.core) == 4
        assert sum(len(p) for p in tree.aggregation) == 8
        assert sum(len(p) for p in tree.edge) == 8
        assert len(tree.all_hosts()) == 16
        assert len(tree.all_switches()) == 20

    def test_k2_element_counts(self):
        tree = build_fat_tree(2)
        assert len(tree.core) == 1
        assert len(tree.all_hosts()) == 2

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(3)
        with pytest.raises(ValueError):
            build_fat_tree(0)

    def test_edge_connects_to_all_pod_aggs(self):
        tree = build_fat_tree(4)
        net = tree.network
        for pod in range(4):
            for edge in tree.edge[pod]:
                for agg in tree.aggregation[pod]:
                    assert net.port_no_between(edge.name, agg.name) > 0

    def test_agg_connects_to_core_group(self):
        tree = build_fat_tree(4)
        net = tree.network
        # agg i in each pod reaches cores [2i, 2i+1]
        for pod in range(4):
            for i, agg in enumerate(tree.aggregation[pod]):
                for j in range(2):
                    core = tree.core[i * 2 + j]
                    assert net.port_no_between(agg.name, core.name) > 0

    def test_hosts_attached_to_their_edge(self):
        tree = build_fat_tree(4)
        host = tree.host(2, 1, 0)
        edge = tree.edge[2][1]
        assert tree.network.port_no_between(edge.name, host.name) > 0


class TestConnectivity:
    def test_cross_pod_shortest_path_length(self):
        tree = build_fat_tree(4)
        a = tree.host(0, 0, 0)
        b = tree.host(3, 1, 1)
        path = tree.network.shortest_path(a.name, b.name)
        # host-edge-agg-core-agg-edge-host
        assert len(path) == 7

    def test_same_rack_path_length(self):
        tree = build_fat_tree(4)
        a, b = tree.host(0, 0, 0), tree.host(0, 0, 1)
        assert len(tree.network.shortest_path(a.name, b.name)) == 3

    def test_ping_across_pods_with_static_routing(self):
        tree = build_fat_tree(4, link_delay=1e-6)
        a = tree.host(0, 0, 0)
        b = tree.host(2, 1, 1)
        StaticMacRouter(tree.network).install_pair(a, b)
        result = run_ping(
            PathEndpoints(tree.network, a, b), count=5, interval=1e-4
        )
        assert result.received == 5
        assert result.rtts.minimum > 0
