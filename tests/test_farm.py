"""Tests for the experiment farm: specs, cache, executor, progress."""

import json
import os
import time

import pytest

from repro.analysis.runners import run_fig7_rtt, specs_fig7
from repro.farm import (
    FarmExecutor,
    FarmProgress,
    FarmTaskError,
    ResultCache,
    RunSpec,
    register_runner,
    resolve_runner,
)
from repro.sim import TraceBus

# ----------------------------------------------------------------------
# module-level task functions (worker processes must be able to run them)
# ----------------------------------------------------------------------


@register_runner("test.echo")
def echo_task(value, seed=0):
    return {"value": value, "seed": seed}


@register_runner("test.crash_once")
def crash_once_task(flag_path, seed=0):
    """Kill the worker on the first attempt, succeed on the retry."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(3)
    return "survived"


@register_runner("test.crash_always")
def crash_always_task(seed=0):
    os._exit(3)


@register_runner("test.sleepy")
def sleepy_task(duration, seed=0):
    time.sleep(duration)
    return "done"


@register_runner("test.buggy")
def buggy_task(seed=0):
    raise ValueError("deterministic task bug")


def plain_fn(seed=0):
    return "resolved-by-path"


# ----------------------------------------------------------------------
# RunSpec hashing
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_same_kwargs_same_key(self):
        a = RunSpec("r", {"x": 1, "y": [1, 2]}, seed=7)
        b = RunSpec("r", {"y": [1, 2], "x": 1}, seed=7)
        assert a.key == b.key

    def test_tuple_and_list_kwargs_hash_identically(self):
        a = RunSpec("r", {"sizes": (128, 256)}, seed=1)
        b = RunSpec("r", {"sizes": [128, 256]}, seed=1)
        assert a.key == b.key
        assert a.kwargs["sizes"] == [128, 256]  # normalised form

    def test_changed_seed_changes_key(self):
        assert RunSpec("r", {"x": 1}, seed=1).key != RunSpec("r", {"x": 1}, seed=2).key

    def test_changed_runner_or_kwargs_changes_key(self):
        base = RunSpec("r", {"x": 1}, seed=1)
        assert base.key != RunSpec("other", {"x": 1}, seed=1).key
        assert base.key != RunSpec("r", {"x": 2}, seed=1).key

    def test_key_is_stable_across_processes(self):
        # sha256 of canonical JSON: no per-process hash randomisation
        spec = RunSpec("test.echo", {"value": "v"}, seed=3)
        assert spec.key == RunSpec("test.echo", {"value": "v"}, seed=3).key
        assert len(spec.key) == 64 and spec.short_key == spec.key[:12]

    def test_seed_in_kwargs_rejected(self):
        with pytest.raises(ValueError):
            RunSpec("r", {"seed": 1})

    def test_unserialisable_kwargs_rejected(self):
        with pytest.raises(TypeError):
            RunSpec("r", {"obj": object()})

    def test_resolve_registered_and_dotted(self):
        assert resolve_runner("test.echo") is echo_task
        assert resolve_runner("tests.test_farm:plain_fn") is plain_fn
        with pytest.raises(KeyError):
            resolve_runner("nope.not.registered")

    def test_execute_passes_seed_and_kwargs(self):
        spec = RunSpec("test.echo", {"value": 5}, seed=9)
        assert spec.execute() == {"value": 5, "seed": 9}


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec("test.echo", {"value": 1}, seed=0)
        assert cache.get(spec) == (False, None)
        cache.put(spec, {"value": 1, "seed": 0})
        hit, value = cache.get(spec)
        assert hit and value == {"value": 1, "seed": 0}
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1
        assert cache.hit_rate == 0.5

    def test_corrupt_file_recovers_as_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec("test.echo", {"value": 2}, seed=0)
        cache.put(spec, "good")
        path = cache.path_for(spec.key)
        path.write_text("{ not json !!!")
        hit, _ = cache.get(spec)
        assert not hit
        assert cache.corrupt == 1
        assert not path.exists()  # the bad entry was removed
        cache.put(spec, "good-again")
        assert cache.get(spec) == (True, "good-again")

    def test_mismatched_key_treated_as_corrupt(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        spec = RunSpec("test.echo", {"value": 3}, seed=0)
        path = cache.path_for(spec.key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": "somebody-else", "value": 1}))
        assert cache.get(spec) == (False, None)
        assert cache.corrupt == 1

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        spec = RunSpec("test.echo", {"value": 4}, seed=0)
        cache.put(spec, "x")
        assert cache.get(spec) == (False, None)
        assert cache.hits == cache.misses == cache.stores == 0

    def test_unwritable_root_degrades_with_warning(self):
        cache = ResultCache(root="/proc/definitely-not-writable")
        spec = RunSpec("test.echo", {"value": 5}, seed=0)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put(spec, "x")
        cache.put(spec, "x")  # warning fires only once
        assert cache.write_errors == 2 and cache.stores == 0
        assert cache.get(spec) == (False, None)  # still usable as a miss

    def test_stats_shape(self, tmp_path):
        stats = ResultCache(root=tmp_path).stats()
        assert {"hits", "misses", "stores", "corrupt", "write_errors",
                "hit_rate"} <= set(stats)


# ----------------------------------------------------------------------
# FarmExecutor
# ----------------------------------------------------------------------
class TestFarmExecutor:
    def test_inline_execution(self):
        farm = FarmExecutor(jobs=1)
        specs = [RunSpec("test.echo", {"value": i}, seed=i) for i in range(3)]
        results = farm.run(specs)
        assert results == {
            s.key: {"value": i, "seed": i} for i, s in enumerate(specs)
        }
        assert farm.progress.done == 3 and farm.progress.failed == 0

    def test_parallel_matches_inline(self):
        specs = [RunSpec("test.echo", {"value": i}, seed=i) for i in range(5)]
        inline = FarmExecutor(jobs=1).run(specs)
        parallel = FarmExecutor(jobs=3).run(specs)
        assert inline == parallel

    def test_duplicate_specs_execute_once(self):
        farm = FarmExecutor(jobs=1)
        spec = RunSpec("test.echo", {"value": 1}, seed=0)
        results = farm.run([spec, RunSpec("test.echo", {"value": 1}, seed=0)])
        assert len(results) == 1
        assert farm.progress.queued == 1

    def test_cache_hits_skip_execution(self, tmp_path):
        specs = [RunSpec("test.echo", {"value": i}, seed=i) for i in range(3)]
        first = FarmExecutor(jobs=1, cache=ResultCache(root=tmp_path))
        warm = first.run(specs)
        assert first.cache.misses == 3 and first.cache.stores == 3

        second = FarmExecutor(jobs=1, cache=ResultCache(root=tmp_path))
        cached = second.run(specs)
        assert cached == warm
        assert second.cache.hits == 3 and second.cache.hit_rate == 1.0
        assert second.progress.cache_hits == 3
        assert second.progress.executed == 0

    def test_worker_crash_is_retried(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        farm = FarmExecutor(jobs=2, retries=2)
        spec = RunSpec("test.crash_once", {"flag_path": flag}, seed=0)
        results = farm.run([spec])
        assert results[spec.key] == "survived"
        assert farm.progress.retried >= 1
        assert farm.progress.done == 1

    def test_worker_crash_retry_is_bounded(self):
        farm = FarmExecutor(jobs=2, retries=1)
        spec = RunSpec("test.crash_always", {}, seed=0)
        with pytest.raises(FarmTaskError) as excinfo:
            farm.run([spec])
        assert excinfo.value.attempts == 2  # initial + one retry
        assert "crashed" in str(excinfo.value)

    def test_timeout_in_pool(self):
        farm = FarmExecutor(jobs=2, timeout=0.2, retries=0)
        spec = RunSpec("test.sleepy", {"duration": 10.0}, seed=0)
        start = time.perf_counter()
        with pytest.raises(FarmTaskError) as excinfo:
            farm.run([spec])
        assert time.perf_counter() - start < 5.0  # did not sleep 10s
        assert "timed out" in str(excinfo.value)

    def test_timeout_inline(self):
        farm = FarmExecutor(jobs=1, timeout=0.2)
        spec = RunSpec("test.sleepy", {"duration": 10.0}, seed=0)
        with pytest.raises(FarmTaskError, match="timed out"):
            farm.run([spec])

    def test_deterministic_task_error_not_retried(self):
        farm = FarmExecutor(jobs=2, retries=5)
        spec = RunSpec("test.buggy", {}, seed=0)
        with pytest.raises(FarmTaskError) as excinfo:
            farm.run([spec])
        assert excinfo.value.attempts == 1
        assert farm.progress.retried == 0

    def test_results_keyed_by_spec_hash(self):
        farm = FarmExecutor(jobs=1)
        spec = RunSpec("test.echo", {"value": "k"}, seed=0)
        results = farm.run([spec])
        assert set(results) == {spec.key}


# ----------------------------------------------------------------------
# progress / telemetry
# ----------------------------------------------------------------------
class TestFarmProgress:
    def test_counters_and_bus_records(self):
        progress = FarmProgress(bus=TraceBus())
        farm = FarmExecutor(jobs=1, progress=progress)
        specs = [RunSpec("test.echo", {"value": i}, seed=i) for i in range(2)]
        farm.run(specs)
        assert progress.queued == 2
        assert progress.done == 2
        assert progress.running == 0
        assert progress.bus.count("farm.task.queued") == 2
        assert progress.bus.count("farm.task.started") == 2
        assert progress.bus.count("farm.task.done") == 2
        assert progress.bus.count("farm.summary") == 1
        assert len(progress.wall_times) == 2
        assert progress.total_task_wall >= 0.0

    def test_snapshot_shape(self):
        snap = FarmProgress().snapshot()
        assert {"queued", "running", "done", "failed", "retried",
                "cache_hits", "executed"} <= set(snap)

    def test_render_farm_summary(self, tmp_path):
        from repro.analysis.report import render_farm_summary

        cache = ResultCache(root=tmp_path)
        farm = FarmExecutor(jobs=1, cache=cache)
        farm.run([RunSpec("test.echo", {"value": 1}, seed=0)])
        text = render_farm_summary(farm.progress, cache=cache)
        assert "tasks=1" in text and "cache" in text


# ----------------------------------------------------------------------
# serial vs parallel equivalence on a real figure runner
# ----------------------------------------------------------------------
class TestFigureEquivalence:
    SCENARIOS = ("linespeed", "dup3")

    def test_fig7_parallel_is_bit_identical_to_serial(self):
        serial = run_fig7_rtt(
            scenarios=self.SCENARIOS, count=5, sequences=2, seed=3
        )
        parallel = run_fig7_rtt(
            scenarios=self.SCENARIOS, count=5, sequences=2, seed=3,
            farm=FarmExecutor(jobs=2),
        )
        assert parallel.to_dict() == serial.to_dict()

    def test_fig7_cached_rerun_is_identical_and_all_hits(self, tmp_path):
        kwargs = dict(scenarios=self.SCENARIOS, count=5, sequences=2, seed=3)
        first = FarmExecutor(jobs=1, cache=ResultCache(root=tmp_path))
        warm = run_fig7_rtt(farm=first, **kwargs)
        n_specs = len(specs_fig7(self.SCENARIOS, 5, 2, 3, None))
        assert first.cache.misses == n_specs

        second = FarmExecutor(jobs=1, cache=ResultCache(root=tmp_path))
        cached = run_fig7_rtt(farm=second, **kwargs)
        assert cached.to_dict() == warm.to_dict()
        assert second.cache.hits == n_specs
        assert second.cache.hit_rate == 1.0
        assert second.progress.executed == 0


class TestChaosDeterminism:
    """The same chaos schedule sharded over 4 workers must yield the
    byte-identical RunReport a serial run produces."""

    def _battery(self):
        from repro.chaos import builtin_battery

        battery = builtin_battery()
        return [
            battery["crash_restart"].to_dict(),
            battery["link_flap"].to_dict(),
            battery["loss_burst"].to_dict(),
        ]

    def _report_bytes(self, tmp_path, tag, jobs):
        from repro.analysis.runners import run_chaos_battery
        from repro.obs.report import RunReport

        records = run_chaos_battery(
            schedules=self._battery(),
            duration=0.03,
            seeds=(1, 2),
            farm=FarmExecutor(jobs=jobs),
        )
        path = tmp_path / f"chaos-{tag}.json"
        # records only: farm progress snapshots carry wall-clock times
        RunReport(name="chaos", records=records).save(str(path))
        return path.read_bytes()

    def test_chaos_battery_serial_vs_jobs4_byte_identical(self, tmp_path):
        serial = self._report_bytes(tmp_path, "serial", jobs=1)
        parallel = self._report_bytes(tmp_path, "jobs4", jobs=4)
        assert serial == parallel
