"""Tests for the OF 1.0 match structure and actions."""

import pytest

from repro.net import (
    ICMP_ECHO_REQUEST,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    IpAddress,
    MacAddress,
    Packet,
    Vlan,
)
from repro.openflow import (
    Match,
    Output,
    PORT_CONTROLLER,
    PORT_FLOOD,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlanVid,
    StripVlan,
    flood,
    to_controller,
)

M1, M2, M3 = (MacAddress.from_index(i) for i in (1, 2, 3))
IP1, IP2, IP3 = (IpAddress.from_index(i) for i in (1, 2, 3))


def udp_packet(vlan=None, tos=0):
    packet = Packet.udp(M1, M2, IP1, IP2, 1000, 2000, payload=b"x", vlan=vlan)
    packet.ip.tos = tos
    return packet


class TestMatch:
    def test_wildcard_matches_everything(self):
        match = Match.wildcard()
        assert match.matches(udp_packet(), in_port=1)
        assert match.matches(Packet.icmp_echo(M1, M2, IP1, IP2, 1, 1), in_port=9)

    def test_in_port(self):
        match = Match(in_port=3)
        assert match.matches(udp_packet(), 3)
        assert not match.matches(udp_packet(), 4)

    def test_dl_fields(self):
        assert Match(dl_src=M1).matches(udp_packet(), 1)
        assert not Match(dl_src=M3).matches(udp_packet(), 1)
        assert Match(dl_dst=M2).matches(udp_packet(), 1)
        assert not Match(dl_dst=M3).matches(udp_packet(), 1)
        assert Match(dl_type=0x0800).matches(udp_packet(), 1)
        assert not Match(dl_type=0x0806).matches(udp_packet(), 1)

    def test_vlan_fields(self):
        tagged = udp_packet(vlan=Vlan(42, pcp=5))
        assert Match(dl_vlan=42).matches(tagged, 1)
        assert not Match(dl_vlan=43).matches(tagged, 1)
        assert Match(dl_vlan_pcp=5).matches(tagged, 1)
        assert not Match(dl_vlan=42).matches(udp_packet(), 1)  # untagged

    def test_nw_fields(self):
        assert Match(nw_src=IP1, nw_dst=IP2).matches(udp_packet(), 1)
        assert not Match(nw_src=IP3).matches(udp_packet(), 1)
        assert Match(nw_proto=IP_PROTO_UDP).matches(udp_packet(), 1)
        assert not Match(nw_proto=IP_PROTO_TCP).matches(udp_packet(), 1)
        assert Match(nw_tos=4).matches(udp_packet(tos=4), 1)

    def test_nw_fields_require_ip(self):
        from repro.net import Ethernet

        raw = Packet(Ethernet(M2, M1, 0x88B5), payload=b"x")
        assert not Match(nw_src=IP1).matches(raw, 1)

    def test_tp_fields_udp(self):
        assert Match(tp_src=1000, tp_dst=2000).matches(udp_packet(), 1)
        assert not Match(tp_dst=2001).matches(udp_packet(), 1)

    def test_tp_fields_icmp_type_code(self):
        ping = Packet.icmp_echo(M1, M2, IP1, IP2, 1, 1)
        assert Match(tp_src=ICMP_ECHO_REQUEST, tp_dst=0).matches(ping, 1)
        assert not Match(tp_src=0).matches(ping, 1)

    def test_tp_fields_require_transport(self):
        from repro.net import Ethernet, Ipv4

        packet = Packet(Ethernet(M2, M1), Ipv4(IP1, IP2, 99), None, b"")
        assert not Match(tp_src=1).matches(packet, 1)

    def test_from_packet_exact(self):
        packet = udp_packet(vlan=Vlan(7))
        match = Match.from_packet(packet, in_port=2)
        assert match.matches(packet, 2)
        assert not match.matches(packet, 3)

    def test_from_packet_matches_only_identical(self):
        match = Match.from_packet(udp_packet(), in_port=1)
        other = Packet.udp(M1, M2, IP1, IP2, 1000, 2001)
        assert not match.matches(other, 1)

    def test_equality_and_hash(self):
        a = Match(dl_dst=M2, tp_dst=80)
        b = Match(dl_dst=M2, tp_dst=80)
        c = Match(dl_dst=M2, tp_dst=81)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a match"

    def test_repr_lists_set_fields(self):
        assert "dl_dst" in repr(Match(dl_dst=M2))
        assert repr(Match()) == "Match(*)"


class TestActions:
    def test_set_dl_src_dst(self):
        packet = udp_packet()
        SetDlSrc(M3).apply(packet)
        SetDlDst(M1).apply(packet)
        assert packet.eth.src == M3 and packet.eth.dst == M1

    def test_set_vlan_adds_or_rewrites(self):
        packet = udp_packet()
        SetVlanVid(10).apply(packet)
        assert packet.vlan.vid == 10
        SetVlanVid(20).apply(packet)
        assert packet.vlan.vid == 20

    def test_strip_vlan(self):
        packet = udp_packet(vlan=Vlan(5))
        StripVlan().apply(packet)
        assert packet.vlan is None

    def test_set_nw_fields(self):
        packet = udp_packet()
        SetNwSrc(IP3).apply(packet)
        SetNwDst(IP1).apply(packet)
        assert packet.ip.src == IP3 and packet.ip.dst == IP1

    def test_set_nw_noop_on_non_ip(self):
        from repro.net import Ethernet

        packet = Packet(Ethernet(M2, M1, 0x88B5), payload=b"")
        SetNwSrc(IP3).apply(packet)  # must not crash
        assert packet.ip is None

    def test_set_tp_fields(self):
        packet = udp_packet()
        SetTpSrc(1).apply(packet)
        SetTpDst(2).apply(packet)
        assert packet.l4.sport == 1 and packet.l4.dport == 2

    def test_set_tp_noop_on_icmp(self):
        ping = Packet.icmp_echo(M1, M2, IP1, IP2, 1, 1)
        SetTpSrc(1).apply(ping)
        assert ping.l4.icmp_type == ICMP_ECHO_REQUEST

    def test_action_equality(self):
        assert Output(1) == Output(1) and Output(1) != Output(2)
        assert SetDlSrc(M1) == SetDlSrc(M1)
        assert SetVlanVid(1) != SetVlanVid(2)
        assert StripVlan() == StripVlan()
        assert len({Output(1), Output(1), Output(2)}) == 2

    def test_virtual_port_helpers(self):
        assert flood().port == PORT_FLOOD
        assert to_controller().port == PORT_CONTROLLER
        assert "FLOOD" in repr(flood())
