"""Tests for the Figure 3 testbed scenarios and the paper's orderings.

These pin the *shape* claims of the paper's evaluation (Section V) at
reduced durations, so the full benchmark suite can't silently drift.
"""

import pytest

from repro.scenarios.testbed import TestbedParams, VARIANTS, build_testbed
from repro.traffic.iperf import run_ping, run_tcp_flow, run_udp_flow


class TestConstruction:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_builds_and_pings(self, variant):
        testbed = build_testbed(variant, seed=1)
        result = run_ping(testbed.path(), count=3, interval=2e-3)
        assert result.received == 3

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_testbed("central7")

    def test_k_matches_variant(self):
        assert build_testbed("central5").chain.k == 5
        assert build_testbed("dup3").chain.k == 3
        assert build_testbed("linespeed").chain.k == 1

    def test_pox_variant_uses_controller_transport(self):
        testbed = build_testbed("pox3")
        assert testbed.chain.compare_host is None
        assert testbed.chain.controller is not None

    def test_dup_variant_has_no_compare(self):
        assert build_testbed("dup3").compare_core is None

    def test_params_override(self):
        params = TestbedParams(link_delay=1e-3)
        testbed = build_testbed("linespeed", params=params)
        result = run_ping(testbed.path(), count=2, interval=5e-3)
        assert result.avg_rtt_ms > 8.0  # 8 hops x 1 ms

    def test_seed_override_changes_rng_only(self):
        a = build_testbed("linespeed", seed=1)
        b = build_testbed("linespeed", seed=2)
        assert a.params.seed == 1 and b.params.seed == 2


class TestPaperShapes:
    """The ordering claims of Table I / Figures 4-7 at small scale."""

    @pytest.fixture(scope="class")
    def measurements(self):
        tcp, udp, rtt = {}, {}, {}
        for variant in ("linespeed", "dup3", "dup5", "central3", "central5"):
            tcp[variant] = run_tcp_flow(
                build_testbed(variant, seed=1).path(), duration=0.1
            ).throughput_mbps
            udp[variant] = run_udp_flow(
                build_testbed(variant, seed=1).path(),
                rate_bps=300e6,
                duration=0.05,
                send_cost=TestbedParams().udp_send_cost,
            ).throughput_mbps
            rtt[variant] = run_ping(
                build_testbed(variant, seed=1).path(), count=20, interval=1e-3
            ).avg_rtt_ms
        return tcp, udp, rtt

    def test_security_costs_tcp_bandwidth(self, measurements):
        tcp, _udp, _rtt = measurements
        assert tcp["linespeed"] > tcp["central3"] > tcp["central5"]
        assert tcp["linespeed"] > tcp["dup3"] > tcp["dup5"]

    def test_combining_beats_duplication_for_tcp(self, measurements):
        tcp, _udp, _rtt = measurements
        # "removing the duplicate packets (by combining) increases the
        # throughput visibly"
        assert tcp["central3"] > tcp["dup3"]
        assert tcp["central5"] > tcp["dup5"]

    def test_udp_scales_down_with_k(self, measurements):
        _tcp, udp, _rtt = measurements
        assert udp["linespeed"] >= udp["central3"] > udp["central5"]
        assert udp["dup3"] > udp["dup5"]

    def test_rtt_ordering_matches_table1(self, measurements):
        _tcp, _udp, rtt = measurements
        assert (
            rtt["linespeed"]
            < rtt["dup3"]
            < rtt["dup5"]
            < rtt["central3"]
            < rtt["central5"]
        )

    def test_tcp_less_resilient_than_udp(self, measurements):
        tcp, udp, _rtt = measurements
        # the combiner scenarios hurt TCP (congestion control reacts to
        # every artefact) far more than UDP — Section V-B's comparison
        # of Figures 4 and 5
        assert tcp["central3"] / tcp["linespeed"] < udp["central3"] / udp["linespeed"]

    def test_pox_far_slower_than_central(self):
        pox = run_tcp_flow(build_testbed("pox3", seed=1).path(), duration=0.05)
        central = run_tcp_flow(build_testbed("central3", seed=1).path(), duration=0.05)
        assert central.throughput_mbps > 3 * pox.throughput_mbps
