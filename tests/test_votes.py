"""Tests for the vote book (majority bookkeeping)."""

import pytest

from repro.core import VoteBook
from repro.net import IpAddress, MacAddress, Packet


def pkt(ident=0):
    return Packet.udp(
        MacAddress.from_index(1), MacAddress.from_index(2),
        IpAddress.from_index(1), IpAddress.from_index(2),
        1, 2, ident=ident,
    )


class TestQuorum:
    def test_release_at_quorum(self):
        book = VoteBook(quorum=2, timeout=1.0)
        first = book.observe("k", 0, 0.0, pkt())
        assert not first.newly_released and first.is_new_entry
        second = book.observe("k", 1, 0.1, pkt())
        assert second.newly_released
        assert second.entry.released_at == 0.1

    def test_release_fires_exactly_once(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        book.observe("k", 1, 0.0, pkt())
        third = book.observe("k", 2, 0.0, pkt())
        assert not third.newly_released
        assert third.late_copy

    def test_quorum_of_one_releases_immediately(self):
        book = VoteBook(quorum=1, timeout=1.0)
        assert book.observe("k", 0, 0.0, pkt()).newly_released

    def test_same_branch_repeats_do_not_advance_quorum(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        repeat = book.observe("k", 0, 0.1, pkt())
        assert repeat.is_branch_duplicate
        assert not repeat.newly_released
        assert repeat.entry.distinct_branches == 1
        assert repeat.entry.total_copies() == 2

    def test_distinct_keys_vote_separately(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("a", 0, 0.0, pkt(0))
        outcome = book.observe("b", 1, 0.0, pkt(1))
        assert not outcome.newly_released
        assert len(book) == 2

    def test_entry_keeps_first_packet(self):
        book = VoteBook(quorum=2, timeout=1.0)
        first_packet = pkt()
        book.observe("k", 0, 0.0, first_packet)
        outcome = book.observe("k", 1, 0.0, pkt())
        assert outcome.entry.packet is first_packet

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VoteBook(quorum=0, timeout=1.0)
        with pytest.raises(ValueError):
            VoteBook(quorum=1, timeout=0.0)


class TestExpiry:
    def test_pop_expired_respects_deadline(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        assert book.pop_expired(0.5) == []
        expired = book.pop_expired(1.0)
        assert len(expired) == 1
        assert len(book) == 0

    def test_released_entries_persist_as_tombstones(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        book.observe("k", 1, 0.0, pkt())
        assert len(book) == 1  # still cached after release
        late = book.observe("k", 2, 0.5, pkt())
        assert late.late_copy

    def test_stale_entry_evicted_on_late_observation(self):
        # the bounded-waiting-time rule: a copy arriving after the
        # deadline must not complete the old vote
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        outcome = book.observe("k", 1, 2.0, pkt())
        assert outcome.evicted_stale is not None
        assert outcome.is_new_entry
        assert not outcome.newly_released

    def test_released_tombstone_not_evicted_by_late_copy(self):
        book = VoteBook(quorum=1, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        # tombstones past deadline are swept by pop_expired, not observe
        late = book.observe("k", 1, 0.5, pkt())
        assert late.late_copy and late.evicted_stale is None

    def test_deadline_fixed_at_first_copy(self):
        book = VoteBook(quorum=3, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        book.observe("k", 1, 0.9, pkt())  # does not extend the deadline
        assert len(book.pop_expired(1.0)) == 1

    def test_evict_oldest(self):
        book = VoteBook(quorum=2, timeout=10.0)
        for i in range(5):
            book.observe(f"k{i}", 0, float(i), pkt(i))
        evicted = book.evict_oldest(2)
        assert [e.first_seen for e in evicted] == [0.0, 1.0]
        assert len(book) == 3

    def test_evict_more_than_present(self):
        book = VoteBook(quorum=2, timeout=10.0)
        book.observe("k", 0, 0.0, pkt())
        assert len(book.evict_oldest(10)) == 1


class TestIntrospection:
    def test_pending_and_released_partitions(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("a", 0, 0.0, pkt(0))
        book.observe("b", 0, 0.0, pkt(1))
        book.observe("b", 1, 0.0, pkt(1))
        assert len(book.pending()) == 1
        assert len(book.released()) == 1

    def test_missing_branches(self):
        book = VoteBook(quorum=2, timeout=1.0)
        outcome = book.observe("k", 0, 0.0, pkt())
        book.observe("k", 2, 0.0, pkt())
        assert outcome.entry.missing_branches([0, 1, 2]) == [1]

    def test_contains_and_get(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        assert "k" in book and "x" not in book
        assert book.get("k") is not None and book.get("x") is None

    def test_clear(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt())
        book.clear()
        assert len(book) == 0


class TestProbationCopies:
    """Copies observed with ``countable=False`` (quarantined branches)."""

    def test_probation_copy_never_advances_quorum(self):
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("k", 0, 0.0, pkt(), countable=False)
        outcome = book.observe("k", 1, 0.0, pkt(), countable=False)
        assert not outcome.newly_released
        assert not outcome.countable
        assert outcome.entry.distinct_branches == 0
        assert outcome.entry.probation_counts == {0: 1, 1: 1}

    def test_probation_copy_counts_in_totals_not_branches(self):
        book = VoteBook(quorum=2, timeout=1.0)
        outcome = book.observe("k", 2, 0.0, pkt(), countable=False)
        assert outcome.entry.total_copies() == 1
        assert outcome.entry.branches() == []

    def test_packet_not_adopted_from_probation_copy(self):
        # The released bytes must come from a *counted* branch: a
        # quarantined liar must not supply the canonical copy.
        book = VoteBook(quorum=2, timeout=1.0)
        suspect = pkt(1)
        book.observe("k", 2, 0.0, suspect, countable=False)
        honest = pkt(1)
        book.observe("k", 0, 0.0, honest)
        outcome = book.observe("k", 1, 0.0, pkt(1))
        assert outcome.newly_released
        assert outcome.entry.packet is honest

    def test_missing_branches_ignores_probation_membership(self):
        # The book reports a probation-only branch as "missing" from the
        # counted vote; deciding that it must NOT be alarmed on is the
        # compare layer's job (it skips quarantined/probation branches
        # when an entry is finalised).  Pin the division of labour.
        book = VoteBook(quorum=2, timeout=1.0)
        outcome = book.observe("k", 0, 0.0, pkt())
        book.observe("k", 1, 0.0, pkt())
        book.observe("k", 2, 0.0, pkt(), countable=False)
        assert outcome.entry.missing_branches([0, 1, 2]) == [2]
        assert 2 in outcome.entry.probation_counts

    def test_evicted_and_expired_entries_keep_probation_counts(self):
        # Entries leave the book through pop_expired and evict_oldest;
        # the finalise pass needs the probation bookkeeping intact to
        # credit (or reset) the quarantined branch correctly.
        book = VoteBook(quorum=2, timeout=1.0)
        book.observe("a", 0, 0.0, pkt(0))
        book.observe("a", 2, 0.0, pkt(0), countable=False)
        book.observe("b", 0, 0.5, pkt(1))
        book.observe("b", 2, 0.5, pkt(1), countable=False)
        (expired,) = book.pop_expired(1.0)
        assert expired.probation_counts == {2: 1}
        (evicted,) = book.evict_oldest(1)
        assert evicted.probation_counts == {2: 1}
