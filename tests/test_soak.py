"""Soak tests: conservation invariants under sustained mixed load.

Every copy submitted to the compare must be accounted for exactly once:
dropped at the service queue, or recorded in an entry that is finalised
(expired/evicted/flushed).  Silence about a packet is a bug; these tests
run heavy mixed workloads — overload, adversaries, duplication — and
check the books balance.
"""

import pytest

from repro.adversary import (
    PayloadCorruptionBehavior,
    ReplayFloodBehavior,
)
from repro.core import CombinerChainParams, CompareConfig, build_combiner_chain
from repro.net import Network
from repro.traffic import Pinger, TcpReceiver, TcpSender, UdpReceiver, UdpSender
from repro.traffic.iperf import PathEndpoints, run_udp_flow


def build_rig(k=3, seed=101, **compare_kwargs):
    net = Network(seed=seed)
    compare_kwargs.setdefault("buffer_timeout", 2e-3)
    params = CombinerChainParams(
        k=k, compare=CompareConfig(k=k, **compare_kwargs)
    )
    chain = build_combiner_chain(net, "nc", params)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.connect(h1, chain.endpoint_a)
    net.connect(h2, chain.endpoint_b)
    chain.install_mac_route(h2.mac, toward="b")
    chain.install_mac_route(h1.mac, toward="a")
    return net, chain, h1, h2


def assert_conservation(core) -> None:
    core.flush()
    stats = core.stats
    assert stats.submissions == stats.queue_drops + stats.copies_finalised, (
        f"copies leaked: {stats.as_dict()}"
    )


class TestConservation:
    def test_benign_mixed_load(self):
        net, chain, h1, h2 = build_rig()
        udp_rx = UdpReceiver(h2, 5001)
        udp_tx = UdpSender(h1, h2.mac, h2.ip, 5001, rate_bps=30e6)
        tcp_rx = TcpReceiver(h2, 5002)
        tcp_tx = TcpSender(h1, h2.mac, h2.ip, 5002, min_rto=0.005)
        pinger = Pinger(h1, h2.mac, h2.ip)
        udp_tx.start(duration=0.05)
        tcp_tx.start(duration=0.05)
        pinger.run(count=40, interval=1e-3)
        net.run(until=0.12)
        assert_conservation(chain.compare_core)
        assert chain.compare_core.stats.submissions > 1000

    def test_under_compare_overload(self):
        # tiny service queue forces queue drops; accounting must balance
        net, chain, h1, h2 = build_rig(
            seed=102, proc_time=30e-6, service_queue_capacity=8
        )
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=200e6, duration=0.05)
        stats = chain.compare_core.stats
        assert stats.queue_drops > 0
        assert_conservation(chain.compare_core)

    def test_with_corrupting_adversary(self):
        net, chain, h1, h2 = build_rig(seed=103)
        PayloadCorruptionBehavior().attach(chain.router(0))
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=40e6, duration=0.05)
        assert_conservation(chain.compare_core)

    def test_with_replay_flood(self):
        net, chain, h1, h2 = build_rig(seed=104, dup_threshold=6)
        ReplayFloodBehavior(amplification=8).attach(chain.router(2))
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=20e6, duration=0.05)
        stats = chain.compare_core.stats
        assert stats.branch_duplicates > 0
        assert_conservation(chain.compare_core)

    def test_with_cache_pressure_evictions(self):
        net, chain, h1, h2 = build_rig(
            seed=105, cache_capacity=16, buffer_timeout=0.5
        )
        run_udp_flow(PathEndpoints(net, h1, h2), rate_bps=40e6, duration=0.05)
        stats = chain.compare_core.stats
        assert stats.cleanups > 0
        assert_conservation(chain.compare_core)

    def test_k5_long_run(self):
        net, chain, h1, h2 = build_rig(k=5, seed=106)
        result = run_udp_flow(
            PathEndpoints(net, h1, h2), rate_bps=60e6, duration=0.1
        )
        assert result.received_unique > 400
        assert_conservation(chain.compare_core)
        # exactly k copies per delivered packet reached the compare
        stats = chain.compare_core.stats
        assert stats.released == result.received_unique
