"""Tests for the n-port shielded router (Figure 2 deployment unit)."""

import pytest

from repro.adversary import (
    BlackholeBehavior,
    HeaderRewriteBehavior,
    MirrorAndDropBehavior,
    PayloadCorruptionBehavior,
    dst_mac_rewrite,
    match_dst_mac,
    match_none,
)
from repro.core import (
    ALARM_SINGLE_SOURCE_PACKET,
    CompareConfig,
    ShieldedRouterParams,
    build_shielded_router,
)
from repro.net import Network, NetworkError, Packet
from repro.traffic.iperf import PathEndpoints, run_ping


def build_rig(k=3):
    """Three hosts hang off the shielded router, as off a 3-port switch."""
    net = Network(seed=4)
    shield = build_shielded_router(
        net,
        "sr",
        params=ShieldedRouterParams(
            k=k, compare=CompareConfig(k=k, buffer_timeout=2e-3)
        ),
    )
    hosts = [net.add_host(f"h{i}") for i in (1, 2, 3)]
    ports = {h.name: shield.attach_neighbor(h) for h in hosts}
    for h in hosts:
        shield.install_mac_route(h.mac, ports[h.name])
    return net, shield, hosts, ports


class TestBenign:
    def test_any_pair_can_ping(self):
        net, shield, (h1, h2, h3), _ = build_rig()
        for src, dst in [(h1, h2), (h2, h3), (h3, h1)]:
            result = run_ping(PathEndpoints(net, src, dst), count=3, interval=1e-3)
            assert result.received == 3

    def test_replicas_route_and_compare_votes(self):
        net, shield, (h1, h2, _h3), _ = build_rig()
        run_ping(PathEndpoints(net, h1, h2), count=2, interval=1e-3)
        stats = shield.compare_core.stats
        assert stats.submissions == 12  # 2 req + 2 rep, 3 replicas each
        assert stats.released == 4

    def test_no_duplicate_deliveries(self):
        net, shield, (h1, h2, _h3), _ = build_rig()
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.duplicates == 0

    def test_k1_degenerate_still_works(self):
        net, shield, (h1, h2, _h3), _ = build_rig(k=1)
        result = run_ping(PathEndpoints(net, h1, h2), count=3, interval=1e-3)
        assert result.received == 3


class TestAttacks:
    def test_rerouting_replica_is_outvoted(self):
        # replica 0 claims the wrong egress: vote (bytes, claim) fails
        # for its copy, the two honest claims win
        net, shield, (h1, h2, h3), ports = build_rig()
        HeaderRewriteBehavior(dst_mac_rewrite(h3.mac)).attach(shield.replica(0))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5
        assert h3.rx_foreign == 0  # nothing leaked toward h3

    def test_mirror_and_drop_is_fully_masked(self):
        net, shield, (h1, h2, h3), ports = build_rig()
        replica = shield.replica(2)
        mirror_port = shield._replica_port_for_claim[ports["h3"]][2]
        MirrorAndDropBehavior(
            mirror_port=mirror_port,
            mirror_selector=match_dst_mac(h2.mac),
            drop_selector=match_dst_mac(h1.mac),
        ).attach(replica)
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5  # drops masked by 2-of-3
        assert h3.rx_foreign == 0  # mirror copies never exit
        shield.compare_core.flush()
        assert shield.compare_core.alarms.count(ALARM_SINGLE_SOURCE_PACKET) >= 5

    def test_corruption_masked(self):
        net, shield, (h1, h2, _h3), _ = build_rig()
        PayloadCorruptionBehavior().attach(shield.replica(1))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5

    def test_blackhole_masked(self):
        net, shield, (h1, h2, _h3), _ = build_rig()
        BlackholeBehavior().attach(shield.replica(0))
        result = run_ping(PathEndpoints(net, h1, h2), count=5, interval=1e-3)
        assert result.received == 5


class TestWiring:
    def test_route_to_unattached_port_rejected(self):
        net, shield, (h1, _h2, _h3), _ = build_rig()
        with pytest.raises(NetworkError):
            shield.install_mac_route(h1.mac, 9999)

    def test_external_port_lookup(self):
        net, shield, (h1, _h2, _h3), ports = build_rig()
        assert shield.external_port_of("h1") == ports["h1"]

    def test_k_zero_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            build_shielded_router(net, "x", params=ShieldedRouterParams(k=0))

    def test_replica_has_one_port_per_external(self):
        net, shield, hosts, _ = build_rig()
        # 3 externals -> each replica has 3 links to the endpoint
        for replica in shield.replicas:
            assert len(replica.ports) == 3
