"""Transport-layer refactor invariants.

* DES bit-identity: the crash_restart chaos battery (24 seeds) and two
  instrumented fig5-style run reports, replayed through the
  transport-session code, must reproduce every field pinned in
  ``benchmarks/transport_baseline.json``.  New fields may appear
  (counters grow over PRs); pinned ones may not drift.
* wire framing round-trips and rejects malformed datagrams;
* loopback pairs and the redundant transport (fusion + first-copy-wins
  dedup, tracer hooks, stats rollups);
* UDP smoke: the live multi-process demo's verdict — alarms, quarantine
  transitions, released-sequence fingerprint — matches the DES twin on
  the same packet-index fault schedule.
"""

import json
import os

import pytest

from repro.analysis.tasks import chaos_run
from repro.chaos.schedule import builtin_battery
from repro.net import IpAddress, MacAddress, Packet
from repro.obs.summary import build_run_report
from repro.transport import (
    ROLE_COLLECT,
    ROLE_FANOUT,
    ROLE_RELEASE,
    LoopbackTransport,
    RedundantTransport,
    SessionSpec,
    TransportError,
)
from repro.transport.wire import (
    MSG_BYE,
    MSG_DATA,
    MSG_HELLO,
    decode_message,
    encode_message,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "transport_baseline.json"
)


def load_baseline():
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def assert_subset(baseline, current, path="$"):
    """Every baseline field must exist and be equal in current output.

    Keys *added* since the baseline was pinned are fine — stats grow over
    PRs — but a pinned value drifting means the refactor changed the DES
    backend's behaviour.
    """
    if isinstance(baseline, dict):
        assert isinstance(current, dict), f"{path}: expected dict, got {type(current).__name__}"
        for key, value in baseline.items():
            assert key in current, f"{path}.{key}: missing from current output"
            assert_subset(value, current[key], f"{path}.{key}")
    elif isinstance(baseline, list):
        assert isinstance(current, list), f"{path}: expected list, got {type(current).__name__}"
        assert len(baseline) == len(current), (
            f"{path}: length {len(current)} != baseline {len(baseline)}"
        )
        for index, (b_item, c_item) in enumerate(zip(baseline, current)):
            assert_subset(b_item, c_item, f"{path}[{index}]")
    else:
        assert baseline == current, f"{path}: {current!r} != baseline {baseline!r}"


# ----------------------------------------------------------------------
# DES bit-identity vs the pre-refactor baseline
# ----------------------------------------------------------------------
class TestDesBitIdentity:
    baseline = load_baseline()

    @pytest.mark.parametrize("seed", sorted(load_baseline()["chaos"], key=int))
    def test_chaos_record_identical(self, seed):
        workload = self.baseline["workloads"]["chaos"]
        schedule = builtin_battery()[workload["schedule"]].to_dict()
        record = chaos_run(
            schedule,
            int(seed),
            variant=workload["variant"],
            duration=workload["duration"],
        )
        assert_subset(self.baseline["chaos"][seed], record, f"chaos[{seed}]")

    @pytest.mark.parametrize("seed", sorted(load_baseline()["obs"], key=int))
    def test_obs_report_identical(self, seed):
        report, _runs = build_run_report(quick=True, seed=int(seed))
        assert_subset(self.baseline["obs"][seed], report.to_dict(), f"obs[{seed}]")


# ----------------------------------------------------------------------
# wire framing
# ----------------------------------------------------------------------
class TestWireFraming:
    def test_data_round_trip(self):
        payload = bytes(range(64))
        data = encode_message(
            MSG_DATA, ROLE_COLLECT, "sA", payload,
            branch=2, claim=7, seq=41, t_ns=123456789,
        )
        msg = decode_message(data)
        assert msg.mtype == MSG_DATA
        assert msg.role == ROLE_COLLECT
        assert msg.scope == "sA"
        assert msg.branch == 2
        assert msg.claim == 7
        assert msg.seq == 41
        assert msg.t_ns == 123456789
        assert msg.payload == payload
        assert msg.meta() == {"branch": 2, "claim": 7, "seq": 41}

    def test_none_branch_and_claim(self):
        msg = decode_message(encode_message(MSG_HELLO, ROLE_FANOUT, "compare"))
        assert msg.branch is None and msg.claim is None
        assert msg.payload == b""
        assert msg.mtype == MSG_HELLO

    def test_packet_payload_survives(self):
        packet = Packet.udp(
            MacAddress.from_index(1), MacAddress.from_index(2),
            IpAddress.from_index(1), IpAddress.from_index(2),
            50000, 5001, payload=b"x" * 40, ident=9,
        )
        data = encode_message(
            MSG_DATA, ROLE_FANOUT, "sA", bytes(packet.to_bytes()), branch=0,
        )
        decoded = Packet.parse(decode_message(data).payload)
        assert bytes(decoded.to_bytes()) == bytes(packet.to_bytes())

    def test_rejects_malformed(self):
        good = encode_message(MSG_BYE, ROLE_RELEASE, "sB")
        with pytest.raises(TransportError):
            decode_message(good[:4])  # truncated header
        with pytest.raises(TransportError):
            decode_message(b"XX" + good[2:])  # bad magic
        with pytest.raises(TransportError):
            decode_message(good[:2] + bytes([99]) + good[3:])  # bad version
        with pytest.raises(TransportError):
            encode_message(MSG_DATA, "sideways", "sA")  # unknown role
        with pytest.raises(TransportError):
            encode_message(MSG_DATA, ROLE_FANOUT, "s" * 300)  # scope too long


# ----------------------------------------------------------------------
# session registry, loopback, redundant fusion
# ----------------------------------------------------------------------
def _pkt(ident=0, payload=b"hello"):
    return Packet.udp(
        MacAddress.from_index(1), MacAddress.from_index(2),
        IpAddress.from_index(1), IpAddress.from_index(2),
        5, 5, payload=payload, ident=ident,
    )


class TestSessions:
    def test_session_memoised_by_spec(self):
        transport, _peer = LoopbackTransport.pair()
        spec = SessionSpec("sA", ROLE_COLLECT, 1)
        assert transport.session(spec) is transport.session(spec)
        assert transport.session(SessionSpec("sA", ROLE_COLLECT, 2)) is not (
            transport.session(spec)
        )

    def test_spec_validation(self):
        with pytest.raises(TransportError):
            SessionSpec("sA", "sideways").validate()
        with pytest.raises(TransportError):
            SessionSpec("", ROLE_COLLECT).validate()

    def test_loopback_pair_delivers_and_traces(self):
        a, b = LoopbackTransport.pair()
        spec = SessionSpec("sA", ROLE_COLLECT, 0)
        got, traces = [], []
        b.session(spec).set_receiver(lambda p, m: got.append((p, m)))
        a.add_tracer(traces.append)
        b.add_tracer(traces.append)
        packet = _pkt()
        a.session(spec).send(packet, branch=0, claim=3)
        assert len(got) == 1
        assert got[0][0] is packet
        assert got[0][1]["branch"] == 0 and got[0][1]["claim"] == 3
        assert [t.direction for t in traces] == ["tx", "rx"]
        assert a.stats()["collect:sA:0"]["tx_messages"] == 1
        assert b.stats()["collect:sA:0"]["rx_messages"] == 1

    def test_loopback_drop_without_receiver_session(self):
        a, _b = LoopbackTransport.pair()
        session = a.session(SessionSpec("sA", ROLE_FANOUT, 1))
        session.send(_pkt())
        assert session.stats.drops == 1

    def test_redundant_dedup_first_copy_wins(self):
        k = 3
        pairs = [LoopbackTransport.pair(f"inf{i}") for i in range(k)]
        red = RedundantTransport([a for a, _ in pairs], name="red")
        spec = SessionSpec("sA", ROLE_COLLECT)
        got = []
        fused = red.session(spec)
        fused.set_receiver(lambda p, m: got.append(m))
        # receivers on the far side loop each inferior straight back
        for index, (a, b) in enumerate(pairs):
            far = b.session(spec)
            near = a.session(spec)
            far.set_receiver(
                lambda p, m, s=far, i=index: s.send(p, branch=i)
            )
        fused.send(_pkt(ident=1))
        # one copy per inferior went out, exactly one was delivered up
        assert fused.stats.tx_messages == 1
        assert len(got) == 1
        assert fused.deduplicated == k - 1
        assert sum(fused.firsts.values()) == 1

    def test_redundant_straggler_after_window(self):
        a0, _b0 = LoopbackTransport.pair("w0")
        red = RedundantTransport([a0], window=2)
        spec = SessionSpec("sA", ROLE_COLLECT)
        got = []
        fused = red.session(spec)
        fused.set_receiver(lambda p, m: got.append(m["seq"]))
        # drive the merge hook straight through the inferior session
        inferior = fused.inferiors[0]
        inferior.deliver(_pkt(), {"branch": 0, "seq": 10})
        inferior.deliver(_pkt(), {"branch": 0, "seq": 10})
        assert fused.deduplicated == 1
        inferior.deliver(_pkt(), {"branch": 0, "seq": 11})
        inferior.deliver(_pkt(), {"branch": 0, "seq": 12})  # evicts 10
        inferior.deliver(_pkt(), {"branch": 0, "seq": 10})  # fresh again
        assert got == [10, 11, 12, 10]


# ----------------------------------------------------------------------
# UDP loopback smoke: live verdict == DES verdict
# ----------------------------------------------------------------------
class TestUdpSmoke:
    def test_udp_transport_loopback_delivery(self):
        """Two in-process UdpTransports exchange one framed packet."""
        import asyncio

        from repro.transport.udp import UdpTransport

        async def scenario():
            rx = UdpTransport(("127.0.0.1", 0), name="rx")
            await rx.start()
            tx = UdpTransport(("127.0.0.1", 0), name="tx")
            await tx.start()
            got = asyncio.Event()
            messages = []

            def on_message(packet, meta):
                messages.append((packet, meta))
                got.set()

            spec = SessionSpec("sA", ROLE_COLLECT, 2)
            rx.session(spec).set_receiver(on_message)
            tx.session(spec, remote=rx.local_address()).send(
                _pkt(ident=5), branch=2, claim=1
            )
            await asyncio.wait_for(got.wait(), timeout=5.0)
            tx.close()
            rx.close()
            return messages

        messages = asyncio.run(scenario())
        assert len(messages) == 1
        packet, meta = messages[0]
        assert meta["branch"] == 2 and meta["claim"] == 1 and meta["seq"] == 0
        assert bytes(packet.to_bytes()) == bytes(_pkt(ident=5).to_bytes())

    def test_live_demo_matches_des_twin(self):
        """The multi-process UDP demo and the DES backend agree on the
        verdict for the default crash schedule: same alarms, same
        quarantine transitions, same released-sequence fingerprint."""
        from repro.live.demo import run_live_demo

        report = run_live_demo(packets=120, interval=0.005)
        assert report["live"]["sent"] == 120
        assert report["live"]["released"] == 120  # crash masked by quorum
        assert ["branch_quarantined", 1] in report["live"]["alarms"]
        assert report["live"]["quarantined"] == [1]
        assert report["match"], f"verdicts differ: {report['diffs']}"
