"""Tests for seeded RNG streams and the trace bus."""

from repro.sim import RngStreams, TraceBus


class TestRngStreams:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RngStreams(42).stream("link.loss")
        b = RngStreams(42).stream("link.loss")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_are_independent(self):
        streams = RngStreams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(7)
        a_only = [s1.stream("a").random() for _ in range(5)]
        s2 = RngStreams(7)
        s2.stream("b").random()  # interleave a new consumer
        a_with_b = [s2.stream("a").random() for _ in range(5)]
        assert a_only == a_with_b

    def test_different_master_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic_and_distinct(self):
        base = RngStreams(3)
        f1 = base.fork("rep1").stream("x")
        f1_again = RngStreams(3).fork("rep1").stream("x")
        f2 = RngStreams(3).fork("rep2").stream("x")
        seq1 = [f1.random() for _ in range(5)]
        assert seq1 == [f1_again.random() for _ in range(5)]
        assert seq1 != [f2.random() for _ in range(5)]


class TestTraceBus:
    def test_emit_retains_records(self):
        bus = TraceBus()
        bus.emit(1.0, "link.drop", "link1", reason="queue")
        assert len(bus.records) == 1
        record = bus.records[0]
        assert record.topic == "link.drop"
        assert record.data["reason"] == "queue"

    def test_subscribe_by_topic(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("alarm", seen.append)
        bus.emit(0.0, "alarm", "compare")
        bus.emit(0.0, "other", "x")
        assert len(seen) == 1

    def test_wildcard_subscription(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("", seen.append)
        bus.emit(0.0, "a", "x")
        bus.emit(0.0, "b", "y")
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.unsubscribe("t", seen.append)
        bus.emit(0.0, "t", "x")
        assert seen == []

    def test_select_filters_topic_and_source(self):
        bus = TraceBus()
        bus.emit(0.0, "a", "s1")
        bus.emit(0.0, "a", "s2")
        bus.emit(0.0, "b", "s1")
        assert len(bus.select(topic="a")) == 2
        assert len(bus.select(source="s1")) == 2
        assert len(bus.select(topic="a", source="s1")) == 1

    def test_count(self):
        bus = TraceBus()
        for _ in range(3):
            bus.emit(0.0, "x", "s")
        assert bus.count("x") == 3
        assert bus.count("y") == 0

    def test_retention_bound(self):
        bus = TraceBus(max_records=5)
        for i in range(10):
            bus.emit(float(i), "t", "s")
        # 5 data records + the one-time saturation warning
        assert len(bus.records) == 6
        assert len(bus.select(topic="t")) == 5

    def test_saturation_warning_and_dropped_count(self):
        bus = TraceBus(max_records=3)
        for i in range(3):
            bus.emit(float(i), "t", "s")
        assert bus.dropped_count == 0
        assert bus.count(TraceBus.SATURATION_TOPIC) == 0

        for i in range(4):
            bus.emit(float(3 + i), "t", "s")
        assert bus.dropped_count == 4
        # the warning is emitted exactly once and is itself retained
        warnings = bus.select(topic=TraceBus.SATURATION_TOPIC)
        assert len(warnings) == 1
        assert warnings[0].data["max_records"] == 3
        assert warnings[0].data["first_dropped_topic"] == "t"

    def test_saturation_warning_reaches_listeners(self):
        bus = TraceBus(max_records=1)
        seen = []
        bus.subscribe(TraceBus.SATURATION_TOPIC, seen.append)
        bus.emit(0.0, "t", "s")
        bus.emit(1.0, "t", "s")
        assert len(seen) == 1

    def test_listeners_still_fire_after_saturation(self):
        bus = TraceBus(max_records=1)
        seen = []
        bus.subscribe("t", seen.append)
        for i in range(5):
            bus.emit(float(i), "t", "s")
        assert len(seen) == 5  # delivery is never truncated, only retention

    def test_retention_disabled(self):
        bus = TraceBus(retain=False)
        bus.emit(0.0, "t", "s")
        assert bus.records == []
        assert bus.dropped_count == 0  # disabling retention is not a drop

    def test_clear(self):
        bus = TraceBus(max_records=2)
        for i in range(4):
            bus.emit(float(i), "t", "s")
        bus.clear()
        assert bus.records == []
        assert bus.dropped_count == 0
        # the saturation warning re-arms after clear()
        for i in range(4):
            bus.emit(float(i), "t", "s")
        assert bus.count(TraceBus.SATURATION_TOPIC) == 1

    def test_clear_resets_topic_index(self):
        bus = TraceBus()
        bus.emit(0.0, "a", "s")
        bus.clear()
        assert bus.select(topic="a") == []
        assert bus.count("a") == 0
        assert bus.topics() == []
        bus.emit(1.0, "a", "s")
        assert bus.count("a") == 1


class TestTraceBusPrefixSubscriptions:
    def test_prefix_subscription_matches_topic_family(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("link.*", seen.append)
        bus.emit(0.0, "link.drop", "l1")
        bus.emit(0.0, "link.tx", "l1")
        bus.emit(0.0, "compare.release", "c")
        assert [r.topic for r in seen] == ["link.drop", "link.tx"]

    def test_prefix_without_dot_matches_same_way(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("link*", seen.append)
        bus.emit(0.0, "link.drop", "l1")
        bus.emit(0.0, "linkish", "x")
        assert len(seen) == 2

    def test_exact_and_prefix_and_catchall_each_fire_once(self):
        bus = TraceBus()
        order = []
        bus.subscribe("link.drop", lambda r: order.append("exact"))
        bus.subscribe("link.*", lambda r: order.append("prefix"))
        bus.subscribe("", lambda r: order.append("all"))
        bus.emit(0.0, "link.drop", "l1")
        assert order == ["exact", "prefix", "all"]

    def test_unsubscribe_prefix(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("link.*", seen.append)
        bus.unsubscribe("link.*", seen.append)
        bus.emit(0.0, "link.drop", "l1")
        assert seen == []

    def test_select_with_prefix_pattern_preserves_global_order(self):
        bus = TraceBus()
        bus.emit(0.0, "link.tx", "a")
        bus.emit(1.0, "compare.release", "c")
        bus.emit(2.0, "link.drop", "b")
        out = bus.select(topic="link.*")
        assert [(r.topic, r.source) for r in out] == [("link.tx", "a"), ("link.drop", "b")]

    def test_count_with_prefix_pattern(self):
        bus = TraceBus()
        bus.emit(0.0, "link.tx", "a")
        bus.emit(0.0, "link.drop", "a")
        bus.emit(0.0, "other", "a")
        assert bus.count("link.*") == 2

    def test_indexed_select_matches_scan(self):
        bus = TraceBus()
        for i in range(20):
            bus.emit(float(i), "a" if i % 3 else "b", f"s{i % 2}")
        indexed = bus.select(topic="a")
        scanned = [r for r in bus.records if r.topic == "a"]
        assert indexed == scanned
        assert bus.count("a") == len(scanned)
        assert bus.topics() == ["a", "b"]


class TestTraceBusSaturationContract:
    def test_listener_stream_warning_precedes_first_dropped_record(self):
        # Listeners see every record; the warning is injected immediately
        # BEFORE the first dropped record (it announces the drop).
        bus = TraceBus(max_records=2)
        seen = []
        bus.subscribe("", seen.append)
        for i in range(4):
            bus.emit(float(i), f"t{i}", "s")
        topics = [r.topic for r in seen]
        assert topics == ["t0", "t1", TraceBus.SATURATION_TOPIC, "t2", "t3"]

    def test_retained_log_ends_with_warning_not_the_dropped_record(self):
        # Retention diverges from the listener stream at the first drop:
        # the warning is the final retained entry and the dropped record
        # itself is gone.
        bus = TraceBus(max_records=2)
        for i in range(4):
            bus.emit(float(i), f"t{i}", "s")
        topics = [r.topic for r in bus.records]
        assert topics == ["t0", "t1", TraceBus.SATURATION_TOPIC]
        assert bus.dropped_count == 2
