"""Tests for seeded RNG streams and the trace bus."""

from repro.sim import RngStreams, TraceBus


class TestRngStreams:
    def test_same_seed_same_stream_is_reproducible(self):
        a = RngStreams(42).stream("link.loss")
        b = RngStreams(42).stream("link.loss")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_are_independent(self):
        streams = RngStreams(42)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(7)
        a_only = [s1.stream("a").random() for _ in range(5)]
        s2 = RngStreams(7)
        s2.stream("b").random()  # interleave a new consumer
        a_with_b = [s2.stream("a").random() for _ in range(5)]
        assert a_only == a_with_b

    def test_different_master_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic_and_distinct(self):
        base = RngStreams(3)
        f1 = base.fork("rep1").stream("x")
        f1_again = RngStreams(3).fork("rep1").stream("x")
        f2 = RngStreams(3).fork("rep2").stream("x")
        seq1 = [f1.random() for _ in range(5)]
        assert seq1 == [f1_again.random() for _ in range(5)]
        assert seq1 != [f2.random() for _ in range(5)]


class TestTraceBus:
    def test_emit_retains_records(self):
        bus = TraceBus()
        bus.emit(1.0, "link.drop", "link1", reason="queue")
        assert len(bus.records) == 1
        record = bus.records[0]
        assert record.topic == "link.drop"
        assert record.data["reason"] == "queue"

    def test_subscribe_by_topic(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("alarm", seen.append)
        bus.emit(0.0, "alarm", "compare")
        bus.emit(0.0, "other", "x")
        assert len(seen) == 1

    def test_wildcard_subscription(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("", seen.append)
        bus.emit(0.0, "a", "x")
        bus.emit(0.0, "b", "y")
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = TraceBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.unsubscribe("t", seen.append)
        bus.emit(0.0, "t", "x")
        assert seen == []

    def test_select_filters_topic_and_source(self):
        bus = TraceBus()
        bus.emit(0.0, "a", "s1")
        bus.emit(0.0, "a", "s2")
        bus.emit(0.0, "b", "s1")
        assert len(bus.select(topic="a")) == 2
        assert len(bus.select(source="s1")) == 2
        assert len(bus.select(topic="a", source="s1")) == 1

    def test_count(self):
        bus = TraceBus()
        for _ in range(3):
            bus.emit(0.0, "x", "s")
        assert bus.count("x") == 3
        assert bus.count("y") == 0

    def test_retention_bound(self):
        bus = TraceBus(max_records=5)
        for i in range(10):
            bus.emit(float(i), "t", "s")
        # 5 data records + the one-time saturation warning
        assert len(bus.records) == 6
        assert len(bus.select(topic="t")) == 5

    def test_saturation_warning_and_dropped_count(self):
        bus = TraceBus(max_records=3)
        for i in range(3):
            bus.emit(float(i), "t", "s")
        assert bus.dropped_count == 0
        assert bus.count(TraceBus.SATURATION_TOPIC) == 0

        for i in range(4):
            bus.emit(float(3 + i), "t", "s")
        assert bus.dropped_count == 4
        # the warning is emitted exactly once and is itself retained
        warnings = bus.select(topic=TraceBus.SATURATION_TOPIC)
        assert len(warnings) == 1
        assert warnings[0].data["max_records"] == 3
        assert warnings[0].data["first_dropped_topic"] == "t"

    def test_saturation_warning_reaches_listeners(self):
        bus = TraceBus(max_records=1)
        seen = []
        bus.subscribe(TraceBus.SATURATION_TOPIC, seen.append)
        bus.emit(0.0, "t", "s")
        bus.emit(1.0, "t", "s")
        assert len(seen) == 1

    def test_listeners_still_fire_after_saturation(self):
        bus = TraceBus(max_records=1)
        seen = []
        bus.subscribe("t", seen.append)
        for i in range(5):
            bus.emit(float(i), "t", "s")
        assert len(seen) == 5  # delivery is never truncated, only retention

    def test_retention_disabled(self):
        bus = TraceBus(retain=False)
        bus.emit(0.0, "t", "s")
        assert bus.records == []
        assert bus.dropped_count == 0  # disabling retention is not a drop

    def test_clear(self):
        bus = TraceBus(max_records=2)
        for i in range(4):
            bus.emit(float(i), "t", "s")
        bus.clear()
        assert bus.records == []
        assert bus.dropped_count == 0
        # the saturation warning re-arms after clear()
        for i in range(4):
            bus.emit(float(i), "t", "s")
        assert bus.count(TraceBus.SATURATION_TOPIC) == 1
