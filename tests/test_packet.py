"""Tests for packet headers, serialisation and the compare-relevant
identity semantics (bit-exact equality, deep copies, out-of-band meta)."""

import pytest

from repro.net import (
    ETH_TYPE_IPV4,
    ETH_TYPE_VLAN,
    Ethernet,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Icmp,
    IpAddress,
    Ipv4,
    MacAddress,
    Packet,
    PacketError,
    TCP_ACK,
    TCP_SYN,
    Tcp,
    Udp,
    Vlan,
    internet_checksum,
)

M1 = MacAddress.from_index(1)
M2 = MacAddress.from_index(2)
IP1 = IpAddress("10.0.0.1")
IP2 = IpAddress("10.0.0.2")


def make_udp(payload=b"hello", ident=7, vlan=None):
    return Packet.udp(M1, M2, IP1, IP2, 1234, 5678, payload=payload, ident=ident,
                      vlan=vlan)


class TestChecksum:
    def test_rfc1071_known_vector(self):
        # classic example: header sums to 0 when checksum included
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert internet_checksum(data) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF


class TestHeaderRoundTrips:
    def test_ethernet(self):
        eth = Ethernet(M2, M1, ETH_TYPE_IPV4)
        parsed, rest = Ethernet.from_bytes(eth.to_bytes() + b"xx")
        assert parsed.dst == M2 and parsed.src == M1
        assert parsed.ethertype == ETH_TYPE_IPV4
        assert rest == b"xx"

    def test_ethernet_truncated(self):
        with pytest.raises(PacketError):
            Ethernet.from_bytes(b"\x00" * 10)

    def test_vlan(self):
        vlan = Vlan(vid=100, pcp=5)
        raw = vlan.to_bytes(ETH_TYPE_IPV4)
        parsed, inner, rest = Vlan.from_bytes(raw)
        assert parsed.vid == 100 and parsed.pcp == 5
        assert inner == ETH_TYPE_IPV4

    def test_vlan_range_checks(self):
        with pytest.raises(PacketError):
            Vlan(4096)
        with pytest.raises(PacketError):
            Vlan(1, pcp=8)

    def test_ipv4_roundtrip_and_checksum(self):
        ip = Ipv4(IP1, IP2, IP_PROTO_UDP, ttl=33, ident=999, tos=4)
        raw = ip.to_bytes(payload_len=100)
        assert internet_checksum(raw) == 0  # valid checksum
        parsed, rest = Ipv4.from_bytes(raw + b"p" * 100)
        assert parsed.src == IP1 and parsed.dst == IP2
        assert parsed.ttl == 33 and parsed.ident == 999 and parsed.tos == 4
        assert parsed.total_length == 120

    def test_ipv4_bad_checksum_rejected(self):
        raw = bytearray(Ipv4(IP1, IP2, IP_PROTO_UDP).to_bytes(0))
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(PacketError):
            Ipv4.from_bytes(bytes(raw))

    def test_udp_roundtrip(self):
        ip = Ipv4(IP1, IP2, IP_PROTO_UDP)
        udp = Udp(1234, 5678)
        raw = udp.to_bytes(ip, b"payload")
        parsed, payload = Udp.from_bytes(raw + b"payload")
        assert (parsed.sport, parsed.dport) == (1234, 5678)

    def test_udp_port_range(self):
        with pytest.raises(PacketError):
            Udp(65536, 1)

    def test_tcp_roundtrip(self):
        ip = Ipv4(IP1, IP2, IP_PROTO_TCP)
        tcp = Tcp(1, 2, seq=100, ack=200, flags=TCP_SYN | TCP_ACK, window=4096)
        raw = tcp.to_bytes(ip, b"")
        parsed, payload = Tcp.from_bytes(raw)
        assert parsed.seq == 100 and parsed.ack == 200
        assert parsed.flag(TCP_SYN) and parsed.flag(TCP_ACK)
        assert parsed.window == 4096

    def test_tcp_flags_str(self):
        assert Tcp(1, 2, flags=TCP_SYN | TCP_ACK).flags_str() == "SA"
        assert Tcp(1, 2).flags_str() == "."

    def test_icmp_roundtrip(self):
        icmp = Icmp(ICMP_ECHO_REQUEST, ident=7, seqno=3)
        raw = icmp.to_bytes(b"data")
        parsed, payload = Icmp.from_bytes(raw + b"data")
        assert parsed.is_echo_request
        assert parsed.ident == 7 and parsed.seqno == 3

    def test_icmp_reply_predicates(self):
        assert Icmp(ICMP_ECHO_REPLY).is_echo_reply
        assert not Icmp(ICMP_ECHO_REPLY).is_echo_request


class TestPacket:
    def test_udp_packet_roundtrip(self):
        packet = make_udp()
        assert Packet.parse(packet.to_bytes()) == packet

    def test_tcp_packet_roundtrip(self):
        packet = Packet.tcp(M1, M2, IP1, IP2, 40000, 5001, seq=5, ack=9,
                            flags=TCP_ACK, payload=b"x" * 100)
        assert Packet.parse(packet.to_bytes()) == packet

    def test_icmp_packet_roundtrip(self):
        packet = Packet.icmp_echo(M1, M2, IP1, IP2, ident=3, seqno=9)
        assert Packet.parse(packet.to_bytes()) == packet

    def test_vlan_packet_roundtrip(self):
        packet = make_udp(vlan=Vlan(42, pcp=3))
        raw = packet.to_bytes()
        parsed = Packet.parse(raw)
        assert parsed.vlan is not None and parsed.vlan.vid == 42
        assert parsed == packet
        # the outer ethertype on the wire is the 802.1Q TPID
        assert raw[12:14] == ETH_TYPE_VLAN.to_bytes(2, "big")

    def test_wire_len_matches_serialisation(self):
        for packet in (
            make_udp(payload=b"x" * 321),
            make_udp(vlan=Vlan(9)),
            Packet.tcp(M1, M2, IP1, IP2, 1, 2, payload=b"y" * 10),
            Packet.icmp_echo(M1, M2, IP1, IP2, 1, 1, payload=b"z" * 56),
            Packet(Ethernet(M2, M1, 0x88B5), payload=b"raw"),
        ):
            assert packet.wire_len == len(packet.to_bytes())

    def test_equality_is_bitwise(self):
        a, b = make_udp(ident=1), make_udp(ident=1)
        assert a == b and hash(a) == hash(b)
        c = make_udp(ident=2)  # different IP ident -> different bits
        assert a != c

    def test_payload_difference_changes_identity(self):
        assert make_udp(payload=b"aaaa") != make_udp(payload=b"aaab")

    def test_copy_is_deep(self):
        original = make_udp()
        dup = original.copy()
        dup.eth.src = M2
        dup.ip.ttl = 1
        assert original.eth.src == M1
        assert original.ip.ttl == 64
        assert original != dup

    def test_copy_preserves_equality_before_mutation(self):
        original = make_udp(vlan=Vlan(5))
        assert original.copy() == original

    def test_meta_not_part_of_identity_or_copy(self):
        packet = make_udp()
        packet.meta = {"branch": 2}
        other = make_udp()
        assert packet == other
        assert packet.copy().meta is None

    def test_transport_requires_ip(self):
        with pytest.raises(PacketError):
            Packet(Ethernet(M2, M1), l4=Udp(1, 2))

    def test_non_ip_packet_roundtrip(self):
        packet = Packet(Ethernet(M2, M1, 0x88B5), payload=b"opaque")
        parsed = Packet.parse(packet.to_bytes())
        assert parsed.payload == b"opaque"
        assert parsed.ip is None

    def test_summary_mentions_addresses(self):
        text = make_udp().summary()
        assert "10.0.0.1" in text and "10.0.0.2" in text
