"""Tests for the legacy IPv4 router and its combiner integration
(the Section IX 'extends to legacy routers' claim)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IpAddress, MacAddress, Network, Packet
from repro.net.legacy import ICMP_TIME_EXCEEDED, LegacyRouter, RouteEntry


def make_router(net, name="r1", **kwargs):
    router = LegacyRouter(
        net.sim,
        name,
        mac=MacAddress.from_index(200),
        ip=IpAddress("10.0.255.1"),
        trace_bus=net.trace,
        **kwargs,
    )
    net.add_node(router)
    return router


class TestLpm:
    def test_longest_prefix_wins(self):
        net = Network()
        router = make_router(net)
        m = MacAddress.from_index
        router.add_route(IpAddress("10.0.0.0"), 8, 1, m(1))
        router.add_route(IpAddress("10.1.0.0"), 16, 2, m(2))
        router.add_route(IpAddress("10.1.2.0"), 24, 3, m(3))
        assert router.lookup(IpAddress("10.9.9.9")).out_port == 1
        assert router.lookup(IpAddress("10.1.9.9")).out_port == 2
        assert router.lookup(IpAddress("10.1.2.3")).out_port == 3

    def test_default_route(self):
        net = Network()
        router = make_router(net)
        router.add_default_route(5, MacAddress.from_index(9))
        assert router.lookup(IpAddress("192.168.1.1")).out_port == 5

    def test_no_route(self):
        net = Network()
        router = make_router(net)
        router.add_route(IpAddress("10.0.0.0"), 8, 1, MacAddress.from_index(1))
        assert router.lookup(IpAddress("11.0.0.1")) is None

    def test_invalid_prefix_len(self):
        net = Network()
        router = make_router(net)
        with pytest.raises(ValueError):
            router.add_route(IpAddress("10.0.0.0"), 33, 1, MacAddress.from_index(1))

    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1),
                st.integers(0, 32),
                st.integers(1, 8),
            ),
            min_size=1,
            max_size=12,
        ),
        st.integers(0, (1 << 32) - 1),
    )
    @settings(max_examples=150)
    def test_lpm_matches_bruteforce(self, routes, probe):
        net = Network()
        router = make_router(net)
        entries = []
        for addr, plen, port in routes:
            entry = RouteEntry(
                IpAddress(addr), plen, port, MacAddress.from_index(port)
            )
            entries.append(entry)
            router.add_route(entry.prefix, plen, port, entry.next_hop_mac)
        ip = IpAddress(probe)
        expected = max(
            (e for e in entries if e.matches(ip)),
            key=lambda e: e.prefix_len,
            default=None,
        )
        got = router.lookup(ip)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.prefix_len == expected.prefix_len


class TestForwarding:
    def rig(self):
        """h1 -- r1 -- r2 -- h2 across three subnets."""
        net = Network(seed=21)
        h1 = net.add_host("h1", ip=IpAddress("10.1.0.10"))
        h2 = net.add_host("h2", ip=IpAddress("10.2.0.10"))
        r1 = LegacyRouter(net.sim, "r1", MacAddress.from_index(101),
                          IpAddress("10.1.0.1"), trace_bus=net.trace)
        r2 = LegacyRouter(net.sim, "r2", MacAddress.from_index(102),
                          IpAddress("10.2.0.1"), trace_bus=net.trace)
        net.add_node(r1)
        net.add_node(r2)
        net.connect(h1, r1)
        net.connect(r1, r2)
        net.connect(r2, h2)
        r1.add_route(IpAddress("10.2.0.0"), 16,
                     net.port_no_between("r1", "r2"), r2.mac)
        r1.add_route(IpAddress("10.1.0.0"), 16,
                     net.port_no_between("r1", "h1"), h1.mac)
        r2.add_route(IpAddress("10.2.0.0"), 16,
                     net.port_no_between("r2", "h2"), h2.mac)
        r2.add_route(IpAddress("10.1.0.0"), 16,
                     net.port_no_between("r2", "r1"), r1.mac)
        return net, h1, h2, r1, r2

    def test_two_hop_ping(self):
        net, h1, h2, r1, r2 = self.rig()
        replies = []
        h1.bind_icmp(replies.append)
        # h1 sends to its gateway's MAC, final IP dst
        h1.send(Packet.icmp_echo(h1.mac, r1.mac, h1.ip, h2.ip, 1, 1))
        net.run()
        assert len(replies) == 1
        assert replies[0].l4.is_echo_reply
        assert r1.forwarded == 2 and r2.forwarded == 2  # request + reply

    def test_ttl_decremented_per_hop(self):
        net, h1, h2, r1, r2 = self.rig()
        seen = []
        h2.bind_raw(seen.append)
        packet = Packet.icmp_echo(h1.mac, r1.mac, h1.ip, h2.ip, 1, 1, ttl=64)
        h1.send(packet)
        net.run(until=0.01)
        assert seen[0].ip.ttl == 62

    def test_mac_rewritten_per_hop(self):
        net, h1, h2, r1, r2 = self.rig()
        seen = []
        h2.bind_raw(seen.append)
        h1.send(Packet.icmp_echo(h1.mac, r1.mac, h1.ip, h2.ip, 1, 1))
        net.run(until=0.01)
        assert seen[0].eth.src == r2.mac
        assert seen[0].eth.dst == h2.mac

    def test_ttl_expiry_generates_time_exceeded(self):
        net, h1, h2, r1, r2 = self.rig()
        errors = []
        h1.bind_icmp(errors.append)
        h1.send(Packet.icmp_echo(h1.mac, r1.mac, h1.ip, h2.ip, 1, 1, ttl=2))
        net.run(until=0.01)
        # request dies at r2 (ttl 2 -> 1 at r1, <=1 at r2)
        assert len(errors) == 1
        assert errors[0].l4.icmp_type == ICMP_TIME_EXCEEDED
        assert errors[0].ip.src == r2.ip
        assert len(errors[0].payload) > 0  # quotes the offending header

    def test_no_route_drops(self):
        net, h1, h2, r1, r2 = self.rig()
        h1.send(
            Packet.icmp_echo(h1.mac, r1.mac, h1.ip, IpAddress("99.9.9.9"), 1, 1)
        )
        net.run(until=0.01)
        assert r1.dropped_no_route == 1

    def test_wrong_dst_mac_ignored(self):
        net, h1, h2, r1, r2 = self.rig()
        h1.send(Packet.icmp_echo(h1.mac, h2.mac, h1.ip, h2.ip, 1, 1))
        net.run(until=0.01)
        assert r1.dropped_not_for_us == 1

    def test_non_ip_dropped(self):
        from repro.net import Ethernet

        net, h1, h2, r1, r2 = self.rig()
        h1.send(Packet(Ethernet(r1.mac, h1.mac, 0x88B5), payload=b"x"))
        net.run(until=0.01)
        assert r1.dropped_no_route == 1


class TestLegacyCombiner:
    """The Section IX claim: NetCo over legacy routers.

    Each branch is a LegacyRouter; because every hop rewrites eth.src,
    the compare votes with the source-masked policy.  TTL decrement is
    identical across branches, so the copies agree on everything else.
    """

    def build(self, k=3):
        from repro.core import (
            CombinerEndpoint,
            CompareConfig,
            CompareCore,
            mask_src_mac_policy,
            BitExactPolicy,
        )
        from repro.core.combiner import CompareHost

        net = Network(seed=22)
        h1 = net.add_host("h1", ip=IpAddress("10.1.0.10"))
        h2 = net.add_host("h2", ip=IpAddress("10.2.0.10"))
        endpoint_a = CombinerEndpoint(net.sim, "sA", trace_bus=net.trace)
        endpoint_b = CombinerEndpoint(net.sim, "sB", trace_bus=net.trace)
        net.add_node(endpoint_a)
        net.add_node(endpoint_b)
        net.connect(h1, endpoint_a)
        net.connect(h2, endpoint_b)

        routers = []
        for i in range(k):
            router = LegacyRouter(
                net.sim, f"lr{i}", MacAddress.from_index(150 + i),
                IpAddress(f"10.9.0.{i + 1}"), trace_bus=net.trace,
                accept_any_dst_mac=True,
            )
            net.add_node(router)
            link_a = net.connect(endpoint_a, router)
            net.connect(router, endpoint_b)
            endpoint_a.assign_branch(link_a.a.port_no, i)
            endpoint_b.assign_branch(
                net.port_no_between("sB", router.name), i
            )
            router.add_route(IpAddress("10.2.0.0"), 16,
                             net.port_no_between(router.name, "sB"), h2.mac)
            router.add_route(IpAddress("10.1.0.0"), 16,
                             net.port_no_between(router.name, "sA"), h1.mac)
            routers.append(router)

        config = CompareConfig(
            k=k,
            buffer_timeout=2e-3,
            policy=mask_src_mac_policy(BitExactPolicy()),
        )
        core = CompareCore(net.sim, config, trace_bus=net.trace)
        host = CompareHost(net.sim, "h3", core, trace_bus=net.trace)
        net.add_node(host)
        for endpoint in (endpoint_a, endpoint_b):
            net.connect(endpoint, host)
            endpoint.assign_compare_port(
                net.port_no_between(endpoint.name, "h3")
            )
            host.register_endpoint(
                net.port_no_between("h3", endpoint.name), endpoint
            )
        return net, h1, h2, routers, core

    def test_benign_legacy_bundle_delivers(self):
        net, h1, h2, routers, core = self.build()
        replies = []
        h1.bind_icmp(replies.append)
        for i in range(5):
            net.sim.schedule(
                i * 1e-3,
                lambda i=i: h1.send(
                    Packet.icmp_echo(
                        h1.mac, routers[0].mac, h1.ip, h2.ip, 1, i,
                        ip_ident=h1.next_ip_ident(),
                    )
                ),
            )
        net.run(until=0.05)
        assert len(replies) == 5
        assert core.stats.released == 10  # 5 requests + 5 replies

    def test_malicious_legacy_router_masked(self):
        net, h1, h2, routers, core = self.build()
        # router 2 blackholes h2-bound traffic: a misrouting legacy box
        routers[2]._routes = [
            r for r in routers[2]._routes if str(r.prefix) != "10.2.0.0"
        ]
        replies = []
        h1.bind_icmp(replies.append)
        for i in range(5):
            net.sim.schedule(
                i * 1e-3,
                lambda i=i: h1.send(
                    Packet.icmp_echo(
                        h1.mac, routers[0].mac, h1.ip, h2.ip, 1, i,
                        ip_ident=h1.next_ip_ident(),
                    )
                ),
            )
        net.run(until=0.05)
        assert len(replies) == 5  # 2-of-3 quorum carries the traffic
