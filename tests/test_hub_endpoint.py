"""Tests for the pure hub and the trusted combiner endpoints."""

import pytest

from repro.core import (
    ALARM_SPOOFED_BRANCH,
    CompareConfig,
    CompareCore,
    CombinerEndpoint,
    Hub,
    MODE_COMBINE,
    MODE_DUP,
    branch_marker,
)
from repro.net import Network, Packet
from repro.net.node import NetworkError


def udp(a, b, ident=0):
    return Packet.udp(a.mac, b.mac, a.ip, b.ip, 1, 5001, ident=ident)


class TestHub:
    def build(self, branches=3):
        net = Network(seed=1)
        hub = Hub(net.sim, "hub", trace_bus=net.trace)
        net.add_node(hub)
        up = net.add_host("up", promiscuous=True)
        net.connect(up, hub, port_b=1)
        sinks = []
        for i in range(branches):
            sink = net.add_host(f"d{i}", promiscuous=True)
            net.connect(hub, sink)
            sinks.append(sink)
        return net, hub, up, sinks

    def test_duplicates_to_every_branch(self):
        net, hub, up, sinks = self.build()
        got = {i: [] for i in range(3)}
        for i, sink in enumerate(sinks):
            sink.bind_raw(got[i].append)
        up.send(udp(up, sinks[0]))
        net.run()
        assert all(len(got[i]) == 1 for i in range(3))
        assert hub.duplicated == 3
        assert hub.branch_count == 3

    def test_copies_are_independent_objects(self):
        net, hub, up, sinks = self.build(branches=2)
        received = []
        for sink in sinks:
            sink.bind_raw(received.append)
        up.send(udp(up, sinks[0]))
        net.run()
        assert received[0] is not received[1]
        assert received[0] == received[1]

    def test_merges_reverse_direction(self):
        net, hub, up, sinks = self.build()
        got = []
        up.bind_raw(got.append)
        sinks[1].send(udp(sinks[1], up))
        net.run()
        assert len(got) == 1
        assert hub.merged == 1


def build_endpoint_rig(mode=MODE_COMBINE, mark_sources=False, k=3):
    """An endpoint with one external host, k branch sinks and an
    in-process compare backing (combine mode)."""
    net = Network(seed=1)
    endpoint = CombinerEndpoint(
        net.sim, "e", trace_bus=net.trace, mode=mode, mark_sources=mark_sources
    )
    net.add_node(endpoint)
    ext = net.add_host("ext", promiscuous=True)
    net.connect(ext, endpoint)
    branches = []
    for i in range(k):
        sink = net.add_host(f"r{i}", promiscuous=True)
        link = net.connect(endpoint, sink)
        endpoint.assign_branch(link.a.port_no, i)
        branches.append(sink)
    return net, endpoint, ext, branches


class TestEndpointHubRole:
    def test_external_ingress_duplicated_to_branches(self):
        net, endpoint, ext, branches = build_endpoint_rig(mode=MODE_DUP)
        got = {i: [] for i in range(3)}
        for i, sink in enumerate(branches):
            sink.bind_raw(got[i].append)
        ext.send(udp(ext, branches[0]))
        net.run()
        assert all(len(got[i]) == 1 for i in range(3))
        assert endpoint.estats.duplicated == 3

    def test_source_marking_rewrites_dl_src(self):
        net, endpoint, ext, branches = build_endpoint_rig(
            mode=MODE_DUP, mark_sources=True
        )
        got = []
        branches[1].bind_raw(got.append)
        ext.send(udp(ext, branches[1]))
        net.run()
        assert got[0].eth.src == branch_marker(1)

    def test_mac_learning_on_external_ingress(self):
        net, endpoint, ext, branches = build_endpoint_rig(mode=MODE_DUP)
        ext.send(udp(ext, branches[0]))
        net.run()
        ext_port = net.port_no_between("e", "ext")
        assert endpoint._mac_table[ext.mac] == ext_port


class TestEndpointDupMode:
    def test_branch_arrivals_forwarded_unfiltered(self):
        net, endpoint, ext, branches = build_endpoint_rig(mode=MODE_DUP)
        got = []
        ext.bind_raw(got.append)
        packet = udp(branches[0], ext)
        for sink in branches:
            sink.send(packet.copy())
        net.run()
        assert len(got) == 3  # duplicates pass through

    def test_unknown_destination_floods_external_only(self):
        net, endpoint, ext, branches = build_endpoint_rig(mode=MODE_DUP)
        ext2 = net.add_host("ext2", promiscuous=True)
        net.connect(ext2, endpoint)
        got_ext, got_ext2, got_branch = [], [], []
        ext.bind_raw(got_ext.append)
        ext2.bind_raw(got_ext2.append)
        branches[1].bind_raw(got_branch.append)
        branches[0].send(udp(branches[0], ext2))
        net.run()
        # flooded to both external hosts, never back into branches
        assert len(got_ext) == 1 and len(got_ext2) == 1
        assert got_branch == []


class TestEndpointCombineMode:
    def build_combine(self, mark_sources=False):
        net, endpoint, ext, branches = build_endpoint_rig(
            mode=MODE_COMBINE, mark_sources=mark_sources
        )
        core = CompareCore(
            net.sim, CompareConfig(k=3, buffer_timeout=0.01), trace_bus=net.trace
        )
        # in-process attachment (as the virtualized egress uses it)
        context = endpoint.compare_context()
        endpoint._submit_to_compare = (  # route submissions directly
            lambda packet, branch, claim=None: core.submit(
                packet, branch, context, claim=claim
            )
        )
        return net, endpoint, ext, branches, core

    def test_majority_released_to_external(self):
        net, endpoint, ext, branches, core = self.build_combine()
        got = []
        ext.bind_raw(got.append)
        packet = udp(branches[0], ext)
        # teach the endpoint where ext lives
        ext.send(udp(ext, branches[0], ident=99))
        net.run()
        for sink in branches[:2]:
            sink.send(packet.copy())
        net.run(until=net.sim.now + 0.05)
        delivered = [p for p in got if p.ip.ident == 0]
        assert len(delivered) == 1
        assert endpoint.estats.released_out == 1

    def test_minority_never_leaves(self):
        net, endpoint, ext, branches, core = self.build_combine()
        got = []
        ext.bind_raw(got.append)
        branches[2].send(udp(branches[2], ext))
        net.run(until=0.05)
        assert got == []

    def test_spoofed_marker_dropped_with_alarm(self):
        net, endpoint, ext, branches, core = self.build_combine(mark_sources=True)
        spoofed = udp(branches[0], ext)
        spoofed.eth.src = branch_marker(2)  # branch 0 claims to be branch 2
        branches[0].send(spoofed)
        net.run(until=0.01)
        assert endpoint.estats.spoof_drops == 1
        assert endpoint.alarms.count(ALARM_SPOOFED_BRANCH) == 1

    def test_release_honours_claim_port(self):
        net, endpoint, ext, branches, core = self.build_combine()
        ext2 = net.add_host("ext2", promiscuous=True)
        net.connect(ext2, endpoint)
        claim = net.port_no_between("e", "ext2")
        got_ext, got_ext2 = [], []
        ext.bind_raw(got_ext.append)
        ext2.bind_raw(got_ext2.append)
        packet = udp(branches[0], ext)  # dst mac is ext's...
        packet.meta = {"claim": claim}
        endpoint.handle_release(packet)
        net.run()
        # ...but the claim wins over the MAC table
        assert len(got_ext2) == 1 and got_ext == []


class TestEndpointWiring:
    def test_duplicate_branch_port_rejected(self):
        net, endpoint, _ext, _branches = build_endpoint_rig()
        port_no = endpoint.branch_ports[0]
        with pytest.raises(NetworkError):
            endpoint.assign_branch(port_no, 9)

    def test_invalid_mode_rejected(self):
        net = Network(seed=1)
        with pytest.raises(ValueError):
            CombinerEndpoint(net.sim, "bad", mode="nonsense")

    def test_branch_introspection(self):
        _net, endpoint, _ext, _branches = build_endpoint_rig()
        assert endpoint.branch_ids == [0, 1, 2]
        assert endpoint.branch_of_port(endpoint.port_of_branch(1)) == 1
        assert endpoint.branch_of_port(999) is None

    def test_external_ports_excludes_branches_and_compare(self):
        net, endpoint, ext, _branches = build_endpoint_rig()
        externals = endpoint.external_ports()
        assert externals == [net.port_no_between("e", "ext")]

    def test_block_branch_ingress(self):
        net, endpoint, ext, branches = build_endpoint_rig(mode=MODE_DUP)
        got = []
        ext.bind_raw(got.append)
        endpoint.block_branch_ingress(0, duration=1.0)
        branches[0].send(udp(branches[0], ext))
        net.run(until=0.1)
        assert got == []

    def test_submit_without_compare_attachment_raises(self):
        net, endpoint, _ext, branches = build_endpoint_rig(mode=MODE_COMBINE)
        with pytest.raises(NetworkError):
            branches[0].send(udp(branches[0], _ext))
            net.run()
