"""Fleet event log: schema, gapless sequencing, farm integration, replay.

The satellite property test at the bottom runs 24 seeded farm workloads
through an :class:`EventLogWriter` and asserts the two log invariants
end to end: JSONL sequence numbers are gapless, and replaying the log
reproduces the final :class:`FarmProgress` rollup exactly — serially and
under ``--jobs 2`` process-pool sharding.
"""

import io
import json
import os

import pytest

from repro.farm import (
    FarmExecutor,
    FarmProgress,
    ResultCache,
    RunSpec,
    register_runner,
)
from repro.obs.events import (
    EventLogError,
    EventLogWriter,
    FarmEventLogger,
    FleetEvent,
    ROLLUP_FIELDS,
    check_replay,
    read_events,
    replay_rollup,
    run_digest,
    validate_events,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.sim import TraceBus

# ----------------------------------------------------------------------
# module-level task functions (spawn-started workers must resolve them)
# ----------------------------------------------------------------------


@register_runner("fleet.echo")
def fleet_echo_task(value, seed=0):
    return {"value": value, "seed": seed}


@register_runner("fleet.alarmed")
def fleet_alarmed_task(seed=0):
    """A result dict shaped like a chaos/ctrl run: digest-worthy."""
    return {
        "alarms": {"s1": 2, "s2": 1},
        "quarantined": [["s1", 0.01]],
        "detection_latency": 0.0042,
        "injections": [{"time": 0.005, "kind": "crash", "target": "s1"}],
        "ctrl": {"blocked": 3, "malicious_released": 0},
    }


@register_runner("fleet.crash_once")
def fleet_crash_once_task(flag_path, seed=0):
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(3)
    return "retried-ok"


# ----------------------------------------------------------------------
# writer mechanics
# ----------------------------------------------------------------------
class TestEventLogWriter:
    def test_open_close_cycle(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = EventLogWriter(path, name="t", meta={"seed": 1})
        writer.append("farm.task.queued", "farm", runner="r", key="k")
        writer.close()
        events = read_events(path)
        assert [e.kind for e in events] == [
            "log.open", "farm.task.queued", "log.close",
        ]
        assert [e.seq for e in events] == [0, 1, 2]
        assert events[0].data["name"] == "t"
        assert events[0].data["meta"] == {"seed": 1}
        assert events[-1].data["events"] == 3
        assert validate_events(events) == []

    def test_requires_exactly_one_sink(self, tmp_path):
        with pytest.raises(ValueError):
            EventLogWriter()
        with pytest.raises(ValueError):
            EventLogWriter(str(tmp_path / "x.jsonl"), fh=io.StringIO())

    def test_unknown_kind_rejected(self):
        writer = EventLogWriter(fh=io.StringIO())
        with pytest.raises(EventLogError, match="unknown event kind"):
            writer.append("farm.task.exploded", "farm", runner="r", key="k")

    def test_missing_required_field_rejected(self):
        writer = EventLogWriter(fh=io.StringIO())
        with pytest.raises(EventLogError, match="missing required fields"):
            writer.append("farm.task.done", "farm", runner="r", key="k")

    def test_append_after_close_rejected(self):
        writer = EventLogWriter(fh=io.StringIO())
        writer.close()
        with pytest.raises(EventLogError, match="closed"):
            writer.append("farm.task.queued", "farm", runner="r", key="k")

    def test_lines_are_flushed_json(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        writer = EventLogWriter(path, name="t")
        writer.append("farm.task.queued", "farm", runner="r", key="k")
        # without close: the written prefix must already be valid JSONL
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)
        writer.close()


# ----------------------------------------------------------------------
# validation + replay on synthetic streams
# ----------------------------------------------------------------------
def _event(seq, kind, **data):
    return FleetEvent(seq=seq, ts=float(seq), kind=kind, source="farm", data=data)


class TestValidation:
    def test_detects_sequence_gap(self):
        events = [
            _event(0, "log.open", version=1, name="t"),
            _event(2, "farm.task.queued", runner="r", key="k"),
        ]
        errors = validate_events(events)
        assert any("seq gap" in e for e in errors)

    def test_detects_wrong_close_count(self):
        events = [
            _event(0, "log.open", version=1, name="t"),
            _event(1, "log.close", events=99),
        ]
        errors = validate_events(events)
        assert any("log.close claims" in e for e in errors)

    def test_truncated_log_fails_check_replay(self):
        events = [
            _event(0, "log.open", version=1, name="t"),
            _event(1, "farm.task.queued", runner="r", key="k"),
        ]
        _, errors = check_replay(events)
        assert any("truncated" in e for e in errors)

    def test_replay_mismatch_detected(self):
        events = [
            _event(0, "log.open", version=1, name="t"),
            _event(1, "farm.task.queued", runner="r", key="k"),
            _event(2, "farm.summary", jobs=1, queued=1, running=0, done=1,
                   failed=0, retried=0, cache_hits=0, executed=1,
                   task_wall_s=0.0, elapsed_s=0.1),
        ]
        _, errors = check_replay(events)
        assert any("replay mismatch" in e for e in errors)

    def test_replay_rollup_counts_cached_as_done(self):
        events = [
            _event(0, "farm.task.queued", runner="r", key="a"),
            _event(1, "farm.task.cached", runner="r", key="a"),
            _event(2, "farm.task.queued", runner="r", key="b"),
            _event(3, "farm.task.started", runner="r", key="b", attempt=1),
            _event(4, "farm.task.done", runner="r", key="b", wall_time=0.25),
        ]
        rollup = replay_rollup(events)
        assert rollup["queued"] == 2
        assert rollup["done"] == 2
        assert rollup["cache_hits"] == 1
        assert rollup["executed"] == 1
        assert rollup["task_wall_s"] == 0.25


# ----------------------------------------------------------------------
# digest extraction
# ----------------------------------------------------------------------
class TestRunDigest:
    def test_plain_results_have_no_digest(self):
        assert run_digest(3.14) is None
        assert run_digest({"goodput_mbps": 94.2}) is None
        assert run_digest("survived") is None

    def test_chaos_shaped_result(self):
        digest = run_digest(fleet_alarmed_task())
        assert digest["alarms"] == {"s1": 2, "s2": 1}
        assert digest["quarantined"] == [["s1", 0.01]]
        assert digest["detection_latency"] == 0.0042
        assert digest["faults"] == [
            {"time": 0.005, "kind": "crash", "target": "s1"}
        ]
        assert digest["ctrl_blocked"] == 3
        assert "ctrl_malicious_released" not in digest

    def test_digest_is_bounded(self):
        value = {"alarms": {f"s{i}": 1 for i in range(40)}}
        digest = run_digest(value)
        assert len(digest["alarms"]) == 8


# ----------------------------------------------------------------------
# farm integration
# ----------------------------------------------------------------------
def _run_farm(tmp_path, specs, jobs=1, cache=None, bus=None, name="t"):
    """One farm battery with an event log attached; returns (path, results)."""
    path = str(tmp_path / f"events-{name}.jsonl")
    progress = FarmProgress(bus=bus)
    writer = EventLogWriter(path, name=name)
    logger = FarmEventLogger(writer, progress)
    executor = FarmExecutor(jobs=jobs, cache=cache, progress=progress)
    results = executor.run(specs)
    logger.detach()
    writer.close()
    return path, results


class TestFarmIntegration:
    def test_full_cycle_and_cache_hits_second_run(self, tmp_path):
        specs = [RunSpec("fleet.echo", {"value": i}, seed=i) for i in range(3)]
        cache = ResultCache(tmp_path / "cache")

        path1, results1 = _run_farm(tmp_path, specs, cache=cache, name="cold")
        events1 = read_events(path1)
        kinds1 = [e.kind for e in events1]
        assert kinds1.count("farm.task.queued") == 3
        assert kinds1.count("farm.cache.miss") == 3
        assert kinds1.count("farm.task.done") == 3
        replayed, errors = check_replay(events1)
        assert errors == []
        assert replayed["executed"] == 3

        path2, results2 = _run_farm(tmp_path, specs, cache=cache, name="warm")
        events2 = read_events(path2)
        kinds2 = [e.kind for e in events2]
        assert kinds2.count("farm.task.cached") == 3
        assert "farm.cache.miss" not in kinds2
        replayed, errors = check_replay(events2)
        assert errors == []
        assert replayed["cache_hits"] == 3
        assert replayed["executed"] == 0
        assert results2 == results1

    def test_digest_events_land_in_log(self, tmp_path):
        specs = [RunSpec("fleet.alarmed", {}, seed=1)]
        path, _ = _run_farm(tmp_path, specs, name="alarmed")
        events = read_events(path)
        digests = [e for e in events if e.kind == "farm.task.digest"]
        assert len(digests) == 1
        assert digests[0].data["alarms"] == {"s1": 2, "s2": 1}
        assert digests[0].data["runner"] == "fleet.alarmed"

    def test_logger_sees_past_bus_saturation(self, tmp_path):
        """The TraceBus saturation contract: subscribed listeners get
        every record even after the retained log truncates, so a tiny
        ``max_records`` cannot corrupt the event log."""
        bus = TraceBus(max_records=2)
        specs = [RunSpec("fleet.echo", {"value": i}, seed=i) for i in range(5)]
        path, _ = _run_farm(tmp_path, specs, bus=bus, name="tinybus")
        events = read_events(path)
        # the bus retained 2 records (+ its saturation marker), but the
        # log holds the full run
        assert len(bus.records) == 3
        assert bus.dropped_count > 0
        assert sum(e.kind == "farm.task.done" for e in events) == 5
        replayed, errors = check_replay(events)
        assert errors == []
        assert replayed["done"] == 5

    def test_retry_logged_and_replayable(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        specs = [RunSpec("fleet.crash_once", {"flag_path": flag}, seed=1)]
        path, results = _run_farm(tmp_path, specs, jobs=2, name="retry")
        assert list(results.values()) == ["retried-ok"]
        events = read_events(path)
        kinds = [e.kind for e in events]
        assert "farm.task.retried" in kinds
        replayed, errors = check_replay(events)
        assert errors == []
        assert replayed["retried"] == 1
        assert replayed["done"] == 1


# ----------------------------------------------------------------------
# metrics counter trio
# ----------------------------------------------------------------------
class TestFarmCounters:
    def test_cache_counter_trio(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        specs = [RunSpec("fleet.echo", {"value": i}, seed=i) for i in range(2)]
        with use_registry(registry):
            cache = ResultCache(tmp_path / "cache")
            executor = FarmExecutor(jobs=1, cache=cache)
        executor.run(specs)
        executor2 = FarmExecutor(jobs=1, cache=cache, progress=FarmProgress())
        executor2.run(specs)
        samples = registry.samples()
        assert samples["cache_misses_total"] == 2.0
        assert samples["cache_hits_total"] == 2.0
        assert samples["farm_task_retries_total"] == 0.0
        text = registry.render_prometheus()
        assert "cache_hits_total 2" in text

    def test_disabled_registry_binds_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache._hits_counter is None
        assert cache._misses_counter is None
        executor = FarmExecutor(jobs=1, cache=cache)
        assert executor._retries_counter is None


# ----------------------------------------------------------------------
# telemetry must not perturb results (determinism contract)
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_results_identical_with_and_without_log(self, tmp_path):
        specs = [RunSpec("fleet.echo", {"value": i}, seed=i) for i in range(4)]
        bare = FarmExecutor(jobs=1).run(specs)
        _, logged = _run_farm(tmp_path, specs, name="identity")
        assert json.dumps(bare, sort_keys=True) == json.dumps(logged, sort_keys=True)


# ----------------------------------------------------------------------
# the 24-seed property test (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(24))
def test_property_gapless_and_replayable(tmp_path, seed):
    """For 24 seeded workloads: sequence numbers are gapless, replay
    reproduces the farm.summary rollup exactly, and a serial run equals
    a ``--jobs 2`` run on every replayed counter."""
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 6)
    specs = [
        RunSpec("fleet.echo", {"value": rng.randint(0, 100)}, seed=rng.randint(0, 3))
        for _ in range(n)
    ]
    if rng.random() < 0.5:
        specs.append(RunSpec("fleet.alarmed", {}, seed=seed))
    # a tiny retained bus on odd seeds exercises the saturation contract
    bus = TraceBus(max_records=3) if seed % 2 else None

    path_serial, results_serial = _run_farm(
        tmp_path, specs, jobs=1, bus=bus, name=f"serial-{seed}"
    )
    events = read_events(path_serial)
    assert [e.seq for e in events] == list(range(len(events)))
    replayed, errors = check_replay(events)
    assert errors == []

    path_pool, results_pool = _run_farm(
        tmp_path, specs, jobs=2, name=f"pool-{seed}"
    )
    pool_events = read_events(path_pool)
    assert [e.seq for e in pool_events] == list(range(len(pool_events)))
    pool_replayed, pool_errors = check_replay(pool_events)
    assert pool_errors == []

    assert results_pool == results_serial
    for field in ROLLUP_FIELDS:
        if field == "task_wall_s":
            continue  # wall time is real time, not replay-comparable
        assert pool_replayed[field] == replayed[field], field
