"""Tests for compare policies (bit-exact / header / hash / masked)."""

import pytest

from repro.core import (
    BitExactPolicy,
    HashPolicy,
    HeaderOnlyPolicy,
    mask_src_mac_policy,
    strip_vlan_policy,
)
from repro.net import IpAddress, MacAddress, Packet, Vlan

M1, M2, M3 = (MacAddress.from_index(i) for i in (1, 2, 3))
IP1, IP2 = IpAddress.from_index(1), IpAddress.from_index(2)


def pkt(payload=b"data", vlan=None, src=M1):
    return Packet.udp(src, M2, IP1, IP2, 1, 2, payload=payload, vlan=vlan)


class TestBitExact:
    def test_identical_packets_same_key(self):
        policy = BitExactPolicy()
        assert policy.key(pkt()) == policy.key(pkt())

    def test_payload_change_differs(self):
        policy = BitExactPolicy()
        assert policy.key(pkt(b"aaaa")) != policy.key(pkt(b"aaab"))

    def test_header_change_differs(self):
        policy = BitExactPolicy()
        assert policy.key(pkt(src=M1)) != policy.key(pkt(src=M3))


class TestHeaderOnly:
    def test_payload_change_ignored(self):
        policy = HeaderOnlyPolicy()
        assert policy.key(pkt(b"aaaa")) == policy.key(pkt(b"bbbb"))

    def test_header_change_detected(self):
        policy = HeaderOnlyPolicy()
        a = pkt()
        b = pkt()
        b.eth.dst = M3
        assert policy.key(a) != policy.key(b)

    def test_empty_payload(self):
        policy = HeaderOnlyPolicy()
        assert policy.key(pkt(b"")) == policy.key(pkt(b""))

    def test_payload_length_still_visible(self):
        # the IP total_length field lives in the header part, so *length*
        # changes are detected even though content changes are not.
        policy = HeaderOnlyPolicy()
        assert policy.key(pkt(b"aa")) != policy.key(pkt(b"aaa"))


class TestHash:
    def test_same_packet_same_digest(self):
        policy = HashPolicy()
        assert policy.key(pkt()) == policy.key(pkt())

    def test_digest_is_fixed_size(self):
        policy = HashPolicy()
        assert len(policy.key(pkt(b"x" * 1400))) == 32

    def test_detects_any_bit_change(self):
        policy = HashPolicy()
        assert policy.key(pkt(b"aaaa")) != policy.key(pkt(b"aaab"))

    def test_other_algorithms(self):
        policy = HashPolicy("md5")
        assert len(policy.key(pkt())) == 16

    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(ValueError):
            HashPolicy("not-a-hash")


class TestMasked:
    def test_strip_vlan_equates_differently_tagged_copies(self):
        policy = strip_vlan_policy(BitExactPolicy())
        assert policy.key(pkt(vlan=Vlan(100))) == policy.key(pkt(vlan=Vlan(101)))
        assert policy.key(pkt(vlan=Vlan(100))) == policy.key(pkt())

    def test_strip_vlan_still_detects_payload_tamper(self):
        policy = strip_vlan_policy(BitExactPolicy())
        assert policy.key(pkt(b"a", vlan=Vlan(1))) != policy.key(
            pkt(b"b", vlan=Vlan(1))
        )

    def test_strip_vlan_does_not_mutate_input(self):
        policy = strip_vlan_policy(BitExactPolicy())
        packet = pkt(vlan=Vlan(100))
        policy.key(packet)
        assert packet.vlan is not None

    def test_mask_src_equates_branch_markers(self):
        policy = mask_src_mac_policy(BitExactPolicy())
        assert policy.key(pkt(src=M1)) == policy.key(pkt(src=M3))

    def test_mask_src_detects_dst_tamper(self):
        policy = mask_src_mac_policy(BitExactPolicy())
        a, b = pkt(), pkt()
        b.eth.dst = M3
        assert policy.key(a) != policy.key(b)

    def test_policy_names(self):
        assert "strip-vlan" in strip_vlan_policy(BitExactPolicy()).name
        assert "mask-src" in mask_src_mac_policy(HashPolicy()).name
