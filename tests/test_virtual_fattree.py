"""Integration: the virtualized NetCo running inside a real fat-tree.

The Section VII pitch is that production networks already have the
redundancy the virtual combiner needs.  A fat-tree is the canonical
example: between two edge switches in different pods there are multiple
node-disjoint paths through distinct aggregation and core switches (one
per 'vendor group').  This suite provisions the virtual combiner over
those paths and attacks individual fabric switches.
"""

import pytest

from repro.adversary import BlackholeBehavior, PayloadCorruptionBehavior
from repro.apps import StaticMacRouter
from repro.core.compare import CompareConfig
from repro.core.virtual import (
    VirtualEgress,
    VirtualIngress,
    provision_virtual_combiner,
)
from repro.net import build_fat_tree
from repro.traffic.iperf import PathEndpoints, run_ping, run_udp_flow


def build(k_paths=2, seed=91):
    """Fat-tree (k=4) with a virtual combiner from edge0_0 to edge2_0."""

    def factory(layer, name, net):
        if name == "edge0_0":
            return VirtualIngress(net.sim, name, trace_bus=net.trace,
                                  proc_time=2e-6)
        if name == "edge2_0":
            return VirtualEgress(net.sim, name, trace_bus=net.trace,
                                 proc_time=2e-6)
        return None

    tree = build_fat_tree(4, seed=seed, switch_factory=factory,
                          switch_proc_time=2e-6, link_delay=2e-6)
    net = tree.network
    src = tree.host(0, 0, 0)   # under edge0_0
    dst = tree.host(2, 0, 0)   # under edge2_0
    ingress = tree.edge[0][0]
    egress = tree.edge[2][0]
    assert isinstance(ingress, VirtualIngress)
    assert isinstance(egress, VirtualEgress)

    # ordinary routing (used by the reverse direction and as the egress'
    # last hop); the ingress' protect_flow overrides the protected dst
    StaticMacRouter(net).install_pair(src, dst)

    combiner = provision_virtual_combiner(
        net,
        ingress,
        egress,
        dst_mac=dst.mac,
        k=k_paths,
        compare=CompareConfig(k=k_paths, buffer_timeout=2e-3),
    )
    return tree, combiner, src, dst


class TestProvisioning:
    def test_paths_are_disjoint_through_the_fabric(self):
        tree, combiner, src, dst = build(k_paths=2)
        assert len(combiner.paths) == 2
        interiors = [set(p[1:-1]) for p in combiner.paths]
        assert not (interiors[0] & interiors[1])
        # each path crosses agg -> core -> agg
        for path in combiner.paths:
            assert len(path) == 5

    def test_benign_ping_and_udp(self):
        tree, combiner, src, dst = build(k_paths=2)
        ping = run_ping(
            PathEndpoints(tree.network, src, dst), count=10, interval=1e-3
        )
        assert ping.received == 10 and ping.duplicates == 0
        flow = run_udp_flow(
            PathEndpoints(tree.network, src, dst), rate_bps=10e6, duration=0.02
        )
        assert flow.loss_rate == 0.0


class TestFabricAttacks:
    def _interior_switch(self, tree, combiner, path_index, hop):
        name = combiner.paths[path_index][1 + hop]
        return tree.network.node(name)

    def test_corrupt_core_switch_detected_at_k2(self):
        tree, combiner, src, dst = build(k_paths=2, seed=92)
        core = self._interior_switch(tree, combiner, 0, 1)  # the core hop
        PayloadCorruptionBehavior().attach(core)
        ping = run_ping(
            PathEndpoints(tree.network, src, dst), count=8, interval=1e-3
        )
        combiner.core.flush()
        assert ping.received == 0  # k=2: detection, not prevention
        assert combiner.core.alarms.count() > 0

    def test_blackholed_agg_masked_with_three_paths(self):
        # k=4 fat-tree has only 2 aggs per pod, so 2 fully disjoint
        # edge-to-edge paths; verify a failed path degrades to the
        # remaining one when the quorum allows it (k=2 quorum=2 cannot,
        # quorum=1-of-2 'any' mode can)
        tree, combiner, src, dst = build(k_paths=2, seed=93)
        combiner.core.book.quorum = 1  # operator dials detection-only
        agg = self._interior_switch(tree, combiner, 1, 0)
        BlackholeBehavior().attach(agg)
        ping = run_ping(
            PathEndpoints(tree.network, src, dst), count=8, interval=1e-3
        )
        assert ping.received == 8  # availability preserved at quorum 1

    def test_unrelated_fabric_traffic_unaffected(self):
        tree, combiner, src, dst = build(k_paths=2, seed=94)
        other_a = tree.host(1, 0, 0)
        other_b = tree.host(3, 1, 1)
        StaticMacRouter(tree.network).install_pair(other_a, other_b)
        ping = run_ping(
            PathEndpoints(tree.network, other_a, other_b), count=5,
            interval=1e-3,
        )
        assert ping.received == 5
        assert combiner.core.stats.submissions == 0  # not our flow
