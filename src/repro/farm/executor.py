"""Sharded execution of :class:`RunSpec` lists.

``jobs=1`` executes inline in the calling process — no subprocesses, no
pickling, exactly the code path the tier-1 suite exercises — while
``jobs>1`` shards the specs over a :class:`ProcessPoolExecutor`.  Either
way the result is a ``{spec.key: value}`` mapping, so merging is driven
by spec identity and the parallel output is bit-identical to serial.

Fault handling:

* **per-task timeout** — enforced inside the task's process with a real
  interval timer (SIGALRM), so a wedged simulation cannot hang the farm;
* **worker crash** — a task that kills its worker (segfault, OOM-kill,
  ``os._exit``) breaks the pool; the pool is rebuilt and the affected
  specs are retried a bounded number of times;
* **task exceptions** — deterministic errors are *not* retried (the
  rerun would fail identically); they surface as :class:`FarmTaskError`.

Task results are normalised through a JSON round-trip before merging so
fresh, parallel and cache-served values are indistinguishable.
"""

from __future__ import annotations

import json
import signal
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.farm.cache import ResultCache
from repro.farm.progress import FarmProgress
from repro.farm.spec import RunSpec
from repro.obs.events import run_digest
from repro.obs.metrics import bind_counter


class TaskTimeout(Exception):
    """A farm task exceeded its per-task wall-clock budget."""


class FarmTaskError(RuntimeError):
    """A farm task failed permanently (after any retries)."""

    def __init__(self, spec: RunSpec, attempts: int, cause: str) -> None:
        super().__init__(
            f"farm task {spec.runner!r} (key {spec.short_key}) failed "
            f"after {attempts} attempt(s): {cause}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


def _alarm_handler(signum, frame):  # pragma: no cover - fires asynchronously
    raise TaskTimeout("per-task timeout expired")


def _execute_spec(
    spec: RunSpec,
    timeout: Optional[float],
    profile_dir: Optional[str] = None,
    attempt: int = 1,
) -> Tuple[Any, float]:
    """Run one spec (in whichever process), returning (value, wall_s).

    The timeout is enforced with ``setitimer``/SIGALRM where available
    (worker processes run tasks in their main thread, so this is safe);
    platforms without SIGALRM simply run without enforcement.  With
    ``profile_dir`` set the task runs under cProfile and dumps its stats
    into that directory (``--profile-shards``); the profiler tax lands in
    wall time only — the task's result value is untouched.
    """
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    start = time.perf_counter()
    try:
        if profile_dir is not None:
            from repro.farm.profiling import run_profiled

            value = run_profiled(spec.execute, spec, attempt, profile_dir)
        else:
            value = spec.execute()
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    wall = time.perf_counter() - start
    # normalise exactly like a cache round-trip would
    return json.loads(json.dumps(value)), wall


class FarmExecutor:
    """Runs a batch of specs, with caching, sharding and retry."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        progress: Optional[FarmProgress] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.progress = progress if progress is not None else FarmProgress()
        self.profile_dir = profile_dir
        self._retries_counter = bind_counter("farm_task_retries_total")

    def run(self, specs: Sequence[RunSpec]) -> Dict[str, Any]:
        """Execute every spec; return ``{spec.key: value}``."""
        results: Dict[str, Any] = {}
        pending: List[RunSpec] = []
        for spec in specs:
            if spec.key in results or any(s.key == spec.key for s in pending):
                continue  # duplicate work item, one execution serves both
            self.progress.task_queued(spec)
            if self.cache is not None:
                hit, value = self.cache.get(spec)
                if hit:
                    results[spec.key] = value
                    self.progress.task_cached(spec)
                    continue
                self.progress.cache_miss(spec)
            pending.append(spec)
        if pending:
            if self.jobs == 1:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)
        self.progress.farm_finished(self.jobs)
        return results

    # ------------------------------------------------------------------
    # inline (jobs=1): deterministic, subprocess-free
    # ------------------------------------------------------------------
    def _run_inline(self, specs: List[RunSpec], results: Dict[str, Any]) -> None:
        for spec in specs:
            self.progress.task_started(spec, attempt=1)
            try:
                value, wall = _execute_spec(
                    spec, self.timeout, self.profile_dir, attempt=1
                )
            except TaskTimeout:
                self.progress.task_failed(spec, "timeout")
                raise FarmTaskError(
                    spec, 1, f"timed out after {self.timeout}s"
                ) from None
            except Exception as exc:
                self.progress.task_failed(spec, repr(exc))
                raise FarmTaskError(spec, 1, repr(exc)) from exc
            self._record(spec, value, wall, results)

    # ------------------------------------------------------------------
    # sharded (jobs>1): process pool with crash/timeout retry rounds
    # ------------------------------------------------------------------
    def _run_pool(self, specs: List[RunSpec], results: Dict[str, Any]) -> None:
        attempts: Dict[str, int] = {spec.key: 0 for spec in specs}
        pending = list(specs)
        while pending:
            retry: List[RunSpec] = []
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
            try:
                futures = {}
                for spec in pending:
                    attempts[spec.key] += 1
                    self.progress.task_started(spec, attempt=attempts[spec.key])
                    futures[
                        pool.submit(
                            _execute_spec,
                            spec,
                            self.timeout,
                            self.profile_dir,
                            attempts[spec.key],
                        )
                    ] = spec
                for future in as_completed(futures):
                    spec = futures[future]
                    try:
                        value, wall = future.result()
                    except (BrokenProcessPool, TaskTimeout) as exc:
                        reason = (
                            "worker crashed"
                            if isinstance(exc, BrokenProcessPool)
                            else f"timed out after {self.timeout}s"
                        )
                        if attempts[spec.key] <= self.retries:
                            self.progress.task_retried(spec, reason)
                            if self._retries_counter is not None:
                                self._retries_counter.inc()
                            retry.append(spec)
                        else:
                            self.progress.task_failed(spec, reason)
                            raise FarmTaskError(
                                spec, attempts[spec.key], reason
                            ) from exc
                    except Exception as exc:
                        # a deterministic task error: retrying cannot help
                        self.progress.task_failed(spec, repr(exc))
                        raise FarmTaskError(
                            spec, attempts[spec.key], repr(exc)
                        ) from exc
                    else:
                        self._record(spec, value, wall, results)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            pending = retry

    def _record(
        self,
        spec: RunSpec,
        value: Any,
        wall: float,
        results: Dict[str, Any],
    ) -> None:
        results[spec.key] = value
        if self.cache is not None:
            self.cache.put(spec, value)
        self.progress.task_done(spec, wall)
        digest = run_digest(value)
        if digest:
            self.progress.task_digest(spec, digest)
