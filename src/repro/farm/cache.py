"""On-disk JSON result cache for the experiment farm.

One file per :class:`~repro.farm.spec.RunSpec`, under
``.repro-cache/<key[:2]>/<key>.json``, holding the spec's identity plus
the task's JSON value.  Corrupt or mismatched files are treated as
misses and removed.  Hit/miss/store/corrupt counters are kept so runs
can report their cache effectiveness (``python -m repro`` prints them).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.farm.spec import RunSpec
from repro.obs.metrics import bind_counter

#: default cache location, relative to the working directory
DEFAULT_CACHE_ROOT = ".repro-cache"

_MISS = (False, None)


class ResultCache:
    """Content-addressed store of farm task results."""

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_CACHE_ROOT,
        enabled: bool = True,
    ) -> None:
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.write_errors = 0
        # bound from the registry active at construction; None when
        # metrics are disabled so get() pays one is-not-None test
        self._hits_counter = bind_counter("cache_hits_total")
        self._misses_counter = bind_counter("cache_misses_total")

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry counts as a miss."""
        if not self.enabled:
            return _MISS
        path = self.path_for(spec.key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("key") != spec.key or "value" not in payload:
                raise ValueError("cache entry does not match its key")
        except FileNotFoundError:
            self.misses += 1
            if self._misses_counter is not None:
                self._misses_counter.inc()
            return _MISS
        except (ValueError, OSError):
            self.corrupt += 1
            self.misses += 1
            if self._misses_counter is not None:
                self._misses_counter.inc()
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
            return _MISS
        self.hits += 1
        if self._hits_counter is not None:
            self._hits_counter.inc()
        return True, payload["value"]

    def put(self, spec: RunSpec, value: Any) -> None:
        """Store a result atomically (write temp file, then rename).

        Best-effort: the cache is an optimisation, so an unwritable
        cache location degrades to cache-less operation (with a
        one-time warning) instead of failing the experiment run.
        """
        if not self.enabled:
            return
        payload = {
            "key": spec.key,
            "runner": spec.runner,
            "seed": spec.seed,
            "kwargs": spec.kwargs,
            "value": value,
        }
        try:
            path = self.path_for(spec.key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, path)
        except OSError as exc:
            self.write_errors += 1
            if self.write_errors == 1:
                warnings.warn(
                    f"result cache at {self.root} is not writable "
                    f"({exc}); continuing without storing results",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self.stores += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> Optional[float]:
        total = self.hits + self.misses
        return self.hits / total if total else None

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "write_errors": self.write_errors,
            "hit_rate": self.hit_rate,
        }
