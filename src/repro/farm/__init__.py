"""Parallel experiment farm: sharded execution with deterministic merge.

Every table/figure of the reproduction is a sweep of *independent*
simulations (scenario x seed x repetition x offered rate).  The farm
turns such a sweep into a list of :class:`RunSpec` work items, shards
them across worker processes, caches results on disk keyed by a stable
content hash, and hands the results back *keyed by spec, not by
completion order* — so a parallel run merges to a record bit-identical
to the serial one.
"""

from repro.farm.cache import ResultCache
from repro.farm.executor import FarmExecutor, FarmTaskError, TaskTimeout
from repro.farm.progress import FarmProgress
from repro.farm.spec import (
    RunSpec,
    register_runner,
    registered_runners,
    resolve_runner,
)

__all__ = [
    "FarmExecutor",
    "FarmProgress",
    "FarmTaskError",
    "ResultCache",
    "RunSpec",
    "TaskTimeout",
    "register_runner",
    "registered_runners",
    "resolve_runner",
]
