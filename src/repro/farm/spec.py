"""Work-item description for the experiment farm.

A :class:`RunSpec` names one independent simulation run: a registered
runner, JSON-serialisable keyword arguments, and a seed.  Its
:attr:`~RunSpec.key` is a stable content hash over that triple, used
for on-disk caching and for the order-independent merge — two specs
with the same runner, kwargs and seed always hash to the same key, in
any process, on any run.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

#: runner name -> callable, filled by :func:`register_runner`
_REGISTRY: Dict[str, Callable[..., Any]] = {}

#: modules auto-imported on a registry miss (they register their
#: runners at import time); keeps spawn-started workers working.
_DEFAULT_TASK_MODULES = ("repro.analysis.tasks",)


def register_runner(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a task function under a stable name.

    The name — not the function's identity — enters the content hash,
    so refactoring a task's module keeps its cache entries valid.
    """

    def decorator(fn: Callable) -> Callable:
        _REGISTRY[name] = fn
        return fn

    return decorator


def registered_runners() -> List[str]:
    return sorted(_REGISTRY)


def resolve_runner(name: str) -> Callable[..., Any]:
    """Look up a runner by registry name or ``module:attr`` path."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    for module in _DEFAULT_TASK_MODULES:
        try:
            importlib.import_module(module)
        except ImportError:  # pragma: no cover - defensive
            continue
        if name in _REGISTRY:
            return _REGISTRY[name]
    if ":" in name:
        module, _, attr = name.partition(":")
        return getattr(importlib.import_module(module), attr)
    raise KeyError(
        f"unknown farm runner {name!r}; registered: {registered_runners()}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run (runner, kwargs, seed)."""

    runner: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if "seed" in self.kwargs:
            raise ValueError("pass the seed via RunSpec.seed, not kwargs")
        try:
            # normalise through JSON so tuples/lists, int/float literals
            # etc. hash identically and reach the task the same way a
            # cache round-trip would deliver them
            normalised = json.loads(json.dumps(self.kwargs))
        except (TypeError, ValueError) as exc:
            raise TypeError(
                f"RunSpec kwargs must be JSON-serialisable: {exc}"
            ) from exc
        object.__setattr__(self, "kwargs", normalised)

    def canonical(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return json.dumps(
            {"runner": self.runner, "seed": self.seed, "kwargs": self.kwargs},
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def key(self) -> str:
        """Stable content hash (sha256 hex) of the spec."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @property
    def short_key(self) -> str:
        return self.key[:12]

    def execute(self) -> Any:
        """Resolve the runner and run it (in whatever process we are)."""
        return resolve_runner(self.runner)(seed=self.seed, **self.kwargs)
