"""Per-shard cProfile capture for farm tasks.

``--profile-shards DIR`` makes every task execution run under
:class:`cProfile.Profile` *inside its own worker process* and dump the
raw stats file into ``DIR`` — one file per (spec, attempt), named after
the spec's content hash so reruns overwrite rather than accumulate.
After the farm drains, :func:`aggregate_profiles` folds every dump into
one :class:`pstats.Stats` and renders a top-N cumulative table for the
fleet summary.

Profiling is strictly observational: it changes task *wall time* (the
profiler tax) but the task's RNG streams, simulated clock and result
value are untouched, so result dicts and spec hashes stay bit-identical
with profiling on or off.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.farm.spec import RunSpec

__all__ = ["profile_path", "run_profiled", "aggregate_profiles"]

#: filename suffix for raw cProfile dumps
PROFILE_SUFFIX = ".pstats"


def profile_path(profile_dir: Union[str, Path], spec: RunSpec, attempt: int = 1) -> Path:
    """Stats-file path for one task execution.

    Keyed by content hash + attempt: retried tasks keep each attempt's
    profile, while a re-run of the same spec overwrites deterministically.
    """
    name = f"{spec.runner.replace('/', '_')}-{spec.short_key}-a{attempt}{PROFILE_SUFFIX}"
    return Path(profile_dir) / name


def run_profiled(fn, spec: RunSpec, attempt: int, profile_dir: Union[str, Path]):
    """Run ``fn()`` under cProfile, dumping stats for this spec/attempt."""
    path = profile_path(profile_dir, spec, attempt)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn)
    finally:
        profiler.dump_stats(os.fspath(path))


def collect_profiles(profile_dir: Union[str, Path]) -> List[Path]:
    """All raw stats dumps under ``profile_dir``, sorted by name."""
    root = Path(profile_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{PROFILE_SUFFIX}"))


def aggregate_profiles(
    profile_dir: Union[str, Path],
    top: int = 15,
) -> Optional[Tuple[int, str]]:
    """Fold every shard profile into one top-N cumulative table.

    Returns ``(dump_count, table_text)`` or ``None`` if the directory
    holds no profiles.  Unreadable dumps (e.g. a worker killed mid-write)
    are skipped rather than failing the summary.
    """
    paths = collect_profiles(profile_dir)
    stats: Optional[pstats.Stats] = None
    loaded = 0
    for path in paths:
        try:
            if stats is None:
                stats = pstats.Stats(os.fspath(path))
            else:
                stats.add(os.fspath(path))
        except Exception:
            continue
        loaded += 1
    if stats is None or loaded == 0:
        return None
    buffer = io.StringIO()
    stats.stream = buffer  # type: ignore[attr-defined]
    stats.sort_stats("cumulative").print_stats(top)
    return loaded, buffer.getvalue().rstrip()
