"""Farm telemetry: counters plus TraceBus-shaped records.

The farm emits the same :class:`~repro.sim.trace.TraceRecord` shape the
simulator uses for its own telemetry, onto a dedicated
:class:`~repro.sim.trace.TraceBus` — so the same subscription/query
helpers (and :func:`repro.analysis.report.render_farm_summary`) work on
farm runs.  Record times are wall-clock seconds since the progress
object was created (the farm runs in real time, not simulated time).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.farm.spec import RunSpec
from repro.sim.trace import TraceBus

SOURCE = "farm"


class FarmProgress:
    """Counts queued/running/done/failed tasks and per-task wall time."""

    def __init__(self, bus: Optional[TraceBus] = None) -> None:
        self.bus = bus if bus is not None else TraceBus()
        self.queued = 0
        self.cache_hits = 0
        self.running = 0
        self.done = 0
        self.failed = 0
        self.retried = 0
        #: spec key -> wall seconds of the successful attempt
        self.wall_times: Dict[str, float] = {}
        self._t0 = time.perf_counter()

    def _emit(self, topic: str, spec: Optional[RunSpec] = None, **data: Any) -> None:
        if spec is not None:
            data.setdefault("runner", spec.runner)
            data.setdefault("key", spec.short_key)
        self.bus.emit(time.perf_counter() - self._t0, topic, SOURCE, **data)

    # ------------------------------------------------------------------
    # lifecycle hooks called by the executor
    # ------------------------------------------------------------------
    def task_queued(self, spec: RunSpec) -> None:
        self.queued += 1
        self._emit("farm.task.queued", spec)

    def task_cached(self, spec: RunSpec) -> None:
        self.cache_hits += 1
        self.done += 1
        self._emit("farm.task.cached", spec)

    def cache_miss(self, spec: RunSpec) -> None:
        """A queued spec was not in the result cache (it will execute)."""
        self._emit("farm.cache.miss", spec)

    def task_digest(self, spec: RunSpec, digest: Dict[str, Any]) -> None:
        """Bounded per-run telemetry digest (alarms, quarantines, votes)."""
        self._emit("farm.task.digest", spec, **digest)

    def task_started(self, spec: RunSpec, attempt: int) -> None:
        self.running += 1
        self._emit("farm.task.started", spec, attempt=attempt)

    def task_done(self, spec: RunSpec, wall_time: float) -> None:
        self.running -= 1
        self.done += 1
        self.wall_times[spec.key] = wall_time
        self._emit("farm.task.done", spec, wall_time=wall_time)

    def task_retried(self, spec: RunSpec, reason: str) -> None:
        self.running -= 1
        self.retried += 1
        self._emit("farm.task.retried", spec, reason=reason)

    def task_failed(self, spec: RunSpec, reason: str) -> None:
        self.running -= 1
        self.failed += 1
        self._emit("farm.task.failed", spec, reason=reason)

    def farm_finished(self, jobs: int) -> None:
        self._emit("farm.summary", None, jobs=jobs, **self.snapshot())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def executed(self) -> int:
        """Tasks that actually ran (done minus cache hits)."""
        return self.done - self.cache_hits

    @property
    def total_task_wall(self) -> float:
        return sum(self.wall_times.values())

    def snapshot(self) -> Dict[str, Any]:
        return {
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "task_wall_s": round(self.total_task_wall, 4),
            "elapsed_s": round(time.perf_counter() - self._t0, 4),
        }
