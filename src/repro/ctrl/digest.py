"""Canonical byte encodings for control-channel messages.

The control-plane voter (:class:`~repro.ctrl.compare.ControlCompare`)
needs the analogue of the data plane's bit-exact packet comparison: two
replicas "agree" on a decision exactly when their outbound messages
encode to the same bytes.  Python object identity or ``repr`` would not
do — the encoding must be a pure function of the *protocol-visible*
fields, stable across processes (farm workers vote-count records from
different interpreters), and injective (any single-field mutation must
change the bytes, or a lying replica could smuggle a divergent flow-mod
under an honest digest).

The encodings below are hand-rolled TLV-style byte strings rather than
real OpenFlow 1.0 wire format: the simulator's messages carry fields
(float timeouts, simulator packets) the wire format cannot, and the
voter only needs canonical equality, not interoperability.

``digest()`` returns the full canonical encoding (not a hash): vote keys
live briefly in a :class:`~repro.core.votes.VoteBook` and exactness
beats compactness — no collision argument needed.
"""

from __future__ import annotations

import struct

from repro.openflow.actions import (
    Output,
    SetDlDst,
    SetDlSrc,
    SetNwDst,
    SetNwSrc,
    SetTpDst,
    SetTpSrc,
    SetVlanVid,
    StripVlan,
)
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketOut

__all__ = [
    "DigestError",
    "encode_match",
    "encode_action",
    "encode_actions",
    "encode_flow_mod",
    "encode_packet_out",
    "digest",
]

_F64 = struct.Struct("!d")
_I64 = struct.Struct("!q")
_U32 = struct.Struct("!I")
_U16 = struct.Struct("!H")

#: one tag byte per action type; unknown actions are a hard error — the
#: trusted voter must never release bytes it cannot canonicalise.
_ACTION_TAGS = {
    Output: b"O",
    SetDlSrc: b"s",
    SetDlDst: b"d",
    SetVlanVid: b"v",
    StripVlan: b"V",
    SetNwSrc: b"n",
    SetNwDst: b"N",
    SetTpSrc: b"t",
    SetTpDst: b"T",
}


class DigestError(ValueError):
    """A control message contains something we cannot canonicalise."""


def _opt(value: bytes | None) -> bytes:
    """Presence-prefixed optional field (None != any encoded value)."""
    if value is None:
        return b"\x00"
    return b"\x01" + value


def _opt_u16(value: int | None) -> bytes:
    return _opt(None if value is None else _U16.pack(value & 0xFFFF))


def _opt_u32(value: int | None) -> bytes:
    return _opt(None if value is None else _U32.pack(value & 0xFFFFFFFF))


def _opt_u8(value: int | None) -> bytes:
    return _opt(None if value is None else bytes([value & 0xFF]))


def encode_match(match: Match) -> bytes:
    """The OF 1.0 12-tuple, fixed field order, wildcards marked."""
    return b"".join(
        (
            b"M",
            _opt_u32(match.in_port),
            _opt(match.dl_src.to_bytes() if match.dl_src is not None else None),
            _opt(match.dl_dst.to_bytes() if match.dl_dst is not None else None),
            _opt_u16(match.dl_vlan),
            _opt_u8(match.dl_vlan_pcp),
            _opt_u16(match.dl_type),
            _opt_u8(match.nw_tos),
            _opt_u8(match.nw_proto),
            _opt(match.nw_src.to_bytes() if match.nw_src is not None else None),
            _opt(match.nw_dst.to_bytes() if match.nw_dst is not None else None),
            _opt_u16(match.tp_src),
            _opt_u16(match.tp_dst),
        )
    )


def encode_action(action: object) -> bytes:
    tag = _ACTION_TAGS.get(type(action))
    if tag is None:
        raise DigestError(
            f"cannot canonicalise action {type(action).__name__}"
        )
    if isinstance(action, Output):
        return tag + _U32.pack(action.port & 0xFFFFFFFF)
    if isinstance(action, (SetDlSrc, SetDlDst)):
        return tag + action.mac.to_bytes()
    if isinstance(action, SetVlanVid):
        return tag + _U16.pack(action.vid & 0xFFFF)
    if isinstance(action, StripVlan):
        return tag
    if isinstance(action, (SetNwSrc, SetNwDst)):
        return tag + action.ip.to_bytes()
    # SetTpSrc / SetTpDst
    return tag + _U16.pack(action.port & 0xFFFF)


def encode_actions(actions) -> bytes:
    encoded = [encode_action(a) for a in actions]
    return _U16.pack(len(encoded)) + b"".join(encoded)


def encode_flow_mod(mod: FlowMod) -> bytes:
    command = mod.command.encode("utf-8")
    return b"".join(
        (
            b"F",
            bytes([len(command)]),
            command,
            encode_match(mod.match),
            encode_actions(mod.actions),
            _I64.pack(mod.priority),
            _F64.pack(mod.idle_timeout),
            _F64.pack(mod.hard_timeout),
            _I64.pack(mod.cookie),
        )
    )


def encode_packet_out(out: PacketOut) -> bytes:
    if out.packet is None:
        payload = _opt(None)
    else:
        wire = out.packet.to_bytes()
        payload = _opt(_U32.pack(len(wire)) + wire)
    return b"".join(
        (
            b"P",
            payload,
            _opt(
                None
                if out.buffer_id is None
                else _I64.pack(out.buffer_id)
            ),
            _U32.pack(out.in_port & 0xFFFFFFFF),
            encode_actions(out.actions),
        )
    )


def digest(message: object) -> bytes:
    """Canonical bytes of one controller->switch message.

    Two messages have equal digests iff every protocol-visible field is
    equal — the control-plane analogue of bit-exact packet comparison.
    """
    if isinstance(message, FlowMod):
        return encode_flow_mod(message)
    if isinstance(message, PacketOut):
        return encode_packet_out(message)
    raise DigestError(
        f"cannot canonicalise control message {type(message).__name__}"
    )
