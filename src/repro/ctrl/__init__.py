"""Byzantine-replicated control plane (NetCo's combiner, applied to the
controller): k app replicas, fan-in of switch events, majority vote over
canonical byte encodings of outbound control messages, quarantine and
probation for divergent or silent replicas."""

from repro.ctrl.compare import ControlCompare, ControlCompareConfig, CtrlStats
from repro.ctrl.digest import (
    DigestError,
    digest,
    encode_action,
    encode_actions,
    encode_flow_mod,
    encode_match,
    encode_packet_out,
)
from repro.ctrl.replicated import (
    BOGUS_PORT,
    CTRL_STRATEGIES,
    CompromisePlan,
    ReplicaHandle,
    ReplicatedControlPlane,
)

__all__ = [
    "BOGUS_PORT",
    "CTRL_STRATEGIES",
    "CompromisePlan",
    "ControlCompare",
    "ControlCompareConfig",
    "CtrlStats",
    "DigestError",
    "ReplicaHandle",
    "ReplicatedControlPlane",
    "digest",
    "encode_action",
    "encode_actions",
    "encode_flow_mod",
    "encode_match",
    "encode_packet_out",
]
