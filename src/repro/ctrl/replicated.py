"""k-replica control plane with quorum-voted output.

:class:`ReplicatedControlPlane` applies NetCo's robust-combiner idea to
the controller itself (ROADMAP item 5; P4BFT / Carbide in PAPERS.md are
the reference designs).  It is itself a :class:`~repro.openflow.
controller.Controller`, so switches attach to it exactly like to a plain
controller, but internally it:

* runs ``k`` independent replicas of the same application logic (built
  by a caller-supplied factory, so each replica owns its state and can
  own its rng stream);
* fans every switch-to-controller message (PacketIn, FlowRemoved, stats
  replies) to all live replicas — PacketIns carry a copy-on-write clone
  of the packet so a misbehaving replica cannot corrupt its siblings'
  input;
* intercepts every replica's outbound FlowMod/PacketOut via the
  :attr:`Controller.outbox` hook and submits it to a trusted
  :class:`~repro.ctrl.compare.ControlCompare`, which releases a message
  to the switch only once a strict majority produced a byte-identical
  copy.

With ``k=1`` the whole apparatus degrades to a pass-through: the single
replica's output goes straight to the switch on the same schedule as an
unreplicated controller, byte for byte.  (It must bypass the voter
entirely — a quorum-of-1 VoteBook would still tombstone-deduplicate
identical messages within the vote timeout, which a real controller
does not.)

The compromise hooks (:data:`CTRL_STRATEGIES`) model a *lying* replica:
its flow-mods are mutated before submission, so it keeps voting — and
keeps failing to assemble a majority — which is the divergence signature
the voter alarms on.  Strategies mutate FlowMods only; PacketOuts pass
clean so the honest majority's data-plane schedule is unaffected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.alarms import AlarmSink
from repro.ctrl.compare import ControlCompare, ControlCompareConfig
from repro.openflow.actions import Output
from repro.openflow.controller import Controller
from repro.openflow.messages import (
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    PacketIn,
    PortStatsReply,
)
from repro.sim import Simulator, TraceBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.openflow.switch import OpenFlowSwitch

__all__ = [
    "CTRL_STRATEGIES",
    "BOGUS_PORT",
    "CompromisePlan",
    "ReplicaHandle",
    "ReplicatedControlPlane",
]

#: nonexistent switch port a blackholing liar rewrites outputs to; the
#: switch drops such packets with a ``switch.drop reason=bad_port`` trace
BOGUS_PORT = 9999


def _lie_blackhole(mod: FlowMod) -> Optional[FlowMod]:
    """Rewrite every output to a nonexistent port (traffic blackhole)."""
    actions = tuple(
        Output(BOGUS_PORT) if isinstance(a, Output) else a for a in mod.actions
    )
    return dataclasses.replace(mod, actions=actions)


def _lie_suppress(mod: FlowMod) -> Optional[FlowMod]:
    """Withhold the flow-mod entirely (silent sabotage)."""
    return None


def _lie_priority(mod: FlowMod) -> Optional[FlowMod]:
    """A subtle lie: same route, different priority (shadow rules)."""
    return dataclasses.replace(mod, priority=mod.priority + 1)


#: compromise strategy name -> FlowMod mutator (None return = withhold)
CTRL_STRATEGIES: Dict[str, Callable[[FlowMod], Optional[FlowMod]]] = {
    "blackhole": _lie_blackhole,
    "suppress": _lie_suppress,
    "priority": _lie_priority,
}


@dataclass
class CompromisePlan:
    """An active lie campaign against one replica.

    ``lie_every`` > 1 models an adversary pacing its lies to stretch out
    detection (and, against a probation window, to evade re-admission
    resets); ``until`` bounds the campaign in simulated time.
    """

    strategy: str
    lie_every: int = 1
    until: Optional[float] = None
    flow_mods_seen: int = 0
    lies_told: int = 0

    def apply(self, message: object, now: float) -> "tuple[object | None, bool]":
        """Return (possibly mutated message, tainted?)."""
        if self.until is not None and now >= self.until:
            return message, False
        if not isinstance(message, FlowMod):
            return message, False
        self.flow_mods_seen += 1
        if self.flow_mods_seen % self.lie_every != 0:
            return message, False
        mutated = CTRL_STRATEGIES[self.strategy](message)
        self.lies_told += 1
        if mutated is message:
            return message, False
        return mutated, True


@dataclass
class ReplicaHandle:
    """Bookkeeping for one controller replica."""

    index: int
    name: str
    controller: Controller
    crashed: bool = False
    compromise: Optional[CompromisePlan] = None
    messages_emitted: int = 0
    malicious_emitted: int = 0
    first_tainted_at: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "crashed": self.crashed,
            "compromised": self.compromise is not None,
            "messages_emitted": self.messages_emitted,
            "malicious_emitted": self.malicious_emitted,
            "first_tainted_at": self.first_tainted_at,
        }


class ReplicatedControlPlane(Controller):
    """Fan in, replicate, vote, fan out."""

    def __init__(
        self,
        sim: Simulator,
        replica_factory: Callable[[int, str], Controller],
        k: int = 3,
        name: str = "ctrl",
        trace_bus: Optional[TraceBus] = None,
        compare_config: Optional[ControlCompareConfig] = None,
        alarm_sink: Optional[AlarmSink] = None,
        proc_time: float = 0.0,
        queue_capacity: int = 100_000,
    ) -> None:
        super().__init__(
            sim,
            name=name,
            trace_bus=trace_bus,
            proc_time=proc_time,
            queue_capacity=queue_capacity,
        )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        config = compare_config or ControlCompareConfig()
        config = dataclasses.replace(config, k=k)
        self.k = k
        self.replicas: List[ReplicaHandle] = []
        for index in range(k):
            replica_name = f"{name}_c{index}"
            controller = replica_factory(index, replica_name)
            handle = ReplicaHandle(index=index, name=replica_name, controller=controller)
            controller.outbox = (
                lambda _ctrl, switch, message, handle=handle: self._replica_emit(
                    handle, switch, message
                )
            )
            self.replicas.append(handle)
        self.compare = ControlCompare(
            sim,
            config,
            name=f"{name}_compare",
            alarm_sink=alarm_sink,
            trace_bus=trace_bus,
        )
        # trace id of the marked data-plane packet whose PacketIn is
        # being fanned out right now (replicas answer synchronously, so
        # setting it around the fan-out loop attributes their votes)
        self._cause_trace: Optional[int] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_switch(self, switch: "OpenFlowSwitch") -> None:
        self.switches[switch.datapath_id] = switch
        self.compare.register_switch(
            switch.datapath_id,
            lambda message, switch=switch: self._deliver(switch, message),
        )
        for handle in self.replicas:
            # Replicas know the switch (tables, datapath ids) but their
            # output is rerouted through the voter by the outbox hook.
            handle.controller.register_switch(switch)
        self.on_switch_connected(switch)

    def _deliver(self, switch: "OpenFlowSwitch", message: object) -> None:
        """Ship a voted (or pass-through) message over the channel."""
        latency = switch.controller_latency()
        self.sim.schedule(latency, lambda: switch.handle_controller_message(message))

    # ------------------------------------------------------------------
    # fan-in (switch -> replicas)
    # ------------------------------------------------------------------
    def _dispatch(self, switch: "OpenFlowSwitch", message: object) -> None:
        if isinstance(
            message, (PacketIn, FlowRemoved, PortStatsReply, FlowStatsReply)
        ):
            if isinstance(message, PacketIn):
                self._cause_trace = getattr(message.packet, "trace_id", None)
            try:
                for handle in self.replicas:
                    if handle.crashed:
                        continue
                    if isinstance(message, PacketIn):
                        # Each replica gets its own packet clone: a replica
                        # that scribbles on headers must not poison the
                        # others' view of the event.
                        fanned: object = dataclasses.replace(
                            message, packet=message.packet.copy()
                        )
                    else:
                        fanned = message
                    handle.controller._dispatch(switch, fanned)
            finally:
                self._cause_trace = None
            return
        super()._dispatch(switch, message)

    # ------------------------------------------------------------------
    # fan-out (replicas -> voter -> switch)
    # ------------------------------------------------------------------
    def _replica_emit(
        self, handle: ReplicaHandle, switch: "OpenFlowSwitch", message: object
    ) -> None:
        handle.messages_emitted += 1
        tainted = False
        if handle.compromise is not None:
            message, tainted = handle.compromise.apply(message, self.sim.now)
            if tainted:
                handle.malicious_emitted += 1
                if handle.first_tainted_at is None:
                    handle.first_tainted_at = self.sim.now
                self.trace(
                    "ctrl.replica_lie",
                    replica=handle.index,
                    strategy=handle.compromise.strategy,
                    dpid=switch.datapath_id,
                )
            if message is None:
                return
        if self.k == 1:
            # Unreplicated: straight pass-through, identical timing and
            # bytes to a plain Controller.send().
            self._deliver(switch, message)
            return
        # A PacketOut carries its packet's own trace id; FlowMods fall
        # back to the PacketIn being fanned out right now (if marked).
        trace = getattr(getattr(message, "packet", None), "trace_id", None)
        if trace is None:
            trace = self._cause_trace
        self.compare.submit(
            handle.index, switch.datapath_id, message,
            tainted=tainted, trace=trace,
        )

    # ------------------------------------------------------------------
    # replica fault/compromise API (driven by the chaos engine)
    # ------------------------------------------------------------------
    def replica_index(self, target: "int | str") -> int:
        """Resolve a replica by index, short ("c1") or full name."""
        if isinstance(target, int):
            if not 0 <= target < self.k:
                raise KeyError(f"no replica {target} (k={self.k})")
            return target
        for handle in self.replicas:
            if target == handle.name or target == f"c{handle.index}":
                return handle.index
        known = ", ".join(h.name for h in self.replicas)
        raise KeyError(f"unknown replica {target!r} (known: {known})")

    def crash_replica(self, target: "int | str") -> None:
        """Fail-stop one replica: it stops receiving and emitting."""
        handle = self.replicas[self.replica_index(target)]
        if handle.crashed:
            return
        handle.crashed = True
        self.trace("ctrl.replica_crash", replica=handle.index)

    def restart_replica(self, target: "int | str") -> None:
        """Bring a crashed replica back (with whatever state it kept).

        Its app state is stale relative to its siblings, so its first
        decisions may diverge until it re-learns — the voter masks that
        and, if persistent, quarantines it into probation.
        """
        handle = self.replicas[self.replica_index(target)]
        if not handle.crashed:
            return
        handle.crashed = False
        self.trace("ctrl.replica_restart", replica=handle.index)

    def compromise_replica(
        self,
        target: "int | str",
        strategy: str = "blackhole",
        lie_every: int = 1,
        until: Optional[float] = None,
    ) -> None:
        """Turn one replica into a liar (its output is mutated)."""
        if strategy not in CTRL_STRATEGIES:
            known = ", ".join(sorted(CTRL_STRATEGIES))
            raise ValueError(f"unknown compromise strategy {strategy!r} (known: {known})")
        if lie_every < 1:
            raise ValueError(f"lie_every must be >= 1, got {lie_every}")
        handle = self.replicas[self.replica_index(target)]
        handle.compromise = CompromisePlan(
            strategy=strategy, lie_every=lie_every, until=until
        )
        self.trace(
            "ctrl.replica_compromise",
            replica=handle.index,
            strategy=strategy,
            lie_every=lie_every,
        )

    def restore_replica(self, target: "int | str") -> None:
        """End a compromise campaign (the replica tells the truth again)."""
        handle = self.replicas[self.replica_index(target)]
        if handle.compromise is None:
            return
        handle.compromise = None
        self.trace("ctrl.replica_restore", replica=handle.index)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Finalise pending votes (end-of-run accounting)."""
        self.compare.flush()

    def replica_stats(self) -> List[dict]:
        return [handle.as_dict() for handle in self.replicas]

    def __repr__(self) -> str:
        return f"ReplicatedControlPlane({self.name}, k={self.k})"
