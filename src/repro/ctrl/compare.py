"""The trusted control-plane voter (P4BFT-style quorum over flow-mods).

:class:`ControlCompare` is to the control plane what
:class:`~repro.core.compare.CompareCore` is to the data plane: a trusted
element that receives every replica's outbound control message, votes on
the canonical byte encoding (:mod:`repro.ctrl.digest`), and releases a
message to the switch only once a strict majority of replicas produced a
byte-identical copy.  It reuses the same machinery end to end:

* :class:`~repro.core.votes.VoteBook` for quorum accounting — the vote
  key is ``(datapath_id, digest(message))`` and the entry's payload slot
  holds the message object itself;
* :class:`~repro.core.membership.QuorumMembershipMixin` for quarantine,
  dynamic quorum and probation re-admission — byte for byte the state
  machine the data-plane compare runs;
* the shared alarm kinds, so the existing
  :class:`~repro.chaos.quarantine.QuarantineController` closes the loop
  unchanged (pointed at this voter instead of a compare core).

Two failure signatures are distinguished:

* a replica that *stops emitting* (crash) goes missing from released
  decisions; ``miss_threshold`` consecutive misses raise
  ``ALARM_ROUTER_UNAVAILABLE`` — same rule, same alarm as a silent
  router;
* a replica that *lies* (compromise) emits bytes no majority ever
  confirms; its entries expire unreleased, and after
  ``divergence_threshold`` strikes the voter raises
  ``ALARM_MINORITY_DIVERGENCE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from repro.core.alarms import (
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
    AlarmSink,
)
from repro.core.membership import QuorumMembershipMixin
from repro.core.votes import VoteBook, VoteEntry
from repro.ctrl.digest import digest
from repro.obs.metrics import active_registry
from repro.sim import PeriodicTask, Simulator, TraceBus

__all__ = ["ControlCompareConfig", "CtrlStats", "ControlCompare"]


@dataclass
class ControlCompareConfig:
    """Tunable parameters of the control-plane voter."""

    k: int = 3
    quorum: Optional[int] = None  # default: floor(k/2) + 1 (strict majority)
    #: how long a decision waits for its majority before it is voided;
    #: replicas answer the same fanned-out event synchronously (plus
    #: their service time), so this can be much shorter than a data-plane
    #: buffer timeout
    vote_timeout: float = 2e-3
    #: consecutive released decisions a replica may miss before the
    #: unavailable alarm fires (the crash signature)
    miss_threshold: int = 4
    #: unconfirmed divergent decisions before the divergence alarm fires
    #: (the lying signature); 1 = zero tolerance
    divergence_threshold: int = 1
    #: consecutive clean probation copies before re-admission
    probation_clean_target: int = 6
    #: the control plane may degrade all the way to one replica (an
    #: unreplicated controller is today's baseline, not an outage)
    min_active_branches: int = 1

    def effective_quorum(self) -> int:
        if self.quorum is not None:
            return self.quorum
        return self.k // 2 + 1

    def validate(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        quorum = self.effective_quorum()
        if not 1 <= quorum <= self.k:
            raise ValueError(f"quorum {quorum} out of range for k={self.k}")
        if self.vote_timeout <= 0:
            raise ValueError("vote_timeout must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.divergence_threshold < 1:
            raise ValueError("divergence_threshold must be >= 1")
        if self.probation_clean_target < 1:
            raise ValueError("probation_clean_target must be >= 1")
        if self.min_active_branches < 1:
            raise ValueError("min_active_branches must be >= 1")


@dataclass
class CtrlStats:
    """Counters exposed by a control-plane voter."""

    submissions: int = 0
    released: int = 0
    late_copies: int = 0
    branch_duplicates: int = 0
    #: decisions voided: expired without a majority
    blocked_no_quorum: int = 0
    #: decisions voided that only ever had probation votes
    blocked_quarantined: int = 0
    expired_released: int = 0
    quarantined_copies: int = 0
    #: released decisions whose digest a compromised replica also emitted
    #: — the acceptance metric; must stay 0 under a minority of liars
    malicious_released: int = 0
    quarantines: int = 0
    readmissions: int = 0
    probation_resets: int = 0

    @property
    def blocked(self) -> int:
        return self.blocked_no_quorum + self.blocked_quarantined

    def as_dict(self) -> dict:
        data = dict(self.__dict__)
        data["blocked"] = self.blocked
        return data


class ControlCompare(QuorumMembershipMixin):
    """Majority vote over replica control messages, per switch."""

    trace_prefix = "ctrl"

    def __init__(
        self,
        sim: Simulator,
        config: ControlCompareConfig,
        name: str = "ctrl_compare",
        alarm_sink: Optional[AlarmSink] = None,
        trace_bus: Optional[TraceBus] = None,
        replica_ids: Optional[Sequence[int]] = None,
    ) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.name = name
        self.alarms = alarm_sink or AlarmSink(trace_bus)
        self.trace_bus = trace_bus
        self.branch_ids = (
            list(replica_ids) if replica_ids is not None else list(range(config.k))
        )
        self.book = VoteBook(config.effective_quorum(), config.vote_timeout)
        self.stats = CtrlStats()
        #: datapath_id -> release callable (delivers one winning message)
        self._releases: Dict[int, Callable[[object], None]] = {}
        # liveness bookkeeping (same shape as CompareCore's)
        self._miss_counts: Dict[int, int] = {b: 0 for b in self.branch_ids}
        self._unavailable: Dict[int, bool] = {b: False for b in self.branch_ids}
        self._last_clean_vote: Dict[int, float] = {}
        # divergence bookkeeping: replica -> unconfirmed-divergent strikes
        self._divergence_strikes: Dict[int, int] = {}
        self._divergence_alarmed: Dict[int, bool] = {}
        # vote keys a compromised replica emitted (simulation-side truth,
        # used only to score the malicious_released acceptance metric)
        self._tainted: Set[Tuple[int, bytes]] = set()
        # vote key -> trace id of the data-plane packet that caused the
        # decision (first submission wins); telemetry only — lets
        # `repro obs trace` stitch control-plane spans onto a packet's
        # data-plane trajectory
        self._entry_trace: Dict[Tuple[int, bytes], int] = {}
        self._init_membership()
        self._sweeper = PeriodicTask(sim, config.vote_timeout, self._sweep)
        registry = active_registry()
        if registry.enabled:
            self._c_votes = registry.counter(
                "ctrl_votes_total",
                "control-message copies voted on by the control-plane voter",
                labelnames=("compare",),
            ).labels(name)
            self._c_blocked = registry.counter(
                "ctrl_flowmods_blocked_total",
                "control messages voided without reaching a majority",
                labelnames=("compare", "reason"),
            )
            self._h_vote_latency = registry.histogram(
                "ctrl_vote_latency_seconds",
                "time from a decision's first copy arriving to its release",
                labelnames=("compare",),
            ).labels(name)
        else:
            self._c_votes = None
            self._c_blocked = None
            self._h_vote_latency = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_switch(
        self, datapath_id: int, release: Callable[[object], None]
    ) -> None:
        """Attach the release path for one switch's control channel."""
        self._releases[datapath_id] = release

    # ------------------------------------------------------------------
    # submission path (replica -> voter)
    # ------------------------------------------------------------------
    def submit(
        self,
        replica: int,
        datapath_id: int,
        message: object,
        tainted: bool = False,
        trace: Optional[int] = None,
    ) -> None:
        """Accept one outbound control message from ``replica``.

        ``tainted`` marks copies a compromise hook modified; it never
        influences voting (the voter cannot know), only the
        ``malicious_released`` accounting the acceptance tests read.
        ``trace`` carries the trace id of the data-plane packet whose
        PacketIn caused this message (when that packet is marked); it is
        attached to the decision's span records and never affects voting.
        """
        now = self.sim.now
        self.stats.submissions += 1
        if self._c_votes is not None:
            self._c_votes.inc()
        if not self._sweeper.running:
            self._sweeper.start(self.config.vote_timeout)
        key: Tuple[int, bytes] = (datapath_id, digest(message))
        if tainted:
            self._tainted.add(key)
        if trace is not None:
            self._entry_trace.setdefault(key, trace)
        quarantined = replica in self._quarantined
        outcome = self.book.observe(
            key, replica, now, message, countable=not quarantined
        )
        if outcome.evicted_stale is not None:
            self._finalise(outcome.evicted_stale)
        if outcome.is_branch_duplicate:
            self.stats.branch_duplicates += 1
        elif not quarantined:
            # A clean counted vote heals the liveness bookkeeping
            # immediately (same stale-count guard as the data plane).
            self._last_clean_vote[replica] = now
            if self._miss_counts.get(replica):
                self._miss_counts[replica] = 0
            if self._unavailable.get(replica):
                self._unavailable[replica] = False
        vote_data = dict(
            branch=replica,
            dpid=datapath_id,
            votes=outcome.entry.distinct_branches,
            kind=type(message).__name__,
            duplicate=outcome.is_branch_duplicate,
            late=outcome.late_copy,
            probation=quarantined,
        )
        known_trace = self._entry_trace.get(key)
        if known_trace is not None:
            vote_data["trace"] = known_trace
        self._trace("ctrl.vote", **vote_data)
        if quarantined:
            self.stats.quarantined_copies += 1
            if outcome.entry.released and not outcome.is_branch_duplicate:
                self._note_probation_clean(replica)
            return
        if outcome.late_copy:
            self.stats.late_copies += 1
            return
        if outcome.newly_released:
            self._do_release(outcome.entry, now)

    def _do_release(self, entry: VoteEntry, now: float) -> None:
        """Deliver an entry's winning message and settle probation."""
        self.stats.released += 1
        key = entry.key
        if key in self._tainted:
            # A majority confirmed bytes a compromised replica emitted:
            # either the lie found co-conspirators or it equalled the
            # honest output (not a lie at all); count it — the ctrlbft
            # acceptance gate requires this to stay 0.
            self.stats.malicious_released += 1
            self._trace("ctrl.malicious_release", dpid=key[0])
        if self._h_vote_latency is not None:
            self._h_vote_latency.observe(now - entry.first_seen)
        release_data = dict(
            dpid=key[0],
            votes=entry.distinct_branches,
            kind=type(entry.packet).__name__,
            latency=now - entry.first_seen,
        )
        release_trace = self._entry_trace.get(key)
        if release_trace is not None:
            release_data["trace"] = release_trace
        self._trace("ctrl.release", **release_data)
        release = self._releases.get(key[0])
        if release is not None:
            release(entry.packet)
        for waiting in list(entry.probation_counts):
            self._note_probation_clean(waiting)

    # ------------------------------------------------------------------
    # expiry path
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        for entry in self.book.pop_expired(self.sim.now):
            self._finalise(entry)
        if not len(self.book):
            self._sweeper.stop()

    def _finalise(self, entry: VoteEntry) -> None:
        """Account for a decision leaving the book (expiry/eviction)."""
        self._tainted.discard(entry.key)
        entry_trace = self._entry_trace.pop(entry.key, None)
        if entry.released:
            self.stats.expired_released += 1
            for missing in entry.missing_branches(self.branch_ids):
                if missing in self._quarantined or missing in entry.probation_counts:
                    continue
                self._note_missing(missing, entry.first_seen)
            for present in entry.branches():
                self._miss_counts[present] = 0
                if self._unavailable.get(present):
                    self._unavailable[present] = False
            return
        # Voided: nobody assembled a majority for these bytes.
        if entry.branch_counts:
            self.stats.blocked_no_quorum += 1
            reason = "no_quorum"
        else:
            self.stats.blocked_quarantined += 1
            reason = "quarantined"
        if self._c_blocked is not None:
            self._c_blocked.labels(self.name, reason).inc()
        blocked_data = dict(
            dpid=entry.key[0],
            reason=reason,
            votes=entry.distinct_branches,
            kind=type(entry.packet).__name__,
        )
        if entry_trace is not None:
            blocked_data["trace"] = entry_trace
        self._trace("ctrl.blocked", **blocked_data)
        for waiting in list(entry.probation_counts):
            # Probation bytes no active majority confirmed: start over.
            self._reset_probation(waiting)
        for voter in entry.branches():
            self._note_divergence(voter)

    # ------------------------------------------------------------------
    # failure signatures
    # ------------------------------------------------------------------
    def _note_missing(self, replica: int, first_seen: float) -> None:
        if first_seen < self._last_clean_vote.get(replica, -1.0):
            return
        count = self._miss_counts.get(replica, 0) + 1
        self._miss_counts[replica] = count
        if count >= self.config.miss_threshold and not self._unavailable.get(replica):
            self._unavailable[replica] = True
            self.alarms.raise_alarm(
                self.sim.now,
                ALARM_ROUTER_UNAVAILABLE,
                self.name,
                branch=replica,
                consecutive_misses=count,
            )

    def _note_divergence(self, replica: int) -> None:
        strikes = self._divergence_strikes.get(replica, 0) + 1
        self._divergence_strikes[replica] = strikes
        if (
            strikes >= self.config.divergence_threshold
            and not self._divergence_alarmed.get(replica)
        ):
            self._divergence_alarmed[replica] = True
            self.alarms.raise_alarm(
                self.sim.now,
                ALARM_MINORITY_DIVERGENCE,
                self.name,
                branch=replica,
                strikes=strikes,
            )

    def readmit_branch(self, branch: int, reason: str = "probation_complete") -> bool:
        readmitted = super().readmit_branch(branch, reason)
        if readmitted:
            # A re-admitted replica earns a clean slate on both
            # signatures; a relapse re-alarms from scratch.
            self._divergence_strikes[branch] = 0
            self._divergence_alarmed[branch] = False
        return readmitted

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Finalise everything still buffered (end-of-run accounting)."""
        for entry in self.book.entries():
            self._finalise(entry)
        self.book.clear()
        self._sweeper.stop()

    def _trace(self, topic: str, **data: object) -> None:
        if self.trace_bus is not None:
            self.trace_bus.emit(self.sim.now, topic, self.name, **data)

    def __repr__(self) -> str:
        return (
            f"ControlCompare({self.name}, k={self.config.k}, "
            f"quorum={self.config.effective_quorum()})"
        )
