"""The compare as an SDN controller application — the paper's **POX3**.

"For comparison, we compare the performance of our C-based compare to a
compare implemented as a POX controller application."  Here the compare
core runs inside a controller: every candidate copy crosses the OpenFlow
control channel as a packet-in, pays the controller's (interpreted-
Python-scale) per-message processing cost, and the release travels back
as a packet-out.  The paper attributes POX3's poor showing to exactly
these two costs — language overhead and piping every packet through the
controller — both of which are explicit parameters here.
"""

from __future__ import annotations

from typing import Dict

from repro.core.compare import CompareContext, CompareCore
from repro.core.endpoint import CombinerEndpoint
from repro.openflow.controller import Controller
from repro.openflow.messages import PacketIn, PacketOut
from repro.openflow.switch import OpenFlowSwitch


class PoxStyleCompareApp(Controller):
    """Controller application hosting a :class:`CompareCore`.

    Attach combiner endpoints with ``endpoint.connect_controller(app,
    latency)`` followed by ``endpoint.attach_compare_controller(app.core)``;
    the endpoint then submits branch copies as packet-ins and treats
    packet-outs as release decisions.
    """

    def __init__(
        self,
        sim,
        core: CompareCore,
        name: str = "pox-compare",
        trace_bus=None,
        proc_time: float = 0.0,
    ) -> None:
        super().__init__(sim, name, trace_bus=trace_bus, proc_time=proc_time)
        self.core = core
        self._contexts: Dict[int, CompareContext] = {}

    def _context_for(self, endpoint: CombinerEndpoint) -> CompareContext:
        context = self._contexts.get(endpoint.datapath_id)
        if context is None:

            def release(packet) -> None:
                self.send_packet_out(
                    endpoint, PacketOut(packet=packet, actions=[], in_port=0)
                )

            context = CompareContext(
                scope=endpoint.name,
                release=release,
                block_branch=endpoint.block_branch_ingress,
            )
            self._contexts[endpoint.datapath_id] = context
        return context

    def on_packet_in(self, switch: OpenFlowSwitch, event: PacketIn) -> None:
        if not isinstance(switch, CombinerEndpoint):
            self.trace("pox_compare.not_an_endpoint", datapath=switch.datapath_id)
            return
        branch = switch.branch_of_port(event.in_port)
        if branch is None:
            self.trace("pox_compare.unknown_branch", in_port=event.in_port)
            return
        self.core.submit(event.packet, branch, self._context_for(switch))
