"""The compare as an SDN controller application — the paper's **POX3**.

"For comparison, we compare the performance of our C-based compare to a
compare implemented as a POX controller application."  Here the compare
core runs inside a controller: every candidate copy crosses the OpenFlow
control channel as a packet-in, pays the controller's (interpreted-
Python-scale) per-message processing cost, and the release travels back
as a packet-out.  The paper attributes POX3's poor showing to exactly
these two costs — language overhead and piping every packet through the
controller — both of which are explicit parameters here.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.compare import CompareContext, CompareCore
from repro.core.endpoint import CombinerEndpoint
from repro.openflow.controller import Controller
from repro.openflow.messages import PacketIn, PacketOut
from repro.openflow.switch import OpenFlowSwitch
from repro.transport import ROLE_COLLECT, ROLE_RELEASE, Session, SessionSpec, Transport


class ControlChannelReleaseSession(Session):
    """Release-role session over the OpenFlow control channel: each
    message is a packet-out back to the collecting endpoint."""

    def __init__(
        self,
        transport: Transport,
        app: "PoxStyleCompareApp",
        endpoint: CombinerEndpoint,
    ) -> None:
        super().__init__(transport, SessionSpec(endpoint.name, ROLE_RELEASE))
        self.app = app
        self.endpoint = endpoint

    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        self.stats.tx_messages += 1
        if self.transport._tracers:
            self.transport._trace(
                "tx", self.spec, packet, {"branch": branch, "claim": claim}
            )
        self.app.send_packet_out(
            self.endpoint, PacketOut(packet=packet, actions=[], in_port=0)
        )


class PoxStyleCompareApp(Controller):
    """Controller application hosting a :class:`CompareCore`.

    Attach combiner endpoints with ``endpoint.connect_controller(app,
    latency)`` followed by ``endpoint.attach_compare_controller(app.core)``;
    the endpoint then submits branch copies as packet-ins and treats
    packet-outs as release decisions.
    """

    def __init__(
        self,
        sim,
        core: CompareCore,
        name: str = "pox-compare",
        trace_bus=None,
        proc_time: float = 0.0,
        transport: Optional[Transport] = None,
    ) -> None:
        super().__init__(sim, name, trace_bus=trace_bus, proc_time=proc_time)
        self.core = core
        self.transport = transport or Transport(name=f"{name}.transport")
        self._sessions: Dict[int, Tuple[Session, CompareContext]] = {}

    def _sessions_for(
        self, endpoint: CombinerEndpoint
    ) -> Tuple[Session, CompareContext]:
        entry = self._sessions.get(endpoint.datapath_id)
        if entry is None:
            release = self.transport.adopt(
                ControlChannelReleaseSession(self.transport, self, endpoint)
            )
            context = CompareContext(
                scope=endpoint.name,
                release=release.send,
                block_branch=endpoint.block_branch_ingress,
            )
            collect = self.transport.adopt(
                Session(self.transport, SessionSpec(endpoint.name, ROLE_COLLECT))
            )
            collect.set_receiver(
                lambda packet, meta, context=context: self.core.submit(
                    packet, meta["branch"], context
                )
            )
            entry = (collect, context)
            self._sessions[endpoint.datapath_id] = entry
        return entry

    def on_packet_in(self, switch: OpenFlowSwitch, event: PacketIn) -> None:
        if not isinstance(switch, CombinerEndpoint):
            self.trace("pox_compare.not_an_endpoint", datapath=switch.datapath_id)
            return
        branch = switch.branch_of_port(event.in_port)
        if branch is None:
            self.trace("pox_compare.unknown_branch", in_port=event.in_port)
            return
        collect, _context = self._sessions_for(switch)
        collect.deliver(event.packet, {"branch": branch})
