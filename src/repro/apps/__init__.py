"""Controller applications: learning switch, static routing, POX compare."""

from repro.apps.combiner_app import PoxStyleCompareApp
from repro.apps.hubs import hub_rule_count, install_hub_rules, install_mux_rules
from repro.apps.learning import LearningSwitchApp
from repro.apps.static_routing import StaticMacRouter

__all__ = [
    "PoxStyleCompareApp",
    "hub_rule_count",
    "install_hub_rules",
    "install_mux_rules",
    "LearningSwitchApp",
    "StaticMacRouter",
]
