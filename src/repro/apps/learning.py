"""A classic L2 learning-switch controller application.

The standard first SDN app (POX's ``l2_learning``): learn the source MAC
on packet-in, install a dl_dst flow toward the learned port, flood
unknowns.  Used by examples and tests as the benign baseline control
plane, and by the virtualized-NetCo scenario for the non-tunnelled edge.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.addresses import MacAddress
from repro.openflow.actions import Output, flood
from repro.openflow.controller import Controller
from repro.openflow.match import Match
from repro.openflow.messages import FLOWMOD_ADD, FlowMod, PacketIn, PacketOut
from repro.openflow.switch import OpenFlowSwitch


class LearningSwitchApp(Controller):
    """Reactive MAC learning over any number of switches."""

    def __init__(
        self,
        sim,
        name: str = "l2-learning",
        trace_bus=None,
        proc_time: float = 0.0,
        flow_idle_timeout: float = 0.0,
        flow_hard_timeout: float = 0.0,
        flow_priority: int = 10,
    ) -> None:
        super().__init__(sim, name, trace_bus=trace_bus, proc_time=proc_time)
        self.flow_idle_timeout = flow_idle_timeout
        self.flow_hard_timeout = flow_hard_timeout
        self.flow_priority = flow_priority
        # (datapath_id, mac) -> port
        self.tables: Dict[Tuple[int, MacAddress], int] = {}
        self.floods = 0
        self.flows_installed = 0

    def on_packet_in(self, switch: OpenFlowSwitch, event: PacketIn) -> None:
        packet = event.packet
        src, dst = packet.eth.src, packet.eth.dst
        if not src.is_multicast:
            self.tables[(switch.datapath_id, src)] = event.in_port
        out_port = self.tables.get((switch.datapath_id, dst))
        if out_port is None or dst.is_broadcast:
            self.floods += 1
            self.send_packet_out(
                switch,
                PacketOut(packet=packet, actions=[flood()], in_port=event.in_port),
            )
            return
        self.flows_installed += 1
        self.send_flow_mod(
            switch,
            FlowMod(
                command=FLOWMOD_ADD,
                match=Match(dl_dst=dst),
                actions=[Output(out_port)],
                priority=self.flow_priority,
                idle_timeout=self.flow_idle_timeout,
                hard_timeout=self.flow_hard_timeout,
            ),
        )
        self.send_packet_out(
            switch,
            PacketOut(packet=packet, actions=[Output(out_port)], in_port=event.in_port),
        )

    def learned_port(self, switch: OpenFlowSwitch, mac: MacAddress) -> int:
        return self.tables.get((switch.datapath_id, MacAddress(mac)), -1)
