"""Proactive static MAC-destination routing.

Section VI: "we set up the Mininet network with routing based on MAC
destination addresses".  :class:`StaticMacRouter` computes shortest
paths over a :class:`~repro.net.topology.Network` and installs a
``dl_dst -> output port`` rule on every switch along each host-to-host
path — the control plane of the datacenter case study.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


class StaticMacRouter:
    """Installs MAC-destination routes along explicit or shortest paths."""

    def __init__(self, network: Network, priority: int = 10) -> None:
        self.network = network
        self.priority = priority
        # (switch, dst mac string) -> out port, for screening/inspection
        self.installed: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def install_path(self, path: List[str], dst_host: Host) -> None:
        """Program every switch on ``path`` to reach ``dst_host``.

        ``path`` is a node-name list ending at the destination host.
        """
        if len(path) < 2:
            raise ValueError("path must contain at least source and destination")
        if path[-1] != dst_host.name:
            raise ValueError(
                f"path must end at {dst_host.name!r}, ends at {path[-1]!r}"
            )
        for here, nxt in zip(path[:-1], path[1:]):
            node = self.network.node(here)
            if not isinstance(node, OpenFlowSwitch):
                continue  # hosts on the path don't take rules
            out_port = self.network.port_no_between(here, nxt)
            node.install(
                Match(dl_dst=dst_host.mac), [Output(out_port)], priority=self.priority
            )
            self.installed[(here, str(dst_host.mac))] = out_port

    def install_pair(self, a: Host, b: Host) -> Tuple[List[str], List[str]]:
        """Shortest-path routes in both directions between two hosts."""
        forward = self.network.shortest_path(a.name, b.name)
        backward = self.network.shortest_path(b.name, a.name)
        self.install_path(forward, b)
        self.install_path(backward, a)
        return forward, backward

    def install_full_mesh(self, hosts: Iterable[Host]) -> None:
        """Routes between every pair of hosts (small topologies only)."""
        host_list = list(hosts)
        for i, a in enumerate(host_list):
            for b in host_list[i + 1 :]:
                self.install_pair(a, b)

    def route_of(self, switch_name: str, dst_host: Host) -> Optional[int]:
        return self.installed.get((switch_name, str(dst_host.mac)))
