"""Hub behaviour expressed as plain OpenFlow rules.

Section IV argues the hub "can be realized in the datapath": indeed, in
OpenFlow 1.0 duplication is just an action list with several outputs.
These installers program an ordinary :class:`OpenFlowSwitch` to act as a
hub or as a static mux — demonstrating that the trusted components need
nothing beyond the match-action datapath (and giving tests a second,
rule-based implementation to check the built-in endpoints against).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


def install_hub_rules(
    switch: OpenFlowSwitch,
    upstream_port: int,
    branch_ports: Sequence[int],
    priority: int = 10,
) -> None:
    """Duplicate upstream ingress to every branch; merge the reverse."""
    switch.install(
        Match(in_port=upstream_port),
        [Output(port) for port in branch_ports],
        priority=priority,
    )
    for port in branch_ports:
        switch.install(
            Match(in_port=port), [Output(upstream_port)], priority=priority
        )


def install_mux_rules(
    switch: OpenFlowSwitch,
    collect_ports: Iterable[int],
    compare_port: int,
    priority: int = 10,
) -> None:
    """Forward every collected branch packet to the compare attachment."""
    for port in collect_ports:
        switch.install(Match(in_port=port), [Output(compare_port)], priority=priority)


def hub_rule_count(branch_ports: Sequence[int]) -> int:
    """Rules a hub needs: one per direction class (cost argument in the
    paper: trusted components must stay simple)."""
    return 1 + len(branch_ports)
