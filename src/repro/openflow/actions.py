"""OpenFlow 1.0 actions.

Actions are small immutable objects.  Header-modifying actions mutate the
packet *copy* being processed by the datapath (the switch copies frames
before applying an action list, matching OF semantics where each action
list operates on its own buffer).

An empty action list means *drop*, as in OpenFlow 1.0.
"""

from __future__ import annotations

from typing import Union

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import Packet, Tcp, Udp, Vlan

# Special virtual port numbers (mirroring OFPP_* constants).
PORT_FLOOD = 0xFFFB
PORT_CONTROLLER = 0xFFFD
PORT_IN_PORT = 0xFFF8


class Output:
    """Forward out of a physical port or a virtual port (flood/controller)."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Output) and self.port == other.port

    def __hash__(self) -> int:
        return hash(("output", self.port))

    def __repr__(self) -> str:
        special = {
            PORT_FLOOD: "FLOOD",
            PORT_CONTROLLER: "CONTROLLER",
            PORT_IN_PORT: "IN_PORT",
        }
        return f"Output({special.get(self.port, self.port)})"


class SetDlSrc:
    __slots__ = ("mac",)

    def __init__(self, mac: MacAddress) -> None:
        self.mac = MacAddress(mac)

    def apply(self, packet: Packet) -> None:
        packet.eth.src = self.mac

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetDlSrc) and self.mac == other.mac

    def __hash__(self) -> int:
        return hash(("set_dl_src", self.mac))

    def __repr__(self) -> str:
        return f"SetDlSrc({self.mac})"


class SetDlDst:
    __slots__ = ("mac",)

    def __init__(self, mac: MacAddress) -> None:
        self.mac = MacAddress(mac)

    def apply(self, packet: Packet) -> None:
        packet.eth.dst = self.mac

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetDlDst) and self.mac == other.mac

    def __hash__(self) -> int:
        return hash(("set_dl_dst", self.mac))

    def __repr__(self) -> str:
        return f"SetDlDst({self.mac})"


class SetVlanVid:
    """Set (or add) the 802.1Q VID."""

    __slots__ = ("vid",)

    def __init__(self, vid: int) -> None:
        self.vid = vid

    def apply(self, packet: Packet) -> None:
        if packet.vlan is None:
            packet.vlan = Vlan(self.vid)
        else:
            packet.vlan.vid = self.vid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetVlanVid) and self.vid == other.vid

    def __hash__(self) -> int:
        return hash(("set_vlan_vid", self.vid))

    def __repr__(self) -> str:
        return f"SetVlanVid({self.vid})"


class StripVlan:
    __slots__ = ()

    def apply(self, packet: Packet) -> None:
        packet.vlan = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StripVlan)

    def __hash__(self) -> int:
        return hash("strip_vlan")

    def __repr__(self) -> str:
        return "StripVlan()"


class SetNwSrc:
    __slots__ = ("ip",)

    def __init__(self, ip: IpAddress) -> None:
        self.ip = IpAddress(ip)

    def apply(self, packet: Packet) -> None:
        if packet.ip is not None:
            packet.ip.src = self.ip

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetNwSrc) and self.ip == other.ip

    def __hash__(self) -> int:
        return hash(("set_nw_src", self.ip))

    def __repr__(self) -> str:
        return f"SetNwSrc({self.ip})"


class SetNwDst:
    __slots__ = ("ip",)

    def __init__(self, ip: IpAddress) -> None:
        self.ip = IpAddress(ip)

    def apply(self, packet: Packet) -> None:
        if packet.ip is not None:
            packet.ip.dst = self.ip

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetNwDst) and self.ip == other.ip

    def __hash__(self) -> int:
        return hash(("set_nw_dst", self.ip))

    def __repr__(self) -> str:
        return f"SetNwDst({self.ip})"


class SetTpSrc:
    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def apply(self, packet: Packet) -> None:
        if isinstance(packet.l4, (Udp, Tcp)):
            packet.l4.sport = self.port

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetTpSrc) and self.port == other.port

    def __hash__(self) -> int:
        return hash(("set_tp_src", self.port))

    def __repr__(self) -> str:
        return f"SetTpSrc({self.port})"


class SetTpDst:
    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port

    def apply(self, packet: Packet) -> None:
        if isinstance(packet.l4, (Udp, Tcp)):
            packet.l4.dport = self.port

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetTpDst) and self.port == other.port

    def __hash__(self) -> int:
        return hash(("set_tp_dst", self.port))

    def __repr__(self) -> str:
        return f"SetTpDst({self.port})"


ModifyAction = Union[
    SetDlSrc, SetDlDst, SetVlanVid, StripVlan, SetNwSrc, SetNwDst, SetTpSrc, SetTpDst
]
Action = Union[Output, ModifyAction]


def flood() -> Output:
    """Convenience: an ``Output`` to the FLOOD virtual port."""
    return Output(PORT_FLOOD)


def to_controller() -> Output:
    """Convenience: an ``Output`` to the CONTROLLER virtual port."""
    return Output(PORT_CONTROLLER)
