"""OpenFlow 1.0 flow table: prioritised entries, counters, timeouts.

Lookup returns the highest-priority matching entry (earliest-installed on
ties, which is deterministic and matches common switch behaviour).  Idle
and hard timeouts are evaluated lazily against the simulated clock; the
switch sweeps expired entries and emits *flow-removed* notifications.

Lookups are served by a two-tier structure: fully-specified entries (the
shape a reactive controller installs per flow — :meth:`Match.is_exact`)
live in a hash index keyed by their 12-tuple, probed with the packet's
:func:`packet_probe_keys`; everything else falls back to a linear scan in
``(priority desc, install order)`` rank, which stops early once it cannot
beat the best indexed hit.  Control-plane mutations (add/remove/sweep)
rebuild the index — they are rarer than lookups by orders of magnitude.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match, packet_probe_keys


class FlowEntry:
    """One installed flow rule."""

    __slots__ = (
        "match",
        "actions",
        "priority",
        "cookie",
        "idle_timeout",
        "hard_timeout",
        "created_at",
        "last_matched",
        "packet_count",
        "byte_count",
        "seq",
    )

    def __init__(
        self,
        match: Match,
        actions: Sequence[Action],
        priority: int = 0,
        cookie: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        created_at: float = 0.0,
    ) -> None:
        self.match = match
        self.actions: List[Action] = list(actions)
        self.priority = priority
        self.cookie = cookie
        self.idle_timeout = idle_timeout  # 0 = never
        self.hard_timeout = hard_timeout  # 0 = never
        self.created_at = created_at
        self.last_matched = created_at
        self.packet_count = 0
        self.byte_count = 0
        # Install-order tie-break, assigned by the owning FlowTable; an
        # entry replacing an identical match+priority inherits the old
        # entry's seq so replacement preserves table position.
        self.seq = 0

    def record_hit(self, packet: Packet, now: float) -> None:
        self.packet_count += 1
        self.byte_count += packet.wire_len
        self.last_matched = now

    def expired(self, now: float) -> Optional[str]:
        """Return the expiry reason ('idle'/'hard') or None."""
        if self.hard_timeout > 0 and now - self.created_at >= self.hard_timeout:
            return "hard"
        if self.idle_timeout > 0 and now - self.last_matched >= self.idle_timeout:
            return "idle"
        return None

    def __repr__(self) -> str:
        return (
            f"FlowEntry(prio={self.priority}, {self.match!r} -> {self.actions!r}, "
            f"pkts={self.packet_count})"
        )


def _rank(entry: FlowEntry) -> Tuple[int, int]:
    """Lookup precedence: higher priority first, then install order."""
    return (-entry.priority, entry.seq)


class FlowTable:
    """Priority-ordered flow table with OF 1.0 add/modify/delete semantics."""

    def __init__(self) -> None:
        self._entries: List[FlowEntry] = []
        self._next_seq = 0
        # Exact-match index: 12-tuple key -> rank-sorted bucket.
        self._exact: Dict[tuple, List[FlowEntry]] = {}
        # Everything else, rank-sorted for the early-exit scan.
        self._wildcard: List[FlowEntry] = []
        # Lookup-path counters (plain ints: incremented per packet, read
        # by the observability pull collector).  ``scan_steps`` counts
        # wildcard entries examined — the quantity the index exists to
        # minimise, and the one the CI regression watch monitors.
        self.lookups = 0
        self.index_hits = 0
        self.scan_steps = 0
        self.misses = 0
        # Mutation stamp + timeout flag for the packet-train lookup memo:
        # a train may reuse its first packet's lookup only while the
        # table is unchanged and no entry can expire between siblings.
        self.epoch = 0
        self.has_timeouts = False

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterable[FlowEntry]:
        return iter(list(self._entries))

    @property
    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def add(self, entry: FlowEntry) -> None:
        """Install an entry; replaces an entry with identical match+priority."""
        for i, existing in enumerate(self._entries):
            if existing.priority == entry.priority and existing.match == entry.match:
                entry.seq = existing.seq  # keep the replaced entry's position
                self._entries[i] = entry
                self._rebuild()
                return
        entry.seq = self._next_seq
        self._next_seq += 1
        self._entries.append(entry)
        self._rebuild()

    def _rebuild(self) -> None:
        """Re-sort and re-index after any control-plane mutation."""
        self.epoch += 1
        self.has_timeouts = any(
            e.idle_timeout > 0.0 or e.hard_timeout > 0.0 for e in self._entries
        )
        self._entries.sort(key=_rank)
        exact: Dict[tuple, List[FlowEntry]] = {}
        wildcard: List[FlowEntry] = []
        for entry in self._entries:
            if entry.match.is_exact():
                exact.setdefault(entry.match._key(), []).append(entry)
            else:
                wildcard.append(entry)
        self._exact = exact
        self._wildcard = wildcard

    def lookup(self, packet: Packet, in_port: int, now: float) -> Optional[FlowEntry]:
        """Highest-priority live entry matching the packet, else None."""
        self.lookups += 1
        best: Optional[FlowEntry] = None
        best_rank: Optional[Tuple[int, int]] = None
        if self._exact:
            for key in packet_probe_keys(packet, in_port):
                bucket = self._exact.get(key)
                if not bucket:
                    continue
                for entry in bucket:  # rank-sorted: first live one wins
                    if entry.expired(now):
                        continue
                    rank = _rank(entry)
                    if best_rank is None or rank < best_rank:
                        best, best_rank = entry, rank
                    break
        indexed = best is not None
        for entry in self._wildcard:  # rank-sorted: stop once outranked
            if best_rank is not None and _rank(entry) > best_rank:
                break
            self.scan_steps += 1
            if entry.expired(now):
                continue
            if entry.match.matches(packet, in_port):
                best = entry
                indexed = False
                break
        if best is not None:
            if indexed:
                self.index_hits += 1
            best.record_hit(packet, now)
        else:
            self.misses += 1
        return best

    def lookup_stats(self) -> Dict[str, int]:
        """Lookup-path counters plus current occupancy."""
        return {
            "lookups": self.lookups,
            "index_hits": self.index_hits,
            "scan_steps": self.scan_steps,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def remove(
        self,
        match: Optional[Match] = None,
        priority: Optional[int] = None,
        strict: bool = False,
    ) -> List[FlowEntry]:
        """Delete entries.

        Non-strict (OF 1.0 DELETE): removes every entry whose match equals
        ``match`` (or all entries when ``match`` is None).  Strict
        (DELETE_STRICT): requires the priority to match too.
        """
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            hit = match is None or entry.match == match
            if strict and priority is not None and entry.priority != priority:
                hit = False
            if hit:
                removed.append(entry)
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            self._rebuild()
        return removed

    def sweep_expired(self, now: float) -> List[FlowEntry]:
        """Remove and return entries whose timeouts have elapsed."""
        expired = [e for e in self._entries if e.expired(now)]
        if expired:
            self._entries = [e for e in self._entries if not e.expired(now)]
            self._rebuild()
        return expired

    def total_packets(self) -> int:
        return sum(e.packet_count for e in self._entries)

    def find(self, predicate: Callable[[FlowEntry], bool]) -> List[FlowEntry]:
        return [e for e in self._entries if predicate(e)]
