"""OpenFlow 1.0 switch datapath.

The switch models a *software* switch (the paper runs Open vSwitch-style
datapaths inside Mininet): each packet pays a per-packet processing cost
(``proc_time``) in a single-server FIFO before the match-action pipeline
runs.  This service time, not the raw link rate, is what bounds throughput
in the paper's testbed — and what makes duplication (Dup5/Central5)
visibly more expensive than Linespeed.

Adversarial routers are ordinary switches with a ``behavior`` attached:
per the threat model, a compromised router may ignore its installed rules
entirely, so the behavior hook runs *instead of* the normal pipeline and
can forward, mirror, rewrite, drop or fabricate packets arbitrarily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.node import Node, Port
from repro.net.packet import Packet
from repro.openflow.actions import (
    Action,
    Output,
    PORT_CONTROLLER,
    PORT_FLOOD,
    PORT_IN_PORT,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    FLOWMOD_ADD,
    FLOWMOD_DELETE,
    FLOWMOD_DELETE_STRICT,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    PACKETIN_ACTION,
    PACKETIN_NO_MATCH,
    PacketIn,
    PacketOut,
    PortStats,
    PortStatsReply,
    PortStatsRequest,
)
from repro.sim import CpuResource, Simulator, TraceBus
from repro.transport import ROLE_EGRESS, DesTransport, SessionSpec, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.behaviors import AdversarialBehavior
    from repro.openflow.controller import Controller

#: train-memo marker: the resolved Output port exists but is not wired
_BAD_EGRESS = object()


class SwitchStats:
    """Datapath-level counters."""

    __slots__ = (
        "rx_packets",
        "forwarded",
        "dropped_no_match",
        "dropped_no_actions",
        "dropped_service_queue",
        "dropped_failed",
        "packet_ins",
        "packet_outs",
        "flow_mods",
        "behavior_handled",
    )

    def __init__(self) -> None:
        self.rx_packets = 0
        self.forwarded = 0
        self.dropped_no_match = 0
        self.dropped_no_actions = 0
        self.dropped_service_queue = 0
        self.dropped_failed = 0
        self.packet_ins = 0
        self.packet_outs = 0
        self.flow_mods = 0
        self.behavior_handled = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class OpenFlowSwitch(Node):
    """An OpenFlow 1.0 switch with a bounded processing pipeline."""

    _dpid_counter = 0

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace_bus: Optional[TraceBus] = None,
        proc_time: float = 0.0,
        proc_per_byte: float = 0.0,
        cpu: Optional["CpuResource"] = None,
        service_queue_capacity: int = 1000,
        packet_buffer_capacity: int = 256,
        datapath_id: Optional[int] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        super().__init__(sim, name, trace_bus)
        # The byte-moving backend for this switch's egress I/O; a chain
        # builder passes one shared transport so its tracer hooks see
        # every element's traffic.
        self.transport = transport or DesTransport(
            sim, trace_bus, name=f"{name}.transport"
        )
        self._egress_sessions: Dict[int, object] = {}
        if datapath_id is None:
            OpenFlowSwitch._dpid_counter += 1
            datapath_id = OpenFlowSwitch._dpid_counter
        self.datapath_id = datapath_id
        self.table = FlowTable()
        self.proc_time = proc_time
        self.proc_per_byte = proc_per_byte
        # The CPU the datapath runs on.  Passing a shared CpuResource
        # models Mininet-style co-location: every switch's per-packet work
        # serialises on one core.  None = this switch has its own core.
        self.cpu = cpu if cpu is not None else CpuResource(f"{name}.cpu")
        self.service_queue_capacity = service_queue_capacity
        self.stats = SwitchStats()
        self.behavior: Optional["AdversarialBehavior"] = None
        self._controller: Optional["Controller"] = None
        self._controller_latency = 0.0
        self._in_service = 0
        self._failed = False
        self._saved_flows: Optional[List[FlowEntry]] = None
        self._packet_buffer: Dict[int, Tuple[Packet, int]] = {}
        self._packet_buffer_capacity = packet_buffer_capacity
        self._buffer_seq = 0
        # One-entry flow-lookup memo for trains: (table, epoch, batch,
        # in_port_no, entry, d_lookups, d_index, d_scan, d_misses).
        self._bmemo: Optional[tuple] = None

    # ------------------------------------------------------------------
    # control channel
    # ------------------------------------------------------------------
    def connect_controller(self, controller: "Controller", latency: float = 0.0) -> None:
        self._controller = controller
        self._controller_latency = latency
        controller.register_switch(self)

    @property
    def controller(self) -> Optional["Controller"]:
        return self._controller

    def _send_to_controller(self, message: object) -> None:
        controller = self._controller
        if controller is None:
            return
        realm = self.sim.realm
        if realm is not None:
            realm.post(
                self.sim.now + self._controller_latency,
                controller.receive_from_switch,
                (self, message),
            )
            return
        self.sim.schedule(
            self._controller_latency, lambda: controller.receive_from_switch(self, message)
        )

    def handle_controller_message(self, message: object) -> None:
        """Entry point for messages arriving from the controller."""
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)
        elif isinstance(message, PortStatsRequest):
            self._send_to_controller(self._port_stats_reply())
        elif isinstance(message, FlowStatsRequest):
            self._send_to_controller(self._flow_stats_reply())
        else:
            self.trace("switch.unknown_message", message=type(message).__name__)

    def controller_latency(self) -> float:
        return self._controller_latency

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: Port) -> None:
        self.stats.rx_packets += 1
        if self._failed:
            self.stats.dropped_failed += 1
            self.trace("switch.drop", reason="failed", packet=packet)
            return
        if self._in_service >= self.service_queue_capacity:
            self.stats.dropped_service_queue += 1
            self.trace("switch.drop", reason="service_queue", packet=packet)
            return
        cost = self.proc_time + self.proc_per_byte * packet.wire_len
        if cost <= 0.0:
            self._process(packet, in_port.port_no)
            return
        finish = self.cpu.acquire(self.sim.now, cost)
        self._in_service += 1

        def _serve() -> None:
            self._in_service -= 1
            self._process(packet, in_port.port_no)

        realm = self.sim.realm
        if realm is not None:
            realm.post(finish, _serve, ())
        else:
            self.sim.schedule_at(finish, _serve)

    # ------------------------------------------------------------------
    # packet-train fast path (batch realm)
    # ------------------------------------------------------------------
    def receive_batch_packet(self, batch, i: int, in_port: Port) -> None:
        """:meth:`receive` for one train packet (clock already patched)."""
        stats = self.stats
        stats.rx_packets += 1
        if self._failed:
            stats.dropped_failed += 1
            self.trace("switch.drop", reason="failed", packet=batch.packet_at(i))
            return
        if self._in_service >= self.service_queue_capacity:
            stats.dropped_service_queue += 1
            self.trace("switch.drop", reason="service_queue", packet=batch.packet_at(i))
            return
        cost = self.proc_time + self.proc_per_byte * batch.wire_len
        now = self.sim._now
        if cost <= 0.0:
            self._serve_batch_packet(batch, i, in_port.port_no, now)
            return
        # cpu.acquire, inlined (hot): book `cost` seconds of FIFO service.
        cpu = self.cpu
        busy = cpu._busy_until
        finish = (now if now > busy else busy) + cost
        cpu._busy_until = finish
        cpu.busy_time += cost
        self._in_service += 1
        self.sim.realm.post(
            finish, self._serve_batch_micro, (batch, i, in_port.port_no)
        )

    def _serve_batch_micro(self, batch, i: int, in_port_no: int) -> None:
        """Micro-event: CPU service of one train packet completes."""
        self._in_service -= 1
        self._serve_batch_packet(batch, i, in_port_no, self.sim._now)

    def _serve_batch_packet(self, batch, i: int, in_port_no: int, now: float) -> None:
        """:meth:`_process` for one train packet, with a train-granular
        flow-table probe: the first packet of a train does the real
        lookup *and* resolves the egress port; its siblings replay the
        memoised entry, counter deltas and resolved egress (exact —
        match fields never cover the per-packet deltas, wiring is
        static, and the memo is invalidated by any table mutation or
        timeout)."""
        if self._failed:
            self.stats.dropped_failed += 1
            self.trace("switch.drop", reason="failed", packet=batch.packet_at(i))
            return
        table = self.table
        if self.behavior is not None or table.has_timeouts:
            # adversarial/behavior hook or timeout-bearing entries:
            # per-packet semantics, handled by the legacy pipeline
            self.sim.realm.note_fallback("fault-window")
            self._process(batch.packet_at(i), in_port_no)
            return
        memo = self._bmemo
        if (
            memo is not None
            and memo[0] is table
            and memo[1] == table.epoch
            and memo[2] is batch
            and memo[3] == in_port_no
        ):
            entry = memo[4]
            table.lookups += memo[5]
            table.index_hits += memo[6]
            table.scan_steps += memo[7]
            table.misses += memo[8]
            if entry is not None:
                entry.packet_count += 1
                entry.byte_count += batch.wire_len
                entry.last_matched = now
                fast = memo[9]
                if fast is not None:
                    # forwarded counts before the bad-port check, exactly
                    # as in the per-packet pipeline
                    self.stats.forwarded += 1
                    if fast is _BAD_EGRESS:
                        self.trace("switch.drop", reason="bad_port",
                                   port=memo[10], packet=batch.packet_at(i))
                    else:
                        fast.send_batch_packet(batch, i, now)
                    return
        else:
            l0, x0 = table.lookups, table.index_hits
            s0, m0 = table.scan_steps, table.misses
            entry = table.lookup(batch.template, in_port_no, now)
            fast = None
            out_no = -1
            if entry is not None:
                actions = entry.actions
                if len(actions) == 1 and type(actions[0]) is Output:
                    out_no = actions[0].port
                    if out_no == PORT_IN_PORT:
                        out_no = in_port_no
                    if out_no != PORT_FLOOD and out_no != PORT_CONTROLLER:
                        port = self.ports.get(out_no)
                        fast = (
                            port if port is not None and port.is_wired
                            else _BAD_EGRESS
                        )
            self._bmemo = (
                table,
                table.epoch,
                batch,
                in_port_no,
                entry,
                table.lookups - l0,
                table.index_hits - x0,
                table.scan_steps - s0,
                table.misses - m0,
                fast,
                out_no,
            )
            if fast is not None:
                self.stats.forwarded += 1
                if fast is _BAD_EGRESS:
                    self.trace("switch.drop", reason="bad_port", port=out_no,
                               packet=batch.packet_at(i))
                else:
                    fast.send_batch_packet(batch, i, now)
                return
        if entry is None:
            self.stats.dropped_no_match += 1
            self._table_miss(batch.packet_at(i), in_port_no)
            return
        actions = entry.actions
        if not actions:
            self.stats.dropped_no_actions += 1
            self.trace("switch.drop", reason="empty_actions", packet=batch.packet_at(i))
            return
        # flood / controller output or a mutating action list: materialise
        self.sim.realm.note_fallback("mixed-headers")
        self.apply_actions(batch.packet_at(i), actions, in_port_no)

    def _process(self, packet: Packet, in_port_no: int) -> None:
        if self._failed:
            # crashed while the packet was in the service queue
            self.stats.dropped_failed += 1
            self.trace("switch.drop", reason="failed", packet=packet)
            return
        for entry in self.table.sweep_expired(self.sim.now):
            self._notify_flow_removed(entry, reason=entry.expired(self.sim.now) or "idle")
        if self.behavior is not None:
            handled = self.behavior.handle(self, packet, in_port_no)
            if handled:
                self.stats.behavior_handled += 1
                return
        entry = self.table.lookup(packet, in_port_no, self.sim.now)
        if entry is None:
            self.stats.dropped_no_match += 1
            self._table_miss(packet, in_port_no)
            return
        if not entry.actions:
            self.stats.dropped_no_actions += 1
            self.trace("switch.drop", reason="empty_actions", packet=packet)
            return
        self.apply_actions(packet, entry.actions, in_port_no)

    def _table_miss(self, packet: Packet, in_port_no: int) -> None:
        if self._controller is None:
            self.trace("switch.drop", reason="no_match", packet=packet)
            return
        buffer_id = self._buffer_packet(packet, in_port_no)
        self.stats.packet_ins += 1
        self.trace("switch.packet_in", in_port=in_port_no, packet=packet)
        self._send_to_controller(
            PacketIn(
                datapath_id=self.datapath_id,
                packet=packet,
                in_port=in_port_no,
                reason=PACKETIN_NO_MATCH,
                buffer_id=buffer_id,
            )
        )

    def apply_actions(
        self, packet: Packet, actions: List[Action], in_port_no: int
    ) -> None:
        """Apply an OF 1.0 action list to (a working copy of) the packet."""
        working = packet.copy()
        emitted = False
        for action in actions:
            if isinstance(action, Output):
                self._output(working, action.port, in_port_no)
                emitted = True
            else:
                action.apply(working)
        if emitted:
            self.stats.forwarded += 1

    def _egress_session(self, port: Port):
        """The egress transport session for one local port (memoised)."""
        session = self._egress_sessions.get(port.port_no)
        if session is None:
            session = self.transport.session(
                SessionSpec(self.name, ROLE_EGRESS, port.port_no), port=port
            )
            self._egress_sessions[port.port_no] = session
        return session

    def _output(self, packet: Packet, out_port: int, in_port_no: int) -> None:
        if out_port == PORT_FLOOD:
            for port_no, port in sorted(self.ports.items()):
                if port_no != in_port_no and port.is_wired:
                    self._egress_session(port).send(packet.copy())
        elif out_port == PORT_CONTROLLER:
            self.stats.packet_ins += 1
            self._send_to_controller(
                PacketIn(
                    datapath_id=self.datapath_id,
                    packet=packet.copy(),
                    in_port=in_port_no,
                    reason=PACKETIN_ACTION,
                    buffer_id=self._buffer_packet(packet, in_port_no),
                )
            )
        elif out_port == PORT_IN_PORT:
            port = self.ports.get(in_port_no)
            if port is not None and port.is_wired:
                self._egress_session(port).send(packet.copy())
        else:
            port = self.ports.get(out_port)
            if port is None or not port.is_wired:
                self.trace("switch.drop", reason="bad_port", port=out_port, packet=packet)
                return
            self._egress_session(port).send(packet.copy())

    # ------------------------------------------------------------------
    # controller message handling
    # ------------------------------------------------------------------
    def _apply_flow_mod(self, mod: FlowMod) -> None:
        self.stats.flow_mods += 1
        if mod.command == FLOWMOD_ADD:
            self.table.add(
                FlowEntry(
                    match=mod.match,
                    actions=mod.actions,
                    priority=mod.priority,
                    cookie=mod.cookie,
                    idle_timeout=mod.idle_timeout,
                    hard_timeout=mod.hard_timeout,
                    created_at=self.sim.now,
                )
            )
        elif mod.command == FLOWMOD_DELETE:
            for entry in self.table.remove(match=mod.match, strict=False):
                self._notify_flow_removed(entry, reason="delete")
        elif mod.command == FLOWMOD_DELETE_STRICT:
            for entry in self.table.remove(
                match=mod.match, priority=mod.priority, strict=True
            ):
                self._notify_flow_removed(entry, reason="delete")
        else:
            self.trace("switch.bad_flow_mod", command=mod.command)

    def _apply_packet_out(self, message: PacketOut) -> None:
        self.stats.packet_outs += 1
        packet = message.packet
        if packet is None and message.buffer_id is not None:
            buffered = self._packet_buffer.pop(message.buffer_id, None)
            if buffered is None:
                self.trace("switch.bad_buffer", buffer_id=message.buffer_id)
                return
            packet = buffered[0]
        if packet is None:
            self.trace("switch.bad_packet_out")
            return
        self.apply_actions(packet, list(message.actions), message.in_port)

    def _notify_flow_removed(self, entry: FlowEntry, reason: str) -> None:
        self._send_to_controller(
            FlowRemoved(
                datapath_id=self.datapath_id,
                match=entry.match,
                priority=entry.priority,
                reason=reason,
                packet_count=entry.packet_count,
                byte_count=entry.byte_count,
                cookie=entry.cookie,
            )
        )

    # ------------------------------------------------------------------
    # local management API (used by trusted components & tests)
    # ------------------------------------------------------------------
    def install(
        self,
        match: Match,
        actions: List[Action],
        priority: int = 0,
        idle_timeout: float = 0.0,
        hard_timeout: float = 0.0,
        cookie: int = 0,
    ) -> FlowEntry:
        """Install a flow entry directly (no control channel round trip)."""
        entry = FlowEntry(
            match=match,
            actions=actions,
            priority=priority,
            cookie=cookie,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            created_at=self.sim.now,
        )
        self.table.add(entry)
        return entry

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self, wipe_flows: bool = True) -> None:
        """Crash the datapath: every packet is dropped until ``recover``.

        ``wipe_flows=True`` models the paper's soft-state loss — a rebooted
        router comes back with an empty flow table; the pre-crash table is
        snapshotted so ``recover(restore_flows=True)`` can model an
        operator re-provisioning the routes.
        """
        if self._failed:
            return
        self._failed = True
        if wipe_flows:
            self._saved_flows = self.table.entries
            self.table = FlowTable()
        self._packet_buffer.clear()
        self.trace("switch.failed", wiped_flows=wipe_flows)

    def recover(self, restore_flows: bool = True) -> None:
        """Bring a crashed datapath back up.

        ``restore_flows=True`` re-installs the pre-crash entries with
        fresh timestamps (an operator or controller re-provisioning the
        routes); ``False`` leaves the table as the crash left it.
        """
        if not self._failed:
            return
        self._failed = False
        restored = 0
        if restore_flows and self._saved_flows is not None:
            now = self.sim.now
            for entry in self._saved_flows:
                entry.created_at = now
                entry.last_matched = now
                self.table.add(entry)
            restored = len(self._saved_flows)
        self._saved_flows = None
        self.trace("switch.recovered", restored_flows=restored)

    def block_port(self, port_no: int, duration: float) -> None:
        """Administratively block a port (compare DoS mitigation)."""
        port = self.ports.get(port_no)
        if port is not None:
            port.block_for(duration)
            self.trace("switch.port_blocked", port=port_no, duration=duration)

    # ------------------------------------------------------------------
    # stats & buffering
    # ------------------------------------------------------------------
    def _buffer_packet(self, packet: Packet, in_port_no: int) -> int:
        if len(self._packet_buffer) >= self._packet_buffer_capacity:
            oldest = min(self._packet_buffer)
            del self._packet_buffer[oldest]
        self._buffer_seq += 1
        self._packet_buffer[self._buffer_seq] = (packet, in_port_no)
        return self._buffer_seq

    def _port_stats_reply(self) -> PortStatsReply:
        stats = [
            PortStats(
                port_no=port_no,
                rx_packets=port.rx_packets,
                tx_packets=port.tx_packets,
                rx_bytes=port.rx_bytes,
                tx_bytes=port.tx_bytes,
            )
            for port_no, port in sorted(self.ports.items())
        ]
        return PortStatsReply(datapath_id=self.datapath_id, stats=stats)

    def _flow_stats_reply(self) -> FlowStatsReply:
        stats = [
            FlowStatsEntry(
                match=e.match,
                priority=e.priority,
                packet_count=e.packet_count,
                byte_count=e.byte_count,
                cookie=e.cookie,
            )
            for e in self.table
        ]
        return FlowStatsReply(datapath_id=self.datapath_id, stats=stats)
