"""OpenFlow 1.0 match structure (the 12-tuple, with wildcards).

A field set to ``None`` is wildcarded.  This covers the full OF 1.0 match
set; the paper's prototype only matches ``dl_dst``, but the learning
switch, the case-study pipelines and the virtualized NetCo use more.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import Icmp, Packet, Tcp, Udp


class Match:
    """An OF 1.0 flow match; ``None`` fields are wildcards."""

    __slots__ = (
        "in_port",
        "dl_src",
        "dl_dst",
        "dl_vlan",
        "dl_vlan_pcp",
        "dl_type",
        "nw_tos",
        "nw_proto",
        "nw_src",
        "nw_dst",
        "tp_src",
        "tp_dst",
    )

    def __init__(
        self,
        in_port: Optional[int] = None,
        dl_src: Optional[MacAddress] = None,
        dl_dst: Optional[MacAddress] = None,
        dl_vlan: Optional[int] = None,
        dl_vlan_pcp: Optional[int] = None,
        dl_type: Optional[int] = None,
        nw_tos: Optional[int] = None,
        nw_proto: Optional[int] = None,
        nw_src: Optional[IpAddress] = None,
        nw_dst: Optional[IpAddress] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
    ) -> None:
        self.in_port = in_port
        self.dl_src = MacAddress(dl_src) if dl_src is not None else None
        self.dl_dst = MacAddress(dl_dst) if dl_dst is not None else None
        self.dl_vlan = dl_vlan
        self.dl_vlan_pcp = dl_vlan_pcp
        self.dl_type = dl_type
        self.nw_tos = nw_tos
        self.nw_proto = nw_proto
        self.nw_src = IpAddress(nw_src) if nw_src is not None else None
        self.nw_dst = IpAddress(nw_dst) if nw_dst is not None else None
        self.tp_src = tp_src
        self.tp_dst = tp_dst

    @classmethod
    def wildcard(cls) -> "Match":
        """Match everything (a table-miss style entry)."""
        return cls()

    @classmethod
    def from_packet(cls, packet: Packet, in_port: Optional[int] = None) -> "Match":
        """Exact match extracted from a packet (OF 1.0 reactive style)."""
        match = cls(
            in_port=in_port,
            dl_src=packet.eth.src,
            dl_dst=packet.eth.dst,
            dl_type=packet.eth.ethertype,
        )
        if packet.vlan is not None:
            match.dl_vlan = packet.vlan.vid
            match.dl_vlan_pcp = packet.vlan.pcp
        if packet.ip is not None:
            match.nw_src = packet.ip.src
            match.nw_dst = packet.ip.dst
            match.nw_proto = packet.ip.proto
            match.nw_tos = packet.ip.tos
            if isinstance(packet.l4, (Udp, Tcp)):
                match.tp_src = packet.l4.sport
                match.tp_dst = packet.l4.dport
            elif isinstance(packet.l4, Icmp):
                match.tp_src = packet.l4.icmp_type
                match.tp_dst = packet.l4.code
        return match

    # ------------------------------------------------------------------
    def matches(self, packet: Packet, in_port: int) -> bool:
        """Does ``packet`` arriving on ``in_port`` satisfy this match?"""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and packet.eth.src != self.dl_src:
            return False
        if self.dl_dst is not None and packet.eth.dst != self.dl_dst:
            return False
        if self.dl_type is not None and packet.eth.ethertype != self.dl_type:
            return False
        if self.dl_vlan is not None:
            if packet.vlan is None or packet.vlan.vid != self.dl_vlan:
                return False
        if self.dl_vlan_pcp is not None:
            if packet.vlan is None or packet.vlan.pcp != self.dl_vlan_pcp:
                return False
        ip_fields_used = (
            self.nw_src is not None
            or self.nw_dst is not None
            or self.nw_proto is not None
            or self.nw_tos is not None
        )
        if ip_fields_used and packet.ip is None:
            return False
        if packet.ip is not None:
            if self.nw_src is not None and packet.ip.src != self.nw_src:
                return False
            if self.nw_dst is not None and packet.ip.dst != self.nw_dst:
                return False
            if self.nw_proto is not None and packet.ip.proto != self.nw_proto:
                return False
            if self.nw_tos is not None and packet.ip.tos != self.nw_tos:
                return False
        if self.tp_src is not None or self.tp_dst is not None:
            if isinstance(packet.l4, (Udp, Tcp)):
                if self.tp_src is not None and packet.l4.sport != self.tp_src:
                    return False
                if self.tp_dst is not None and packet.l4.dport != self.tp_dst:
                    return False
            elif isinstance(packet.l4, Icmp):
                if self.tp_src is not None and packet.l4.icmp_type != self.tp_src:
                    return False
                if self.tp_dst is not None and packet.l4.code != self.tp_dst:
                    return False
            else:
                return False
        return True

    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (
            self.in_port,
            self.dl_src,
            self.dl_dst,
            self.dl_vlan,
            self.dl_vlan_pcp,
            self.dl_type,
            self.nw_tos,
            self.nw_proto,
            self.nw_src,
            self.nw_dst,
            self.tp_src,
            self.tp_dst,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        fields = []
        for name in self.__slots__:
            value = getattr(self, name)
            if value is not None:
                fields.append(f"{name}={value}")
        return f"Match({', '.join(fields) or '*'})"
