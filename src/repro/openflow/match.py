"""OpenFlow 1.0 match structure (the 12-tuple, with wildcards).

A field set to ``None`` is wildcarded.  This covers the full OF 1.0 match
set; the paper's prototype only matches ``dl_dst``, but the learning
switch, the case-study pipelines and the virtualized NetCo use more.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import (
    ETH_TYPE_IPV4,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Icmp,
    Packet,
    Tcp,
    Udp,
)

# Protocols whose tp_src/tp_dst fields carry meaning in OF 1.0.
_TP_PROTOS = (IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP)


class Match:
    """An OF 1.0 flow match; ``None`` fields are wildcards."""

    __slots__ = (
        "in_port",
        "dl_src",
        "dl_dst",
        "dl_vlan",
        "dl_vlan_pcp",
        "dl_type",
        "nw_tos",
        "nw_proto",
        "nw_src",
        "nw_dst",
        "tp_src",
        "tp_dst",
    )

    def __init__(
        self,
        in_port: Optional[int] = None,
        dl_src: Optional[MacAddress] = None,
        dl_dst: Optional[MacAddress] = None,
        dl_vlan: Optional[int] = None,
        dl_vlan_pcp: Optional[int] = None,
        dl_type: Optional[int] = None,
        nw_tos: Optional[int] = None,
        nw_proto: Optional[int] = None,
        nw_src: Optional[IpAddress] = None,
        nw_dst: Optional[IpAddress] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
    ) -> None:
        self.in_port = in_port
        self.dl_src = MacAddress(dl_src) if dl_src is not None else None
        self.dl_dst = MacAddress(dl_dst) if dl_dst is not None else None
        self.dl_vlan = dl_vlan
        self.dl_vlan_pcp = dl_vlan_pcp
        self.dl_type = dl_type
        self.nw_tos = nw_tos
        self.nw_proto = nw_proto
        self.nw_src = IpAddress(nw_src) if nw_src is not None else None
        self.nw_dst = IpAddress(nw_dst) if nw_dst is not None else None
        self.tp_src = tp_src
        self.tp_dst = tp_dst

    @classmethod
    def wildcard(cls) -> "Match":
        """Match everything (a table-miss style entry)."""
        return cls()

    @classmethod
    def from_packet(cls, packet: Packet, in_port: Optional[int] = None) -> "Match":
        """Exact match extracted from a packet (OF 1.0 reactive style)."""
        eth, vlan, ip, l4, _payload = packet.fields()
        match = cls(
            in_port=in_port,
            dl_src=eth.src,
            dl_dst=eth.dst,
            dl_type=eth.ethertype,
        )
        if vlan is not None:
            match.dl_vlan = vlan.vid
            match.dl_vlan_pcp = vlan.pcp
        if ip is not None:
            match.nw_src = ip.src
            match.nw_dst = ip.dst
            match.nw_proto = ip.proto
            match.nw_tos = ip.tos
            if isinstance(l4, (Udp, Tcp)):
                match.tp_src = l4.sport
                match.tp_dst = l4.dport
            elif isinstance(l4, Icmp):
                match.tp_src = l4.icmp_type
                match.tp_dst = l4.code
        return match

    # ------------------------------------------------------------------
    def matches(self, packet: Packet, in_port: int) -> bool:
        """Does ``packet`` arriving on ``in_port`` satisfy this match?"""
        eth, vlan, ip, l4, _payload = packet.fields()
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and eth.src != self.dl_src:
            return False
        if self.dl_dst is not None and eth.dst != self.dl_dst:
            return False
        if self.dl_type is not None and eth.ethertype != self.dl_type:
            return False
        if self.dl_vlan is not None:
            if vlan is None or vlan.vid != self.dl_vlan:
                return False
        if self.dl_vlan_pcp is not None:
            if vlan is None or vlan.pcp != self.dl_vlan_pcp:
                return False
        ip_fields_used = (
            self.nw_src is not None
            or self.nw_dst is not None
            or self.nw_proto is not None
            or self.nw_tos is not None
        )
        if ip_fields_used and ip is None:
            return False
        if ip is not None:
            if self.nw_src is not None and ip.src != self.nw_src:
                return False
            if self.nw_dst is not None and ip.dst != self.nw_dst:
                return False
            if self.nw_proto is not None and ip.proto != self.nw_proto:
                return False
            if self.nw_tos is not None and ip.tos != self.nw_tos:
                return False
        if self.tp_src is not None or self.tp_dst is not None:
            if isinstance(l4, (Udp, Tcp)):
                if self.tp_src is not None and l4.sport != self.tp_src:
                    return False
                if self.tp_dst is not None and l4.dport != self.tp_dst:
                    return False
            elif isinstance(l4, Icmp):
                if self.tp_src is not None and l4.icmp_type != self.tp_src:
                    return False
                if self.tp_dst is not None and l4.code != self.tp_dst:
                    return False
            else:
                return False
        return True

    # ------------------------------------------------------------------
    def is_exact(self) -> bool:
        """Is this the fully-specified shape :meth:`from_packet` produces?

        Exact matches can be served from a hash index: their 12-tuple key
        equals one of the (at most two) probe keys
        :func:`packet_probe_keys` derives from a packet.  Anything else —
        stray wildcards, half-specified VLAN/transport fields, IP fields
        under a non-IPv4 ethertype — takes the ordered linear scan.
        """
        if (
            self.in_port is None
            or self.dl_src is None
            or self.dl_dst is None
            or self.dl_type is None
        ):
            return False
        if (self.dl_vlan is None) != (self.dl_vlan_pcp is None):
            return False
        nw = (self.nw_tos, self.nw_proto, self.nw_src, self.nw_dst)
        tp_set = self.tp_src is not None and self.tp_dst is not None
        tp_none = self.tp_src is None and self.tp_dst is None
        if self.dl_type == ETH_TYPE_IPV4:
            if any(f is None for f in nw):
                return False
            return tp_set if self.nw_proto in _TP_PROTOS else tp_none
        return all(f is None for f in nw) and tp_none

    def _key(self) -> tuple:
        return (
            self.in_port,
            self.dl_src,
            self.dl_dst,
            self.dl_vlan,
            self.dl_vlan_pcp,
            self.dl_type,
            self.nw_tos,
            self.nw_proto,
            self.nw_src,
            self.nw_dst,
            self.tp_src,
            self.tp_dst,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        fields = []
        for name in self.__slots__:
            value = getattr(self, name)
            if value is not None:
                fields.append(f"{name}={value}")
        return f"Match({', '.join(fields) or '*'})"


def packet_probe_keys(packet: Packet, in_port: int) -> List[Tuple]:
    """The 12-tuple keys of every *exact* match this packet can satisfy.

    An exact entry (see :meth:`Match.is_exact`) matches the packet iff its
    ``_key()`` equals one of the returned tuples, so a flow-table hash
    index probed with these keys returns exactly the entries the linear
    scan would.  Two subtleties keep that equivalence honest:

    * an untagged-shape entry (``dl_vlan``/``dl_vlan_pcp`` both None)
      legally matches a *tagged* packet, so tagged packets get a second,
      VLAN-stripped probe;
    * ``tp_src/tp_dst`` only appear in exact entries when the IP protocol
      is ICMP/TCP/UDP, so for other protocols the probe strips the
      transport fields a crafted packet may still carry.  Likewise a
      packet carrying IP headers under a non-IPv4 ethertype probes with
      the network fields stripped, matching the all-None shape exactness
      forces on such entries.
    """
    eth, vlan, ip, l4, _payload = packet.fields()
    if isinstance(l4, (Udp, Tcp)):
        tp_src: Optional[int] = l4.sport
        tp_dst: Optional[int] = l4.dport
    elif isinstance(l4, Icmp):
        tp_src, tp_dst = l4.icmp_type, l4.code
    else:
        tp_src = tp_dst = None

    ethertype = eth.ethertype
    if ip is not None and ethertype == ETH_TYPE_IPV4:
        if l4 is not None and ip.proto not in _TP_PROTOS:
            tp_src = tp_dst = None
        nw = (ip.tos, ip.proto, ip.src, ip.dst, tp_src, tp_dst)
    else:
        nw = (None, None, None, None, None, None)

    keys = [(in_port, eth.src, eth.dst,
             None if vlan is None else vlan.vid,
             None if vlan is None else vlan.pcp,
             ethertype) + nw]
    if vlan is not None:
        keys.append((in_port, eth.src, eth.dst, None, None, ethertype) + nw)
    return keys
