"""SDN controller base class and control channel model.

A :class:`Controller` manages any number of switches.  The control channel
cost has two parts, both of which matter for reproducing the paper's POX3
result:

* the per-direction channel latency (configured per switch on
  ``connect_controller``) — piping every packet through the controller
  pays this twice; and
* the controller's own per-message processing cost (``proc_time``) in a
  single-server queue — interpreted-Python controllers like POX have a
  much higher per-packet cost than the paper's compiled C compare.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.obs.metrics import active_registry
from repro.openflow.messages import (
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    PacketIn,
    PacketOut,
    PortStatsReply,
)
from repro.sim import Simulator, TraceBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.openflow.switch import OpenFlowSwitch


class Controller:
    """Base controller: override the ``on_*`` handlers in applications."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "controller",
        trace_bus: Optional[TraceBus] = None,
        proc_time: float = 0.0,
        queue_capacity: int = 100_000,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace_bus = trace_bus
        self.proc_time = proc_time
        self.queue_capacity = queue_capacity
        self.switches: Dict[int, "OpenFlowSwitch"] = {}
        self._busy_until = 0.0
        self._in_service = 0
        self.messages_received = 0
        self.messages_dropped = 0
        #: when set, outbound messages are handed to this callable
        #: instead of the control channel — the replicated control plane
        #: uses it to route replica output through the trusted voter
        self.outbox: Optional[
            Callable[["Controller", "OpenFlowSwitch", object], None]
        ] = None
        registry = active_registry()
        if registry.enabled:
            self._c_queue_drops = registry.counter(
                "controller_queue_drops_total",
                "switch-to-controller messages dropped on queue overflow",
                labelnames=("controller",),
            ).labels(name)
            self._c_unknown = registry.counter(
                "controller_unknown_messages_total",
                "control messages the dispatcher silently ignored",
                labelnames=("controller",),
            ).labels(name)
        else:
            self._c_queue_drops = None
            self._c_unknown = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def register_switch(self, switch: "OpenFlowSwitch") -> None:
        self.switches[switch.datapath_id] = switch
        self.on_switch_connected(switch)

    def switch(self, datapath_id: int) -> "OpenFlowSwitch":
        return self.switches[datapath_id]

    # ------------------------------------------------------------------
    # receive path (switch -> controller), with service-time modelling
    # ------------------------------------------------------------------
    def receive_from_switch(self, switch: "OpenFlowSwitch", message: object) -> None:
        self.messages_received += 1
        if self._in_service >= self.queue_capacity:
            self.messages_dropped += 1
            if self._c_queue_drops is not None:
                self._c_queue_drops.inc()
            self.trace("controller.drop", reason="queue")
            return
        if self.proc_time <= 0.0:
            self._dispatch(switch, message)
            return
        start = max(self.sim.now, self._busy_until)
        finish = start + self.proc_time
        self._busy_until = finish
        self._in_service += 1

        def _serve() -> None:
            self._in_service -= 1
            self._dispatch(switch, message)

        realm = self.sim.realm
        if realm is not None:
            # Control-channel service must interleave with in-flight train
            # packets in global time order (POX3 exactness).
            realm.post(finish, _serve, ())
        else:
            self.sim.schedule_at(finish, _serve)

    def _dispatch(self, switch: "OpenFlowSwitch", message: object) -> None:
        if isinstance(message, PacketIn):
            self.on_packet_in(switch, message)
        elif isinstance(message, FlowRemoved):
            self.on_flow_removed(switch, message)
        elif isinstance(message, PortStatsReply):
            self.on_port_stats(switch, message)
        elif isinstance(message, FlowStatsReply):
            self.on_flow_stats(switch, message)
        else:
            if self._c_unknown is not None:
                self._c_unknown.inc()
            self.trace("controller.unknown_message", message=type(message).__name__)

    # ------------------------------------------------------------------
    # send path (controller -> switch)
    # ------------------------------------------------------------------
    def send(self, switch: "OpenFlowSwitch", message: object) -> None:
        """Send a FlowMod/PacketOut/etc. over the control channel."""
        if self.outbox is not None:
            self.outbox(self, switch, message)
            return
        latency = switch.controller_latency()
        realm = self.sim.realm
        if realm is not None:
            realm.post(
                self.sim.now + latency, switch.handle_controller_message, (message,)
            )
        else:
            self.sim.schedule(latency, lambda: switch.handle_controller_message(message))

    def send_flow_mod(self, switch: "OpenFlowSwitch", mod: FlowMod) -> None:
        self.send(switch, mod)

    def send_packet_out(self, switch: "OpenFlowSwitch", out: PacketOut) -> None:
        self.send(switch, out)

    # ------------------------------------------------------------------
    # application hooks
    # ------------------------------------------------------------------
    def on_switch_connected(self, switch: "OpenFlowSwitch") -> None:
        """Called when a switch attaches; install proactive rules here."""

    def on_packet_in(self, switch: "OpenFlowSwitch", event: PacketIn) -> None:
        """Called on every packet-in.  Default: drop silently."""

    def on_flow_removed(self, switch: "OpenFlowSwitch", event: FlowRemoved) -> None:
        """Called when a flow entry expires or is deleted."""

    def on_port_stats(self, switch: "OpenFlowSwitch", reply: PortStatsReply) -> None:
        """Called on port-stats replies."""

    def on_flow_stats(self, switch: "OpenFlowSwitch", reply: FlowStatsReply) -> None:
        """Called on flow-stats replies."""

    def trace(self, topic: str, **data: object) -> None:
        if self.trace_bus is not None:
            self.trace_bus.emit(self.sim.now, topic, self.name, **data)
