"""OpenFlow control-channel messages (the subset the reproduction needs).

These are plain value objects exchanged between :class:`~repro.openflow.
switch.OpenFlowSwitch` and :class:`~repro.openflow.controller.Controller`
over a latency-modelled channel — the simulator analogue of the TCP
connection between an OpenFlow switch and its controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.net.packet import Packet
from repro.openflow.actions import Action
from repro.openflow.match import Match

# FlowMod commands
FLOWMOD_ADD = "add"
FLOWMOD_DELETE = "delete"
FLOWMOD_DELETE_STRICT = "delete_strict"

# PacketIn reasons
PACKETIN_NO_MATCH = "no_match"
PACKETIN_ACTION = "action"


@dataclass(frozen=True)
class PacketIn:
    """Switch -> controller: a packet needing a decision."""

    datapath_id: int
    packet: Packet
    in_port: int
    reason: str = PACKETIN_NO_MATCH
    buffer_id: Optional[int] = None


@dataclass(frozen=True)
class PacketOut:
    """Controller -> switch: emit a packet with the given action list."""

    packet: Optional[Packet]
    actions: Sequence[Action]
    in_port: int = 0
    buffer_id: Optional[int] = None


@dataclass(frozen=True)
class FlowMod:
    """Controller -> switch: install or remove flow state."""

    command: str
    match: Match
    actions: Sequence[Action] = ()
    priority: int = 0
    idle_timeout: float = 0.0
    hard_timeout: float = 0.0
    cookie: int = 0


@dataclass(frozen=True)
class FlowRemoved:
    """Switch -> controller: a flow entry expired or was deleted."""

    datapath_id: int
    match: Match
    priority: int
    reason: str
    packet_count: int
    byte_count: int
    cookie: int = 0


@dataclass(frozen=True)
class PortStatsRequest:
    datapath_id: int


@dataclass(frozen=True)
class PortStats:
    port_no: int
    rx_packets: int
    tx_packets: int
    rx_bytes: int
    tx_bytes: int


@dataclass(frozen=True)
class PortStatsReply:
    datapath_id: int
    stats: List[PortStats] = field(default_factory=list)


@dataclass(frozen=True)
class FlowStatsRequest:
    datapath_id: int


@dataclass(frozen=True)
class FlowStatsEntry:
    match: Match
    priority: int
    packet_count: int
    byte_count: int
    cookie: int


@dataclass(frozen=True)
class FlowStatsReply:
    datapath_id: int
    stats: List[FlowStatsEntry] = field(default_factory=list)
