"""Sampling-based detection — the Section IX extension.

"An efficient alternative could be to reduce load on the compare using
*sampling*: a simple logic in the data plane forwards a random subset of
packets to a more thorough out-of-band compare logic."

:class:`SamplingEndpoint` implements that: a *primary* branch's copies
are forwarded immediately (no per-packet compare on the critical path),
and a deterministic sample of packets — selected by hashing the vote key,
so every endpoint samples the *same* packets without coordination — is
submitted to an out-of-band compare.  A sampled packet whose copies
diverge (or never achieve quorum) raises a divergence alarm.

This trades prevention for throughput: misbehaviour on the primary
branch reaches the destination, but is *detected* within ``O(1/rate)``
packets, at ``rate`` times the compare load of the full combiner.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.core.alarms import ALARM_MINORITY_DIVERGENCE, AlarmSink
from repro.core.compare import CompareCore
from repro.core.endpoint import MODE_COMBINE, CombinerEndpoint
from repro.net.packet import Packet
from repro.sim import Simulator, TraceBus


def deterministic_sample(key: bytes, rate: float) -> bool:
    """Stateless, coordination-free sampling decision.

    All trusted elements make the same decision for the same packet by
    hashing its vote key; a malicious router cannot predict-and-evade
    without knowing the packet bytes it is about to tamper with — and
    tampering changes the key it would need to evade.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(key) & 0xFFFFFFFF
    return bucket < rate * (1 << 32)


class SamplingEndpoint(CombinerEndpoint):
    """A combiner endpoint in sampling-detection mode.

    * copies from the ``primary`` branch are forwarded immediately;
    * packets selected by :func:`deterministic_sample` are (also)
      submitted to the compare from *every* branch;
    * non-sampled copies from non-primary branches are discarded.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        sample_rate: float = 0.1,
        primary_branch: int = 0,
        trace_bus: Optional[TraceBus] = None,
        proc_time: float = 0.0,
        proc_per_byte: float = 0.0,
        cpu=None,
        alarm_sink: Optional[AlarmSink] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate out of range: {sample_rate}")
        super().__init__(
            sim,
            name,
            trace_bus=trace_bus,
            proc_time=proc_time,
            proc_per_byte=proc_per_byte,
            cpu=cpu,
            mode=MODE_COMBINE,
            alarm_sink=alarm_sink,
        )
        self.sample_rate = sample_rate
        self.primary_branch = primary_branch
        self.sampled = 0
        self.fast_forwarded = 0

    def _from_branch(
        self, packet: Packet, branch: int, claim: Optional[int] = None
    ) -> None:
        self.estats.collected += 1
        if branch == self.primary_branch:
            # critical path: forward without waiting for any vote
            self.fast_forwarded += 1
            if claim is not None:
                port = self.ports.get(claim)
                if port is not None and port.is_wired:
                    port.send(packet.copy())
                    self.stats.forwarded += 1
                else:
                    self._forward_external(packet)
            else:
                self._forward_external(packet)
        core = self._sampling_core()
        if core is None:
            return
        key = core.config.policy.key(packet)
        if deterministic_sample(key, self.sample_rate):
            if branch == self.primary_branch:
                self.sampled += 1
            self._submit_to_compare(packet, branch, claim)

    def handle_release(self, packet: Packet) -> None:
        """The sampling compare is out-of-band: a successful vote just
        confirms agreement; the primary already forwarded the packet."""
        self.estats.released_out += 1

    def _sampling_core(self) -> Optional[CompareCore]:
        if self._compare_core is not None:
            return self._compare_core
        if self._compare_port_no is not None:
            # in-band compare host: sampling decision uses the default
            # policy key (bit-exact); the host's core applies its own
            return self._default_core
        return None

    # A core reference used purely for the sampling policy when the
    # compare is attached in-band; set by the builder.
    _default_core: Optional[CompareCore] = None

    def set_sampling_policy_core(self, core: CompareCore) -> None:
        self._default_core = core


class DivergenceWatcher:
    """Turns a sampling compare's expiries into divergence alarms.

    A sampled packet that fails its vote means some branch disagreed
    with the others — with a forwarding primary, that is the detection
    signal (the paper's k=2 'detect' column, at sampled cost).  Requires
    the core to have a trace bus.
    """

    def __init__(self, core: CompareCore) -> None:
        self.core = core
        self.divergences = 0
        if core.trace_bus is not None:
            core.trace_bus.subscribe("compare.drop_unreleased", self._on_drop)

    def _on_drop(self, record) -> None:
        if record.source != self.core.name:
            return
        self.divergences += 1
        self.core.alarms.raise_alarm(
            record.time,
            ALARM_MINORITY_DIVERGENCE,
            self.core.name,
            votes=record.data.get("votes"),
        )


def build_sampling_chain(
    network,
    name: str,
    k: int = 2,
    sample_rate: float = 0.1,
    compare_config=None,
    link_rate_bps: float = 1e9,
    link_delay: float = 2e-6,
    router_proc_time: float = 5e-6,
    endpoint_proc_time: float = 1e-6,
):
    """A Figure 3-shaped chain in sampling-detection mode.

    Returns an object compatible with :class:`~repro.core.combiner.
    CombinerChain` (endpoints, routers, compare core, alarms) plus a
    :class:`DivergenceWatcher`.
    """
    from dataclasses import replace as dc_replace

    from repro.core.combiner import CombinerChain, CompareHost
    from repro.core.compare import CompareConfig

    sim, trace = network.sim, network.trace
    alarms = AlarmSink(trace)
    endpoint_a = SamplingEndpoint(
        sim, f"{name}_sA", sample_rate=sample_rate, trace_bus=trace,
        proc_time=endpoint_proc_time, alarm_sink=alarms,
    )
    endpoint_b = SamplingEndpoint(
        sim, f"{name}_sB", sample_rate=sample_rate, trace_bus=trace,
        proc_time=endpoint_proc_time, alarm_sink=alarms,
    )
    network.add_node(endpoint_a)
    network.add_node(endpoint_b)
    endpoint_b.address_registry = endpoint_a.address_registry

    from repro.openflow.switch import OpenFlowSwitch

    routers = []
    for i in range(k):
        router = OpenFlowSwitch(
            sim, f"{name}_r{i}", trace_bus=trace, proc_time=router_proc_time
        )
        network.add_node(router)
        routers.append(router)
        link_a = network.connect(
            endpoint_a, router, rate_bps=link_rate_bps, delay=link_delay
        )
        network.connect(router, endpoint_b, rate_bps=link_rate_bps, delay=link_delay)
        endpoint_a.assign_branch(link_a.a.port_no, i)
        endpoint_b.assign_branch(
            network.port_no_between(endpoint_b.name, router.name), i
        )

    config = compare_config or CompareConfig(k=k, buffer_timeout=2e-3)
    # In detection mode, a diverging branch makes *every* sampled packet
    # expire as two single-source entries — that is the signal, not a
    # crafted-packet flood, so the auto-block mitigation must stay off
    # (it would end up blocking the honest primary).
    config = dc_replace(config, k=k, craft_threshold=1 << 30)
    core = CompareCore(
        sim, config, name=f"{name}_compare", alarm_sink=alarms, trace_bus=trace
    )
    compare_host = CompareHost(sim, f"{name}_h3", core, trace_bus=trace)
    network.add_node(compare_host)
    for endpoint in (endpoint_a, endpoint_b):
        network.connect(
            endpoint, compare_host, rate_bps=link_rate_bps, delay=link_delay
        )
        endpoint.assign_compare_port(
            network.port_no_between(endpoint.name, compare_host.name)
        )
        endpoint.set_sampling_policy_core(core)
        compare_host.register_endpoint(
            network.port_no_between(compare_host.name, endpoint.name), endpoint
        )

    watcher = DivergenceWatcher(core)
    chain = CombinerChain(
        network=network,
        name=name,
        endpoint_a=endpoint_a,
        endpoint_b=endpoint_b,
        routers=routers,
        compare_host=compare_host,
        compare_core=core,
        alarms=alarms,
    )
    chain.watcher = watcher
    return chain
