"""The NetCo *compare* element.

This is the heart of NetCo (Section IV of the paper): a trusted process
that receives every copy a redundant router bundle produced, compares the
copies (bit-by-bit / header / hash, per the configured policy), and
releases exactly one copy once a majority of branches delivered it.

Faithful behaviours from the paper:

* majority release — "once a packet has been received on the majority of
  the possible ingress ports, the compare releases it immediately";
* stragglers ignored — "if additional packets arrive later, they are
  ignored" (entries persist as tombstones until their deadline);
* bounded buffering — "the time a packet should be kept in the buffer is
  a function of the latencies of all the connected devices and links";
  unique packets are eventually deleted, never forwarded;
* DoS mitigation — repeated copies on one ingress port make the compare
  "advise the corresponding switch to block the appropriate port";
* liveness alarm — a branch missing from many consecutive packets raises
  a router-unavailable alarm to the administrator;
* cache cleanup — the packet cache is bounded; when it fills, a cleanup
  procedure runs and stalls the compare, which is the jitter mechanism
  the paper observes in Figure 8.

The compare is transport-agnostic: :class:`CompareCore` contains the
logic; adapters attach it to the data plane (an in-band host, as in the
paper's C prototype) or to the control plane (a POX-style controller app,
``repro.apps.combiner_app``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.core.alarms import (
    ALARM_DOS_SUSPECTED,
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
    ALARM_SINGLE_SOURCE_PACKET,
    AlarmSink,
)
from repro.core.membership import QuorumMembershipMixin
from repro.core.policy import BitExactPolicy, ComparePolicy
from repro.core.votes import VoteBook, VoteEntry
from repro.net.packet import Packet
from repro.obs.metrics import active_registry
from repro.sim import PeriodicTask, Simulator, TraceBus


@dataclass
class CompareConfig:
    """Tunable parameters of a compare element.

    Defaults are calibrated for the microsecond-scale testbed used in the
    performance benchmarks; scenarios override what they need.
    """

    k: int = 3
    quorum: Optional[int] = None  # default: floor(k/2) + 1
    policy: ComparePolicy = field(default_factory=BitExactPolicy)
    #: how long a packet stays buffered awaiting (or after) its majority
    buffer_timeout: float = 5e-3
    #: per-copy processing cost (the C prototype is fast; POX is not)
    proc_time: float = 0.0
    #: additional processing cost per wire byte (memcmp + copy are linear)
    proc_per_byte: float = 0.0
    #: copies that may wait for the processor; beyond this they are
    #: dropped ("the different buffers should be (logically) isolated"
    #: and bounded, to prevent resource attacks on the compare)
    service_queue_capacity: int = 128
    #: packet cache bound; reaching it triggers the cleanup procedure
    cache_capacity: int = 4096
    #: fixed stall paid when the cleanup procedure runs
    cleanup_duration: float = 2e-4
    #: additional stall per cache entry scanned during cleanup
    cleanup_scan_cost: float = 1e-7
    #: duplicate copies on one branch before the DoS mitigation triggers
    dup_threshold: int = 8
    #: unreleased single-branch expiries before the DoS mitigation triggers
    craft_threshold: int = 64
    #: how long the advised port block lasts
    block_duration: float = 50e-3
    #: consecutive released packets a branch may miss before the alarm
    miss_threshold: int = 10
    #: cumulative entries carrying a branch's *unconfirmed* bytes (expired
    #: without any active majority agreeing) before the minority-divergence
    #: alarm latches.  Cumulative, not consecutive: a colluding minority
    #: that diverges intermittently stays under every consecutive counter
    #: (its miss count resets at each clean packet) but accumulates here.
    divergence_threshold: int = 16
    #: consecutive clean (bit-identical, non-duplicate) copies a
    #: quarantined branch must deliver before it is re-admitted
    probation_clean_target: int = 12
    #: smallest bundle the compare will degrade to; a quarantine request
    #: that would leave fewer active branches is refused (below two
    #: branches a "majority" stops meaning anything)
    min_active_branches: int = 2

    def effective_quorum(self) -> int:
        if self.quorum is not None:
            return self.quorum
        return self.k // 2 + 1

    def validate(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        quorum = self.effective_quorum()
        if not 1 <= quorum <= self.k:
            raise ValueError(f"quorum {quorum} out of range for k={self.k}")
        if self.buffer_timeout <= 0:
            raise ValueError("buffer_timeout must be positive")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.probation_clean_target < 1:
            raise ValueError("probation_clean_target must be >= 1")
        if self.divergence_threshold < 1:
            raise ValueError("divergence_threshold must be >= 1")
        if self.min_active_branches < 1:
            raise ValueError("min_active_branches must be >= 1")


@dataclass
class CompareStats:
    """Counters exposed by a compare element."""

    submissions: int = 0
    released: int = 0
    late_copies: int = 0
    branch_duplicates: int = 0
    expired_unreleased: int = 0
    expired_released: int = 0
    evicted: int = 0
    queue_drops: int = 0
    #: total copies accounted for by finalised entries; conservation
    #: invariant: submissions == queue_drops + copies_finalised +
    #: (copies still buffered) — checked by the soak tests
    copies_finalised: int = 0
    cleanups: int = 0
    cleanup_stall_time: float = 0.0
    blocks_issued: int = 0
    #: self-healing bookkeeping (see quarantine_branch / readmit_branch)
    quarantines: int = 0
    readmissions: int = 0
    quarantined_copies: int = 0
    probation_resets: int = 0
    #: entries that expired carrying bytes no active majority confirmed,
    #: summed over the (non-quarantined) branches that voted for them
    divergent_copies: int = 0
    #: minority-divergence alarms latched (at most one per branch until
    #: the branch is quarantined and later re-admitted)
    divergence_alarms: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class CompareContext:
    """Return path for one attachment point of the compare.

    ``scope`` isolates vote spaces (copies collected at endpoint s1 never
    vote together with copies collected at s2).  ``release`` forwards the
    single winning copy onward; ``block_branch`` implements the advised
    DoS port block on the collecting switch.
    """

    __slots__ = ("scope", "release", "block_branch")

    def __init__(
        self,
        scope: str,
        release: Callable[[Packet], None],
        block_branch: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.scope = scope
        self.release = release
        self.block_branch = block_branch


class CompareCore(QuorumMembershipMixin):
    """The compare logic plus its single-server processing model.

    The quarantine / probation / re-admission state machine lives in
    :class:`~repro.core.membership.QuorumMembershipMixin`, shared with
    the control-plane voter.
    """

    def __init__(
        self,
        sim: Simulator,
        config: CompareConfig,
        name: str = "compare",
        alarm_sink: Optional[AlarmSink] = None,
        trace_bus: Optional[TraceBus] = None,
        branch_ids: Optional[Sequence[int]] = None,
    ) -> None:
        config.validate()
        self.sim = sim
        self.config = config
        self.name = name
        self.alarms = alarm_sink or AlarmSink(trace_bus)
        self.trace_bus = trace_bus
        self.branch_ids = list(branch_ids) if branch_ids is not None else list(range(config.k))
        self.book = VoteBook(config.effective_quorum(), config.buffer_timeout)
        self.stats = CompareStats()
        self._contexts: Dict[str, CompareContext] = {}
        self._busy_until = 0.0
        self._in_service = 0
        # DoS bookkeeping
        self._dup_strikes: Dict[int, int] = {}
        self._craft_strikes: Dict[int, int] = {}
        self._blocked_branches: Dict[int, float] = {}
        # liveness bookkeeping
        self._miss_counts: Dict[int, int] = {b: 0 for b in self.branch_ids}
        self._unavailable: Dict[int, bool] = {b: False for b in self.branch_ids}
        # minority-divergence bookkeeping: how often each branch's bytes
        # expired unconfirmed, and whether the alarm already latched
        self._divergence_counts: Dict[int, int] = {b: 0 for b in self.branch_ids}
        self._divergence_alarmed: Dict[int, bool] = {}
        # Time of each branch's last clean (counted, non-duplicate) vote:
        # entries older than this must not count as misses — they date
        # from before the branch recovered (stale-count guard).
        self._last_clean_vote: Dict[int, float] = {}
        self._init_membership()
        self.add_membership_listener(self._membership_divergence_reset)
        # observers of the expiry-sweep tick (adversary strategies that
        # time themselves against the vote cadence subscribe here)
        self._sweep_listeners: List[Callable[[float], None]] = []
        self._sweeper = PeriodicTask(sim, config.buffer_timeout, self._sweep)
        # Latency/quorum histograms bound from the registry active at
        # construction time; None when metrics are disabled so the
        # release path pays a single test per packet.
        registry = active_registry()
        if registry.enabled:
            self._h_release_latency = registry.histogram(
                "compare_release_latency_seconds",
                "time from a packet's first copy arriving to its release",
                labelnames=("compare",),
            ).labels(name)
            self._h_quorum_votes = registry.histogram(
                "compare_quorum_votes",
                "distinct branches that had voted when a packet released",
                labelnames=("compare",),
                buckets=(1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 9.0),
            ).labels(name)
            self._c_branch_divergence = registry.counter(
                "compare_branch_divergence_total",
                "expired entries carrying a branch's unconfirmed bytes",
                labelnames=("compare", "branch"),
            )
        else:
            self._h_release_latency = None
            self._h_quorum_votes = None
            self._c_branch_divergence = None

    # ------------------------------------------------------------------
    # submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        packet: Packet,
        branch: int,
        context: CompareContext,
        claim: Optional[int] = None,
    ) -> None:
        """Accept one copy from ``branch`` collected by ``context``.

        The copy is queued behind the compare's single-server processor
        (``proc_time`` per copy); voting happens when it is served.
        """
        self._contexts[context.scope] = context
        self.stats.submissions += 1
        cost = self.config.proc_time + self.config.proc_per_byte * packet.wire_len
        if cost <= 0.0 and self.sim.now >= self._busy_until:
            self._serve(packet, branch, context, claim)
            return
        if self._in_service >= self.config.service_queue_capacity:
            self.stats.queue_drops += 1
            self._trace("compare.queue_drop", branch=branch)
            return
        start = max(self.sim.now, self._busy_until)
        finish = start + cost
        self._busy_until = finish
        self._in_service += 1

        def _serve_one() -> None:
            self._in_service -= 1
            self._serve(packet, branch, context, claim)

        realm = self.sim.realm
        if realm is not None:
            # Keep compare service completions on the micro heap so they
            # interleave with in-flight train packets in global time order.
            realm.post(finish, _serve_one, ())
        else:
            self.sim.schedule_at(finish, _serve_one)

    def _serve(
        self,
        packet: Packet,
        branch: int,
        context: CompareContext,
        claim: Optional[int],
    ) -> None:
        now = self.sim.now
        if not self._sweeper.running:
            self._sweeper.start(self.config.buffer_timeout)
        if len(self.book) >= self.config.cache_capacity:
            self._cleanup(now)
        quarantined = branch in self._quarantined
        key: Hashable = (context.scope, claim, self.config.policy.key(packet))
        outcome = self.book.observe(
            key, branch, now, packet, claim=claim, countable=not quarantined
        )
        if outcome.evicted_stale is not None:
            self._finalise(outcome.evicted_stale)
        if outcome.is_branch_duplicate:
            self.stats.branch_duplicates += 1
            self._note_duplicate(branch, context)
        else:
            self._dup_strikes[branch] = 0
            if not quarantined:
                # First clean vote after an outage heals the liveness
                # bookkeeping right here, not at entry-finalise time:
                # otherwise outage-era entries expiring after the branch
                # recovered would re-alarm a healed router.
                self._last_clean_vote[branch] = now
                if self._miss_counts.get(branch):
                    self._miss_counts[branch] = 0
                if self._unavailable.get(branch):
                    self._unavailable[branch] = False
        if packet.trace_id is not None:
            self._trace(
                "compare.vote",
                trace=packet.trace_id,
                branch=branch,
                votes=outcome.entry.distinct_branches,
                duplicate=outcome.is_branch_duplicate,
                late=outcome.late_copy,
                probation=quarantined,
            )
        if quarantined:
            self.stats.quarantined_copies += 1
            if outcome.entry.released and not outcome.is_branch_duplicate:
                # The copy matches a packet the active majority already
                # released: a clean duplicate, probation's currency.
                self._note_probation_clean(branch)
            return
        if outcome.late_copy:
            self.stats.late_copies += 1
            self._trace("compare.late_copy", branch=branch)
            return
        if outcome.newly_released:
            self._do_release(outcome.entry, now, context=context, branch=branch)

    def _do_release(
        self,
        entry: VoteEntry,
        now: float,
        context: Optional[CompareContext] = None,
        branch: Optional[int] = None,
    ) -> None:
        """Forward an entry's winning copy and settle probation credit."""
        self.stats.released += 1
        if self._h_release_latency is not None:
            self._h_release_latency.observe(now - entry.first_seen)
            self._h_quorum_votes.observe(entry.distinct_branches)
        self._trace(
            "compare.release",
            branch=branch,
            votes=entry.distinct_branches,
            trace=entry.packet.trace_id,
            latency=now - entry.first_seen,
        )
        if context is None:
            context = self._contexts.get(entry.key[0])
        if context is not None:
            context.release(entry.packet)
        # Probation copies that preceded the quorum are confirmed clean
        # now that the active majority agreed on the same bytes.
        for waiting in list(entry.probation_counts):
            self._note_probation_clean(waiting)

    # ------------------------------------------------------------------
    # cache management (the Figure 8 jitter mechanism)
    # ------------------------------------------------------------------
    def _cleanup(self, now: float) -> None:
        scanned = len(self.book)
        expired = self.book.pop_expired(now)
        for entry in expired:
            self._finalise(entry)
        if len(self.book) >= self.config.cache_capacity:
            # Still full: evict the oldest tenth to make room.
            evicted = self.book.evict_oldest(max(1, self.config.cache_capacity // 10))
            self.stats.evicted += len(evicted)
            for entry in evicted:
                self._finalise(entry)
        stall = self.config.cleanup_duration + self.config.cleanup_scan_cost * scanned
        self._busy_until = max(self._busy_until, now) + stall
        self.stats.cleanups += 1
        self.stats.cleanup_stall_time += stall
        self._trace("compare.cleanup", scanned=scanned, expired=len(expired), stall=stall)

    @property
    def sweep_period(self) -> float:
        """The expiry-sweep cadence (one tick per ``buffer_timeout``)."""
        return self.config.buffer_timeout

    def add_sweep_listener(self, fn: Callable[[float], None]) -> None:
        """Observe each expiry-sweep tick (called with ``sim.now``)."""
        self._sweep_listeners.append(fn)

    def remove_sweep_listener(self, fn: Callable[[float], None]) -> None:
        if fn in self._sweep_listeners:
            self._sweep_listeners.remove(fn)

    def _sweep(self) -> None:
        if self._sweep_listeners:
            now = self.sim.now
            for fn in list(self._sweep_listeners):
                fn(now)
        for entry in self.book.pop_expired(self.sim.now):
            self._finalise(entry)
        if not len(self.book):
            self._sweeper.stop()

    def _finalise(self, entry: VoteEntry) -> None:
        """Account for an entry leaving the cache (expiry or eviction)."""
        now = self.sim.now
        self.stats.copies_finalised += entry.total_copies()
        if entry.released:
            self.stats.expired_released += 1
            for missing in entry.missing_branches(self.branch_ids):
                if missing in self._quarantined or missing in entry.probation_counts:
                    # Quarantined branches are expected to be absent from
                    # the count; a probation copy is not "missing" either.
                    continue
                self._note_missing(missing, entry.first_seen)
            for present in entry.branches():
                self._miss_counts[present] = 0
                if self._unavailable.get(present):
                    self._unavailable[present] = False
        else:
            self.stats.expired_unreleased += 1
            for waiting in list(entry.probation_counts):
                # The quarantined branch delivered bytes no active
                # majority ever confirmed: probation starts over.
                self._reset_probation(waiting)
            if entry.distinct_branches == 1:
                branch = entry.branches()[0]
                self.alarms.raise_alarm(
                    now,
                    ALARM_SINGLE_SOURCE_PACKET,
                    self.name,
                    branch=branch,
                    copies=entry.total_copies(),
                )
                self._note_crafted(branch)
            for present in entry.branches():
                if present in self._quarantined or present in entry.probation_counts:
                    continue
                self._note_divergence(present)
            self._trace(
                "compare.drop_unreleased",
                votes=entry.distinct_branches,
                copies=entry.total_copies(),
                trace=entry.packet.trace_id,
            )

    # ------------------------------------------------------------------
    # DoS and liveness logic
    # ------------------------------------------------------------------
    def _note_duplicate(self, branch: int, context: CompareContext) -> None:
        strikes = self._dup_strikes.get(branch, 0) + 1
        self._dup_strikes[branch] = strikes
        if strikes >= self.config.dup_threshold:
            self._dup_strikes[branch] = 0
            self._block(branch, context, reason="duplicate-flood")

    def _note_crafted(self, branch: int) -> None:
        strikes = self._craft_strikes.get(branch, 0) + 1
        self._craft_strikes[branch] = strikes
        if strikes >= self.config.craft_threshold:
            self._craft_strikes[branch] = 0
            context = self._contexts.get(next(iter(self._contexts), ""), None)
            self._block(branch, context, reason="crafted-flood")

    def _block(self, branch: int, context: Optional[CompareContext], reason: str) -> None:
        now = self.sim.now
        until = self._blocked_branches.get(branch, 0.0)
        if now < until:
            return  # already blocked; don't spam
        self._blocked_branches[branch] = now + self.config.block_duration
        self.stats.blocks_issued += 1
        self.alarms.raise_alarm(
            now, ALARM_DOS_SUSPECTED, self.name, branch=branch, reason=reason
        )
        if context is not None and context.block_branch is not None:
            context.block_branch(branch, self.config.block_duration)

    def _note_divergence(self, branch: int) -> None:
        """A (non-quarantined) branch voted for bytes that expired without
        any active majority confirming them.  The count is cumulative and
        the alarm latches: it surfaces the silent colluding minority (at
        k=5, two branches delivering identical altered copies never trip
        the single-source alarm, and intermittent divergence resets every
        consecutive miss counter) without changing the vote itself.
        """
        count = self._divergence_counts.get(branch, 0) + 1
        self._divergence_counts[branch] = count
        self.stats.divergent_copies += 1
        if self._c_branch_divergence is not None:
            self._c_branch_divergence.labels(self.name, str(branch)).inc()
        if (
            count >= self.config.divergence_threshold
            and not self._divergence_alarmed.get(branch)
        ):
            self._divergence_alarmed[branch] = True
            self.stats.divergence_alarms += 1
            self.alarms.raise_alarm(
                self.sim.now,
                ALARM_MINORITY_DIVERGENCE,
                self.name,
                branch=branch,
                divergent_entries=count,
            )

    def _membership_divergence_reset(
        self, kind: str, branch: int, now: float
    ) -> None:
        # A re-admitted branch served its probation; its divergence
        # history (which likely drove the quarantine) starts over.
        if kind == "readmit":
            self._divergence_counts[branch] = 0
            self._divergence_alarmed.pop(branch, None)

    def _note_missing(self, branch: int, first_seen: float) -> None:
        if first_seen < self._last_clean_vote.get(branch, -1.0):
            # The entry's packet predates the branch's recovery; counting
            # it would re-alarm a healed router on stale history.
            return
        count = self._miss_counts.get(branch, 0) + 1
        self._miss_counts[branch] = count
        if count >= self.config.miss_threshold and not self._unavailable.get(branch):
            self._unavailable[branch] = True
            self.alarms.raise_alarm(
                self.sim.now,
                ALARM_ROUTER_UNAVAILABLE,
                self.name,
                branch=branch,
                consecutive_misses=count,
            )

    # ------------------------------------------------------------------
    # self-healing: quarantine / probation / re-admission — inherited
    # from QuorumMembershipMixin (shared with ctrl.ControlCompare)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Finalise everything still buffered (end-of-run accounting)."""
        for entry in self.book.entries():
            self._finalise(entry)
        self.book.clear()
        self._sweeper.stop()

    def _trace(self, topic: str, **data: object) -> None:
        if self.trace_bus is not None:
            self.trace_bus.emit(self.sim.now, topic, self.name, **data)

    def __repr__(self) -> str:
        return (
            f"CompareCore({self.name}, k={self.config.k}, "
            f"quorum={self.config.effective_quorum()}, "
            f"policy={self.config.policy.name})"
        )
