"""Trusted combiner endpoints (the ``s1``/``s2`` elements of Figure 3).

A :class:`CombinerEndpoint` is the trusted, simple device that brackets
the bundle of untrusted routers.  Depending on the direction a packet
flows it acts as

* **hub** — packets arriving on an *external* port are duplicated onto
  every *branch* port (one untrusted router per branch);
* **collector** — packets arriving on a *branch* port are handed to the
  compare, tagged with the branch identity (the paper does this with an
  OpenFlow packet-in whose ``in_port`` identifies the router; optionally
  the endpoint also enforces the paper's "ingress port must match MAC
  source" spoofing check via per-branch source marking);
* **egress** — packets released by the compare are forwarded onward
  "based on the switch's MAC table".

The endpoint subclasses :class:`OpenFlowSwitch` so the POX3 scenario can
attach the compare as a genuine controller application via packet-in /
packet-out, exactly as the paper's reference implementation does.  In
``dup`` mode (the Dup3/Dup5 scenarios) the compare is bypassed: branch
arrivals are forwarded directly, duplicates and all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.alarms import ALARM_SPOOFED_BRANCH, AlarmSink
from repro.core.compare import CompareContext, CompareCore
from repro.net.addresses import MacAddress
from repro.net.node import NetworkError
from repro.net.packet import Packet
from repro.openflow.messages import PACKETIN_NO_MATCH, PacketIn, PacketOut
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import Simulator, TraceBus
from repro.transport import (
    ROLE_COLLECT,
    ROLE_FANOUT,
    ROLE_RELEASE,
    Session,
    SessionSpec,
    Transport,
)
from repro.transport.des import read_collect_meta

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

MODE_COMBINE = "combine"
MODE_DUP = "dup"

#: Locally-administered MAC prefix used for per-branch source markers.
_MARKER_BASE = 0x06_00_00_00_00_00


def branch_marker(branch: int) -> MacAddress:
    """The source-marker MAC for a branch (paper: 'the only written
    header field is the MAC source address')."""
    return MacAddress(_MARKER_BASE + branch)


class ControlChannelCollectSession(Session):
    """Collect-role session over the OpenFlow control channel (POX3).

    Each message is a packet-in whose ``in_port`` encodes the branch —
    the paper's reference transport.  Claims are not representable on
    this channel (packet-ins carry no sideband), matching the original
    controller path.
    """

    def __init__(self, transport: Transport, endpoint: "CombinerEndpoint") -> None:
        super().__init__(transport, SessionSpec(endpoint.name, ROLE_COLLECT))
        self.endpoint = endpoint

    def send(
        self,
        packet: Packet,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        self.stats.tx_messages += 1
        endpoint = self.endpoint
        if self.transport._tracers:
            self.transport._trace(
                "tx", self.spec, packet, {"branch": branch, "claim": claim}
            )
        endpoint.stats.packet_ins += 1
        endpoint._send_to_controller(
            PacketIn(
                datapath_id=endpoint.datapath_id,
                packet=packet,
                in_port=endpoint._port_by_branch[branch],
                reason=PACKETIN_NO_MATCH,
            )
        )


class EndpointStats:
    """Counters for one combiner endpoint."""

    __slots__ = (
        "external_in",
        "duplicated",
        "collected",
        "submitted",
        "released_out",
        "spoof_drops",
        "flooded",
    )

    def __init__(self) -> None:
        self.external_in = 0
        self.duplicated = 0
        self.collected = 0
        self.submitted = 0
        self.released_out = 0
        self.spoof_drops = 0
        self.flooded = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class CombinerEndpoint(OpenFlowSwitch):
    """One trusted bracket of a NetCo combiner (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace_bus: Optional[TraceBus] = None,
        proc_time: float = 0.0,
        proc_per_byte: float = 0.0,
        cpu=None,
        mode: str = MODE_COMBINE,
        mark_sources: bool = False,
        alarm_sink: Optional[AlarmSink] = None,
        service_queue_capacity: int = 1000,
        transport: Optional[Transport] = None,
    ) -> None:
        if mode not in (MODE_COMBINE, MODE_DUP):
            raise ValueError(f"unknown endpoint mode {mode!r}")
        super().__init__(
            sim,
            name,
            trace_bus=trace_bus,
            proc_time=proc_time,
            proc_per_byte=proc_per_byte,
            cpu=cpu,
            service_queue_capacity=service_queue_capacity,
            transport=transport,
        )
        self.mode = mode
        self.mark_sources = mark_sources
        # Shared across the trusted endpoints of one combiner (they
        # already share the compare): IP -> original MAC, learned on
        # external ingress, used to restore dl_src after source-marked
        # copies win their vote.
        self.address_registry: Dict = {}
        self.alarms = alarm_sink or AlarmSink(trace_bus)
        self.estats = EndpointStats()
        self._branch_by_port: Dict[int, int] = {}
        self._port_by_branch: Dict[int, int] = {}
        # Optional egress claim per branch port: for an n-port shielded
        # router each replica has one link per original egress port, so a
        # copy's arrival port encodes "replica i claims egress m".  The
        # vote is then over (packet bytes, claimed egress) — the majority
        # must agree on the forwarding decision too, as in Figure 2.
        self._claim_by_port: Dict[int, int] = {}
        self._compare_port_no: Optional[int] = None
        self._compare_core: Optional[CompareCore] = None
        self._mac_table: Dict[MacAddress, int] = {}
        # Transport sessions for the three combiner directions (built on
        # wiring; the collect session is lazy because the controller
        # variant replaces it with a control-channel session).
        self._fan_session_by_branch: Dict[int, Session] = {}
        self._collect_session: Optional[Session] = None
        self._release_session: Optional[Session] = None
        # Train fast-path caches (wiring and role assignments are static
        # once the testbed is built; invalidated on any change anyway).
        self._fan_cache: Optional[List] = None
        self._ext_cache: Optional[tuple] = None

    def add_port(self, port_no: Optional[int] = None):
        self._fan_cache = None
        self._ext_cache = None
        self._fan_session_by_branch.clear()
        return super().add_port(port_no)

    # ------------------------------------------------------------------
    # wiring (done by the combiner builder)
    # ------------------------------------------------------------------
    def assign_branch(
        self, port_no: int, branch: int, claim: Optional[int] = None
    ) -> None:
        """Mark ``port_no`` as a branch port toward untrusted router
        ``branch``; ``claim`` optionally names the external egress port
        this branch link stands for (n-port shielded-router wiring)."""
        if port_no in self._branch_by_port:
            raise NetworkError(f"{self.name}: port {port_no} already a branch")
        self._branch_by_port[port_no] = branch
        self._port_by_branch.setdefault(branch, port_no)
        self._fan_cache = None
        self._ext_cache = None
        if claim is not None:
            self._claim_by_port[port_no] = claim

    def assign_compare_port(self, port_no: int) -> None:
        """Mark ``port_no`` as the in-band attachment to the compare host."""
        self._compare_port_no = port_no
        self._fan_cache = None
        self._ext_cache = None
        port = self.port(port_no)
        self._collect_session = self.transport.session(
            SessionSpec(self.name, ROLE_COLLECT), port=port
        )
        release = self.transport.session(
            SessionSpec(self.name, ROLE_RELEASE), port=port
        )
        release.set_receiver(lambda packet, meta: self.handle_release(packet))
        self._release_session = release

    def attach_compare_controller(self, core: CompareCore) -> None:
        """Use the control channel (packet-in/packet-out) to reach the
        compare — the POX3 configuration.  The endpoint must already be
        connected to the controller hosting ``core``."""
        self._compare_core = core
        self._collect_session = self.transport.adopt(
            ControlChannelCollectSession(self.transport, self)
        )

    @property
    def branch_ports(self) -> List[int]:
        return sorted(self._branch_by_port)

    @property
    def branch_ids(self) -> List[int]:
        return sorted(self._port_by_branch)

    def port_of_branch(self, branch: int) -> int:
        return self._port_by_branch[branch]

    def branch_of_port(self, port_no: int) -> Optional[int]:
        return self._branch_by_port.get(port_no)

    def external_ports(self) -> List[int]:
        """Every wired port that is neither a branch nor the compare port."""
        return [
            no
            for no, port in sorted(self.ports.items())
            if port.is_wired
            and no not in self._branch_by_port
            and no != self._compare_port_no
        ]

    # ------------------------------------------------------------------
    # datapath (replaces the OpenFlow pipeline with the trusted logic)
    # ------------------------------------------------------------------
    def _process(self, packet: Packet, in_port_no: int) -> None:
        if in_port_no in self._branch_by_port:
            self._from_branch(
                packet,
                self._branch_by_port[in_port_no],
                claim=self._claim_by_port.get(in_port_no),
            )
        elif in_port_no == self._compare_port_no:
            # Inbound leg of the release session: meta is the DES wire
            # format ({"claim": ...}); the receiver is handle_release.
            self._release_session.deliver(packet, read_collect_meta(packet))
        else:
            self._from_external(packet, in_port_no)

    # ------------------------------------------------------------------
    # packet-train fast path (batch realm)
    # ------------------------------------------------------------------
    def _serve_batch_packet(self, batch, i: int, in_port_no: int, now: float) -> None:
        """:meth:`_process` for one train packet (clock already patched).

        Mirrors the trusted routing exactly; the hand-off to the compare
        is a *vote boundary* — the train splits there so vote keys,
        alarms and quarantine behaviour are bit-identical.
        """
        branch = self._branch_by_port.get(in_port_no)
        if branch is not None:
            self.estats.collected += 1
            if self.mark_sources:
                src = batch.template.fields()[0].src
                if src != branch_marker(branch):
                    self.estats.spoof_drops += 1
                    self.alarms.raise_alarm(
                        now,
                        ALARM_SPOOFED_BRANCH,
                        self.name,
                        branch=branch,
                        claimed=str(src),
                    )
                    return
            if self.mode == MODE_DUP:
                self._forward_external_batch(batch, i, now)
                return
            self._submit_batch_packet(
                batch, i, branch, self._claim_by_port.get(in_port_no)
            )
            return
        if in_port_no == self._compare_port_no:
            # Releases only ever arrive as ordinary packets; defensive.
            self.sim.realm.note_fallback("mixed-headers")
            self.handle_release(batch.packet_at(i))
            return
        self._from_external_batch(batch, i, in_port_no, now)

    def _from_external_batch(self, batch, i: int, in_port_no: int, now: float) -> None:
        """Hub role for one train packet: learn, fan the shared batch."""
        if self.mark_sources:
            # Marked copies mutate per branch: per-packet semantics.
            self.sim.realm.note_fallback("mixed-headers")
            self._from_external(batch.packet_at(i), in_port_no)
            return
        self.estats.external_in += 1
        eth, _vlan, ip, _l4, _payload = batch.template.fields()
        if not eth.src.is_multicast:
            self._mac_table[eth.src] = in_port_no
            if ip is not None:
                self.address_registry[ip.src] = eth.src
        fan = self._fan_cache
        if fan is None:
            fan = [
                self.ports[self._port_by_branch[b]]
                for b in self.branch_ids
                if self._port_by_branch[b] in self.ports
                and self.ports[self._port_by_branch[b]].is_wired
            ]
            self._fan_cache = fan
        estats = self.estats
        for port in fan:
            port.send_batch_packet(batch, i, now)
            estats.duplicated += 1

    def _submit_batch_packet(
        self, batch, i: int, branch: int, claim: Optional[int]
    ) -> None:
        """Collector role: the vote boundary — materialise and submit."""
        self.estats.submitted += 1
        self.sim.realm.note_fallback("vote-boundary")
        session = self._collect_session
        if session is None:
            raise NetworkError(f"{self.name}: no compare attachment configured")
        session.send(batch.packet_at(i), branch=branch, claim=claim)

    def _forward_external_batch(self, batch, i: int, now: float) -> None:
        """Egress role for one train packet (dup mode: no compare)."""
        ext = self._ext_cache
        if ext is None:
            nos = self.external_ports()
            ext = (frozenset(nos), [self.ports[no] for no in nos])
            self._ext_cache = ext
        ext_nos, ext_ports = ext
        out_port_no = self._mac_table.get(batch.template.fields()[0].dst)
        if out_port_no is not None and out_port_no in ext_nos:
            self.ports[out_port_no].send_batch_packet(batch, i, now)
            self.stats.forwarded += 1
            return
        self.estats.flooded += 1
        for port in ext_ports:
            port.send_batch_packet(batch, i, now)
        if ext_ports:
            self.stats.forwarded += 1

    def _from_external(self, packet: Packet, in_port_no: int) -> None:
        """Hub role: learn the source, duplicate to every branch."""
        self.estats.external_in += 1
        eth, _vlan, ip, _l4, _payload = packet.fields()  # read-only access
        if not eth.src.is_multicast:
            self._mac_table[eth.src] = in_port_no
            if ip is not None:
                self.address_registry[ip.src] = eth.src
        if self.mode == MODE_COMBINE and not self.mark_sources:
            # Warm the wire-image cache before fanning out: the k CoW
            # copies share it, so the egress compare vote-keys every
            # benign copy without serialising again.  Pointless in dup
            # mode (no compare) and when source marking mutates each copy.
            packet.to_bytes()
        fanout = 0
        for branch in self.branch_ids:
            port = self.ports.get(self._port_by_branch[branch])
            if port is None or not port.is_wired:
                continue
            session = self._fan_session_by_branch.get(branch)
            if session is None:
                session = self.transport.session(
                    SessionSpec(self.name, ROLE_FANOUT, branch), port=port
                )
                self._fan_session_by_branch[branch] = session
            copy = packet.copy()
            if self.mark_sources:
                copy.eth.src = branch_marker(branch)
            session.send(copy)
            self.estats.duplicated += 1
            fanout += 1
        if packet.trace_id is not None:
            self.trace("endpoint.dup", trace=packet.trace_id, fanout=fanout)

    def _from_branch(
        self, packet: Packet, branch: int, claim: Optional[int] = None
    ) -> None:
        """Collector role: validate and hand the copy to the compare."""
        self.estats.collected += 1
        if self.mark_sources:
            expected = branch_marker(branch)
            src = packet.fields()[0].src  # read-only access
            if src != expected:
                self.estats.spoof_drops += 1
                self.alarms.raise_alarm(
                    self.sim.now,
                    ALARM_SPOOFED_BRANCH,
                    self.name,
                    branch=branch,
                    claimed=str(src),
                )
                return
        if self.mode == MODE_DUP:
            # Dup3/Dup5: hubs only; duplicates flow through unfiltered.
            self._forward_external(packet)
            return
        self._submit_to_compare(packet, branch, claim)

    def _submit_to_compare(
        self, packet: Packet, branch: int, claim: Optional[int] = None
    ) -> None:
        self.estats.submitted += 1
        session = self._collect_session
        if session is None:
            raise NetworkError(f"{self.name}: no compare attachment configured")
        session.send(packet, branch=branch, claim=claim)

    def handle_release(self, packet: Packet) -> None:
        """Egress role: the compare released this packet; forward it on."""
        self.estats.released_out += 1
        claim = (packet.meta or {}).get("claim")
        if self.mark_sources:
            eth, _vlan, ip, _l4, _payload = packet.fields()  # read-only
            if ip is not None:
                original = self.address_registry.get(ip.src)
                if original is not None and eth.src != original:
                    packet = packet.copy()  # note: clears meta; claim saved above
                    packet.eth.src = original
        if claim is not None:
            port = self.ports.get(claim)
            if port is not None and port.is_wired and claim in self.external_ports():
                port.send(packet.copy())
                self.stats.forwarded += 1
                return
        self._forward_external(packet)

    def _forward_external(self, packet: Packet) -> None:
        out_port_no = self._mac_table.get(packet.fields()[0].dst)
        externals = self.external_ports()
        if out_port_no is not None and out_port_no in externals:
            self.ports[out_port_no].send(packet.copy())
            self.stats.forwarded += 1
            return
        # Unknown destination: flood the external side only — never back
        # into the untrusted bundle or at the compare.
        self.estats.flooded += 1
        for no in externals:
            self.ports[no].send(packet.copy())
        if externals:
            self.stats.forwarded += 1

    # ------------------------------------------------------------------
    # control-plane release path (POX3) and DoS mitigation hook
    # ------------------------------------------------------------------
    def _apply_packet_out(self, message: PacketOut) -> None:
        """A packet-out from the compare app is a release decision."""
        self.stats.packet_outs += 1
        if message.packet is not None:
            self.handle_release(message.packet)

    def compare_context(self, core_name: str = "") -> CompareContext:
        """Build this endpoint's :class:`CompareContext` (scope + return
        path + block hook)."""
        return CompareContext(
            scope=self.name,
            release=self.handle_release,
            block_branch=self.block_branch_ingress,
        )

    def block_branch_ingress(self, branch: int, duration: float) -> None:
        """Block every port belonging to ``branch`` (a replica may have
        several links in the shielded-router wiring)."""
        for port_no, port_branch in self._branch_by_port.items():
            if port_branch == branch:
                self.block_port(port_no, duration)
