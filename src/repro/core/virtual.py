"""The virtualized NetCo (Section VII, Figure 9).

Instead of physical redundancy, the combiner is *emulated*: a protected
flow is split at its ingress edge into ``k`` copies, each tunnelled over
a node-disjoint path through heterogeneous (differently-vendored)
devices, and recombined by an **in-band** compare at the egress edge.
SDN traffic-engineering supplies the tunnels: each copy carries a VLAN
tag naming its path, and the transit switches forward on ``dl_vlan``.

Two copies suffice for detection, three for prevention — same quorum
arithmetic as the physical combiner, same :class:`CompareCore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.alarms import AlarmSink
from repro.core.compare import CompareConfig, CompareContext, CompareCore
from repro.net.addresses import MacAddress
from repro.net.node import NetworkError
from repro.net.packet import Packet, Vlan
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


class VirtualIngress(OpenFlowSwitch):
    """Edge switch that splits protected flows over tagged tunnels.

    Unprotected traffic takes the normal match-action pipeline.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # dst mac -> list of (vlan id, out port)
        self._protected: Dict[MacAddress, List[Tuple[int, int]]] = {}
        self.split_packets = 0

    def protect_flow(self, dst_mac: MacAddress, tunnels: List[Tuple[int, int]]) -> None:
        """Split traffic to ``dst_mac`` over ``[(vid, out_port), ...]``."""
        if not tunnels:
            raise NetworkError(f"{self.name}: need at least one tunnel")
        self._protected[MacAddress(dst_mac)] = list(tunnels)

    def _process(self, packet: Packet, in_port_no: int) -> None:
        tunnels = self._protected.get(packet.eth.dst)
        if tunnels is None or packet.vlan is not None:
            super()._process(packet, in_port_no)
            return
        self.split_packets += 1
        for vid, out_port in tunnels:
            copy = packet.copy()
            copy.vlan = Vlan(vid)
            port = self.ports.get(out_port)
            if port is not None and port.is_wired:
                port.send(copy)


class VirtualEgress(OpenFlowSwitch):
    """Edge switch hosting the in-band compare for tunnelled flows.

    Copies arriving with a protected VLAN tag are stripped and voted on;
    the released packet continues through the normal pipeline (so the
    egress needs an ordinary route to the destination).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._core: Optional[CompareCore] = None
        self._vid_to_branch: Dict[int, int] = {}
        self._context: Optional[CompareContext] = None
        self.recombined = 0

    def attach_compare(self, core: CompareCore, vids: List[int]) -> None:
        """Use ``core`` to vote on copies tagged with ``vids`` (in branch
        order)."""
        if self._core is not None and self._core is not core:
            raise NetworkError(f"{self.name}: a compare is already attached")
        self._core = core
        self._vid_to_branch = {vid: branch for branch, vid in enumerate(vids)}

        def release(packet: Packet) -> None:
            self.recombined += 1
            # Continue through the normal pipeline as fresh ingress.
            entry = self.table.lookup(packet, 0, self.sim.now)
            if entry is not None and entry.actions:
                self.apply_actions(packet, entry.actions, 0)
            else:
                self.stats.dropped_no_match += 1
                self.trace("virtual_egress.no_route", packet=packet)

        self._context = CompareContext(
            scope=self.name, release=release, block_branch=self._block_tunnel
        )

    def _block_tunnel(self, branch: int, duration: float) -> None:
        # In-band: we cannot block a whole path, but we can ignore its
        # tag for a while by blocking the port it arrives on — left as a
        # trace-visible decision.
        self.trace("virtual_egress.block_tunnel", branch=branch, duration=duration)

    def _process(self, packet: Packet, in_port_no: int) -> None:
        vlan = packet.vlan
        if (
            self._core is not None
            and vlan is not None
            and vlan.vid in self._vid_to_branch
        ):
            branch = self._vid_to_branch[vlan.vid]
            stripped = packet.copy()
            stripped.vlan = None
            assert self._context is not None
            self._core.submit(stripped, branch, self._context)
            return
        super()._process(packet, in_port_no)


@dataclass
class VirtualCombiner:
    """Handles for one provisioned virtualized combiner."""

    network: Network
    ingress: VirtualIngress
    egress: VirtualEgress
    core: CompareCore
    paths: List[List[str]] = field(default_factory=list)
    vids: List[int] = field(default_factory=list)
    alarms: Optional[AlarmSink] = None

    @property
    def k(self) -> int:
        return len(self.paths)


def provision_virtual_combiner(
    network: Network,
    ingress: VirtualIngress,
    egress: VirtualEgress,
    dst_mac: MacAddress,
    k: int = 3,
    vid_base: int = 100,
    compare: Optional[CompareConfig] = None,
    alarm_sink: Optional[AlarmSink] = None,
    paths: Optional[List[List[str]]] = None,
) -> VirtualCombiner:
    """Split traffic for ``dst_mac`` from ``ingress`` to ``egress`` over
    ``k`` node-disjoint tunnels and recombine in-band at the egress.

    Installs ``dl_vlan`` forwarding rules on every transit switch; the
    caller is responsible for the egress' normal route to the final
    destination (e.g. via :class:`~repro.apps.static_routing.
    StaticMacRouter`).
    """
    if paths is None:
        paths = network.disjoint_paths(ingress.name, egress.name, k)
    if len(paths) < k:
        raise NetworkError(
            f"only {len(paths)} disjoint paths between {ingress.name} and "
            f"{egress.name}; need {k}"
        )
    paths = paths[:k]
    alarms = alarm_sink or AlarmSink(network.trace)
    config = compare or CompareConfig(k=k)
    if config.k != k:
        from dataclasses import replace as dc_replace

        config = dc_replace(config, k=k)
    core = CompareCore(
        network.sim,
        config,
        name=f"{egress.name}_inband_compare",
        alarm_sink=alarms,
        trace_bus=network.trace,
    )

    vids = [vid_base + i for i in range(k)]
    tunnels: List[Tuple[int, int]] = []
    for i, path in enumerate(paths):
        vid = vids[i]
        first_hop_port = network.port_no_between(ingress.name, path[1])
        tunnels.append((vid, first_hop_port))
        # Program the transit switches (everything strictly between the
        # two edges) to forward this tag along the path.
        for here, nxt in zip(path[1:-1], path[2:]):
            node = network.node(here)
            if not isinstance(node, OpenFlowSwitch):
                raise NetworkError(f"transit node {here!r} is not a switch")
            node.install(
                Match(dl_vlan=vid),
                [Output(network.port_no_between(here, nxt))],
                priority=20,
            )
    ingress.protect_flow(dst_mac, tunnels)
    egress.attach_compare(core, vids)

    return VirtualCombiner(
        network=network,
        ingress=ingress,
        egress=egress,
        core=core,
        paths=paths,
        vids=vids,
        alarms=alarms,
    )
