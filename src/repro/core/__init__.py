"""NetCo core: robust network combiners from untrusted routers.

The primary contribution of the paper, as a library:

* :class:`~repro.core.hub.Hub` and :class:`~repro.core.endpoint.
  CombinerEndpoint` — the trusted, simple components;
* :class:`~repro.core.compare.CompareCore` — majority voting with
  bounded buffering, DoS mitigation and liveness alarms;
* :func:`~repro.core.combiner.build_combiner_chain` — the Figure 3
  evaluation unit;
* :func:`~repro.core.deployment.build_shielded_router` — Figure 2's
  drop-in replacement for one n-port router;
* :func:`~repro.core.virtual.provision_virtual_combiner` — the Section
  VII virtualized combiner over diverse paths.
"""

from repro.core.alarms import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
    ALARM_DOS_SUSPECTED,
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
    ALARM_SINGLE_SOURCE_PACKET,
    ALARM_SPOOFED_BRANCH,
    Alarm,
    AlarmSink,
)
from repro.core.combiner import (
    CombinerChain,
    CombinerChainParams,
    CompareHost,
    build_combiner_chain,
)
from repro.core.compare import (
    CompareConfig,
    CompareContext,
    CompareCore,
    CompareStats,
)
from repro.core.deployment import (
    ShieldedRouter,
    ShieldedRouterParams,
    build_shielded_router,
)
from repro.core.endpoint import (
    MODE_COMBINE,
    MODE_DUP,
    CombinerEndpoint,
    EndpointStats,
    branch_marker,
)
from repro.core.hub import Hub
from repro.core.sampling import (
    DivergenceWatcher,
    SamplingEndpoint,
    build_sampling_chain,
    deterministic_sample,
)
from repro.core.policy import (
    BitExactPolicy,
    ComparePolicy,
    HashPolicy,
    HeaderOnlyPolicy,
    MaskedPolicy,
    mask_src_mac_policy,
    strip_vlan_policy,
)
from repro.core.virtual import (
    VirtualCombiner,
    VirtualEgress,
    VirtualIngress,
    provision_virtual_combiner,
)
from repro.core.votes import VoteBook, VoteEntry, VoteOutcome

__all__ = [
    "ALARM_BRANCH_QUARANTINED",
    "ALARM_BRANCH_READMITTED",
    "ALARM_DOS_SUSPECTED",
    "ALARM_MINORITY_DIVERGENCE",
    "ALARM_ROUTER_UNAVAILABLE",
    "ALARM_SINGLE_SOURCE_PACKET",
    "ALARM_SPOOFED_BRANCH",
    "Alarm",
    "AlarmSink",
    "CombinerChain",
    "CombinerChainParams",
    "CompareHost",
    "build_combiner_chain",
    "CompareConfig",
    "CompareContext",
    "CompareCore",
    "CompareStats",
    "ShieldedRouter",
    "ShieldedRouterParams",
    "build_shielded_router",
    "MODE_COMBINE",
    "MODE_DUP",
    "CombinerEndpoint",
    "EndpointStats",
    "branch_marker",
    "Hub",
    "DivergenceWatcher",
    "SamplingEndpoint",
    "build_sampling_chain",
    "deterministic_sample",
    "BitExactPolicy",
    "ComparePolicy",
    "HashPolicy",
    "HeaderOnlyPolicy",
    "MaskedPolicy",
    "mask_src_mac_policy",
    "strip_vlan_policy",
    "VirtualCombiner",
    "VirtualEgress",
    "VirtualIngress",
    "provision_virtual_combiner",
    "VoteBook",
    "VoteEntry",
    "VoteOutcome",
]
