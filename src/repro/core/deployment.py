"""Deploying NetCo inside an existing topology: the *shielded router*.

Figure 2 of the paper replaces one router ``r`` in a network by a hub,
``k`` redundant routers and a compare.  :class:`ShieldedRouter` is that
replacement as a drop-in unit for an n-port router:

* a single trusted endpoint carries all of ``r``'s original external
  links (it plays hub on ingress and egress-forwarder on release);
* each replica ``r_i`` is a full OpenFlow switch wired to the endpoint
  with **one link per original port**, so the port a copy comes back on
  encodes the replica's *claimed egress* — the majority vote is over
  ``(packet bytes, claimed egress port)``, i.e. the routing decision is
  voted on, not just the payload;
* the compare runs on a dedicated host attached in-band, exactly like
  ``h3`` in the prototype.

The Section VI datacenter case study shields the malicious aggregation
switch with this unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.alarms import AlarmSink
from repro.core.combiner import CompareHost
from repro.core.compare import CompareConfig, CompareCore
from repro.core.endpoint import MODE_COMBINE, CombinerEndpoint
from repro.net.addresses import MacAddress
from repro.net.node import NetworkError, Node
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import CpuResource


@dataclass
class ShieldedRouterParams:
    """Tunables for a shielded router deployment."""

    k: int = 3
    link_rate_bps: float = 1e9
    link_delay: float = 2e-6
    queue_capacity: int = 100
    router_proc_time: float = 5e-6
    router_proc_per_byte: float = 2.5e-9
    endpoint_proc_time: float = 1e-6
    endpoint_proc_per_byte: float = 2e-9
    compare_link_rate_bps: float = 1e9
    compare_link_delay: float = 5e-6
    compare: CompareConfig = field(default_factory=CompareConfig)
    shared_cpu: Optional[CpuResource] = None


class ShieldedRouter:
    """A NetCo replacement for one n-port router.

    Build with :func:`build_shielded_router`, then wire each neighbour of
    the original router to an external port via :meth:`attach_neighbor`,
    and program routes with :meth:`install_mac_route`.
    """

    def __init__(
        self,
        network: Network,
        name: str,
        endpoint: CombinerEndpoint,
        replicas: List[OpenFlowSwitch],
        compare_host: CompareHost,
        compare_core: CompareCore,
        alarms: AlarmSink,
        params: ShieldedRouterParams,
    ) -> None:
        self.network = network
        self.name = name
        self.endpoint = endpoint
        self.replicas = replicas
        self.compare_host = compare_host
        self.compare_core = compare_core
        self.alarms = alarms
        self.params = params
        # external port number -> (replica index -> replica-side port no)
        self._replica_port_for_claim: Dict[int, Dict[int, int]] = {}
        self._next_external = 0

    @property
    def k(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    def attach_neighbor(
        self,
        neighbor: Node,
        rate_bps: Optional[float] = None,
        delay: Optional[float] = None,
    ) -> int:
        """Wire ``neighbor`` to a fresh external port (as it was wired to
        the original router).  Returns the external port number.

        For each replica, a parallel branch link is created so the
        replica can claim this egress.
        """
        params = self.params
        link = self.network.connect(
            self.endpoint,
            neighbor,
            rate_bps=rate_bps if rate_bps is not None else params.link_rate_bps,
            delay=delay if delay is not None else params.link_delay,
            queue_capacity=params.queue_capacity,
        )
        external_port = link.a.port_no
        self._next_external += 1
        claim_map: Dict[int, int] = {}
        for i, replica in enumerate(self.replicas):
            branch_link = self.network.connect(
                self.endpoint,
                replica,
                rate_bps=params.link_rate_bps,
                delay=params.link_delay,
                queue_capacity=params.queue_capacity,
            )
            self.endpoint.assign_branch(
                branch_link.a.port_no, branch=i, claim=external_port
            )
            claim_map[i] = branch_link.b.port_no
        self._replica_port_for_claim[external_port] = claim_map
        return external_port

    def external_port_of(self, neighbor_name: str) -> int:
        return self.network.port_no_between(self.endpoint.name, neighbor_name)

    # ------------------------------------------------------------------
    def install_mac_route(self, mac: MacAddress, egress_external_port: int) -> None:
        """Program every replica to route ``mac`` toward the given
        original egress port (each replica outputs on its own link that
        claims that egress)."""
        claim_map = self._replica_port_for_claim.get(egress_external_port)
        if claim_map is None:
            raise NetworkError(
                f"{self.name}: external port {egress_external_port} not attached"
            )
        for i, replica in enumerate(self.replicas):
            replica.install(
                Match(dl_dst=MacAddress(mac)),
                [Output(claim_map[i])],
                priority=10,
            )

    def replica(self, index: int) -> OpenFlowSwitch:
        return self.replicas[index]


def build_shielded_router(
    network: Network,
    name: str,
    params: Optional[ShieldedRouterParams] = None,
    alarm_sink: Optional[AlarmSink] = None,
) -> ShieldedRouter:
    """Create the endpoint, replicas and compare of a shielded router.

    Neighbours are attached afterwards with :meth:`ShieldedRouter.
    attach_neighbor`.
    """
    params = params or ShieldedRouterParams()
    if params.k < 1:
        raise NetworkError(f"shielded router needs k >= 1, got {params.k}")
    sim, trace = network.sim, network.trace
    alarms = alarm_sink or AlarmSink(trace)

    endpoint = CombinerEndpoint(
        sim,
        f"{name}_e",
        trace_bus=trace,
        proc_time=params.endpoint_proc_time,
        proc_per_byte=params.endpoint_proc_per_byte,
        cpu=params.shared_cpu,
        mode=MODE_COMBINE,
        alarm_sink=alarms,
    )
    network.add_node(endpoint)

    replicas: List[OpenFlowSwitch] = []
    for i in range(params.k):
        replica = OpenFlowSwitch(
            sim,
            f"{name}_r{i}",
            trace_bus=trace,
            proc_time=params.router_proc_time,
            proc_per_byte=params.router_proc_per_byte,
            cpu=params.shared_cpu,
        )
        network.add_node(replica)
        replicas.append(replica)

    config = replace(params.compare, k=params.k)
    core = CompareCore(
        sim,
        config,
        name=f"{name}_compare",
        alarm_sink=alarms,
        trace_bus=trace,
    )
    compare_host = CompareHost(sim, f"{name}_h3", core, trace_bus=trace)
    network.add_node(compare_host)
    network.connect(
        endpoint,
        compare_host,
        rate_bps=params.compare_link_rate_bps,
        delay=params.compare_link_delay,
        queue_capacity=params.queue_capacity,
    )
    endpoint.assign_compare_port(
        network.port_no_between(endpoint.name, compare_host.name)
    )
    compare_host.register_endpoint(
        network.port_no_between(compare_host.name, endpoint.name), endpoint
    )

    return ShieldedRouter(
        network=network,
        name=name,
        endpoint=endpoint,
        replicas=replicas,
        compare_host=compare_host,
        compare_core=core,
        alarms=alarms,
        params=params,
    )
