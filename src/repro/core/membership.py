"""The quarantine / probation / re-admission state machine.

Extracted from :class:`~repro.core.compare.CompareCore` so that the
control-plane voter (:class:`~repro.ctrl.compare.ControlCompare`) runs
the *same* self-healing code over its own :class:`~repro.core.votes.
VoteBook` instead of a near-copy: one bundle-membership implementation,
two trusted elements.

A host class mixes this in and provides:

* ``sim`` — the simulator (for ``sim.now``);
* ``config`` — with ``effective_quorum()``, ``probation_clean_target``
  and ``min_active_branches``;
* ``book`` — the :class:`VoteBook` whose quorum the mixin retunes;
* ``branch_ids`` — the full bundle membership (list of branch ints);
* ``stats`` — with ``quarantines``, ``readmissions`` and
  ``probation_resets`` counters;
* ``alarms`` — an :class:`~repro.core.alarms.AlarmSink`;
* ``name`` — the alarm source string;
* ``_miss_counts`` / ``_unavailable`` / ``_last_clean_vote`` — the
  liveness bookkeeping dicts the mixin heals on re-admission;
* ``_do_release(entry, now)`` — forwards an entry's winning copy (a
  quorum shrink can complete votes that were already pending);
* ``_trace(topic, **data)`` — trace emission.

``trace_prefix`` picks the trace-topic namespace (``compare.*`` for the
data plane, ``ctrl.*`` for the control plane); alarm kinds are shared.

The mixin also exposes the probation window to observers:
``add_membership_listener(fn)`` calls ``fn(event, branch, now)`` on each
``"quarantine"`` / ``"readmit"`` transition, and ``probation_status``
reports a quarantined branch's clean-copy progress — the hooks the
adversary strategy library (``repro.adversary.strategies``) keys off.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.alarms import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
)

__all__ = ["QuorumMembershipMixin"]


class QuorumMembershipMixin:
    """Branch quarantine, dynamic quorum and probation re-admission."""

    #: trace-topic namespace for membership transitions
    trace_prefix = "compare"

    def _init_membership(self) -> None:
        """Initialise the membership dicts (call from ``__init__``)."""
        # branch -> quarantined-at time, and the running count of
        # consecutive clean probation copies
        self._quarantined: Dict[int, float] = {}
        self._probation_clean: Dict[int, int] = {}
        # observers of membership transitions, called with
        # ("quarantine" | "readmit", branch, now)
        self._membership_listeners: List[Callable[[str, int, float], None]] = []

    def add_membership_listener(self, fn: Callable[[str, int, float], None]) -> None:
        """Observe quarantine / re-admission transitions."""
        self._membership_listeners.append(fn)

    def remove_membership_listener(self, fn: Callable[[str, int, float], None]) -> None:
        if fn in self._membership_listeners:
            self._membership_listeners.remove(fn)

    def _notify_membership(self, event: str, branch: int, now: float) -> None:
        for fn in list(self._membership_listeners):
            fn(event, branch, now)

    def probation_status(self, branch: int) -> Optional[Tuple[int, int]]:
        """``(clean_copies_so_far, target)`` while quarantined, else None."""
        if branch not in self._quarantined:
            return None
        return (
            self._probation_clean.get(branch, 0),
            self.config.probation_clean_target,
        )

    # ------------------------------------------------------------------
    def active_branches(self) -> List[int]:
        """Branches currently counted toward the quorum."""
        return [b for b in self.branch_ids if b not in self._quarantined]

    def is_quarantined(self, branch: int) -> bool:
        return branch in self._quarantined

    def quarantined_branches(self) -> List[int]:
        return sorted(self._quarantined)

    def quarantine_branch(self, branch: int, reason: str = "operator") -> bool:
        """Take ``branch`` out of the vote (Section V's "take the faulty
        router out of service", automated).

        Its copies stop counting toward the quorum and are tracked on
        probation instead; the quorum is recomputed over the surviving
        active branches, so a k=3 bundle degrades to a 2-of-2 vote —
        forwarding continues but nothing is masked any more, which the
        alarm records as ``masking_margin``.  After
        ``probation_clean_target`` consecutive clean duplicates the
        branch is re-admitted automatically.  Refused (returns False)
        when it would leave fewer than ``min_active_branches`` active.
        """
        if branch not in self.branch_ids or branch in self._quarantined:
            return False
        if len(self.active_branches()) - 1 < self.config.min_active_branches:
            self._trace(
                f"{self.trace_prefix}.quarantine_refused",
                branch=branch,
                active=len(self.active_branches()),
            )
            return False
        now = self.sim.now
        self._quarantined[branch] = now
        self._probation_clean[branch] = 0
        self.stats.quarantines += 1
        self._apply_dynamic_quorum()
        active = len(self.active_branches())
        self.alarms.raise_alarm(
            now,
            ALARM_BRANCH_QUARANTINED,
            self.name,
            branch=branch,
            reason=reason,
            active_branches=active,
            quorum=self.book.quorum,
            masking_margin=active - self.book.quorum,
        )
        self._trace(
            f"{self.trace_prefix}.quarantine",
            branch=branch,
            reason=reason,
            active=active,
            quorum=self.book.quorum,
        )
        self._notify_membership("quarantine", branch, now)
        return True

    def readmit_branch(self, branch: int, reason: str = "probation_complete") -> bool:
        """Return a quarantined branch to the vote (probation served)."""
        since = self._quarantined.pop(branch, None)
        if since is None:
            return False
        clean = self._probation_clean.pop(branch, 0)
        now = self.sim.now
        self._miss_counts[branch] = 0
        self._unavailable[branch] = False
        self._last_clean_vote[branch] = now
        self.stats.readmissions += 1
        self._apply_dynamic_quorum()
        self.alarms.raise_alarm(
            now,
            ALARM_BRANCH_READMITTED,
            self.name,
            branch=branch,
            reason=reason,
            clean_copies=clean,
            quarantined_for=now - since,
            active_branches=len(self.active_branches()),
            quorum=self.book.quorum,
        )
        self._trace(
            f"{self.trace_prefix}.readmit",
            branch=branch,
            clean=clean,
            quorum=self.book.quorum,
        )
        self._notify_membership("readmit", branch, now)
        return True

    def _apply_dynamic_quorum(self) -> None:
        """Recompute the vote threshold over the active bundle.

        The configured quorum applies to the full bundle; while branches
        are quarantined it is capped at a strict majority of the active
        set so forwarding survives the shrink.  A shrink can complete
        votes that were already pending.
        """
        quorum = self.config.effective_quorum()
        if self._quarantined:
            quorum = min(quorum, len(self.active_branches()) // 2 + 1)
        quorum = max(1, quorum)
        if quorum == self.book.quorum:
            return
        shrank = quorum < self.book.quorum
        self.book.quorum = quorum
        if shrank:
            now = self.sim.now
            for entry in self.book.pending():
                if entry.distinct_branches >= quorum:
                    entry.released = True
                    entry.released_at = now
                    self._do_release(entry, now)

    def _note_probation_clean(self, branch: int) -> None:
        if branch not in self._quarantined:
            return
        count = self._probation_clean.get(branch, 0) + 1
        self._probation_clean[branch] = count
        if count >= self.config.probation_clean_target:
            self.readmit_branch(branch)

    def _reset_probation(self, branch: int) -> None:
        if branch not in self._quarantined:
            return
        if self._probation_clean.get(branch):
            self._probation_clean[branch] = 0
            self.stats.probation_resets += 1
            self._trace(f"{self.trace_prefix}.probation_reset", branch=branch)
