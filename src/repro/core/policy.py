"""Comparison policies for the NetCo compare element.

Section III of the paper: "depending on the threat model, packets may be
compared bit-by-bit, or just based on the header, or hashing can be
used."  A policy reduces a packet to a *vote key*: two copies belong to
the same vote iff their keys are equal.

The key must be insensitive to transformations a *benign* path legitimately
applies (e.g. the per-branch VLAN tunnel label in the virtualized NetCo)
and sensitive to everything an adversary could abuse.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.net.packet import Packet


class ComparePolicy:
    """Base class: maps a packet to its vote key (bytes)."""

    #: human-readable policy name (used in reports and ablations)
    name = "abstract"

    def key(self, packet: Packet) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BitExactPolicy(ComparePolicy):
    """Vote on the full serialised frame — the paper's ``memcmp``.

    Strongest policy: any modification (header or payload) by a minority
    of routers is outvoted.
    """

    name = "bit-exact"

    def key(self, packet: Packet) -> bytes:
        return packet.to_bytes()


class HeaderOnlyPolicy(ComparePolicy):
    """Vote on the L2 + L3 headers only.

    Cheaper; detects rerouting and address/VLAN rewriting, but a
    payload-only modification by a single router wins the vote
    undetected (transport checksums cover the payload, so they are
    excluded too).  Included because the paper explicitly names header
    comparison as an option — the ablation benchmark quantifies the
    trade-off.
    """

    name = "header-only"

    def key(self, packet: Packet) -> bytes:
        parts = [packet.eth.to_bytes()]
        if packet.vlan is not None:
            parts.append(packet.vlan.to_bytes(packet.eth.ethertype))
        if packet.ip is not None:
            # IP header includes total_length, so length tampering is
            # still caught; the payload bytes themselves are not.  Work
            # on a copy: Ipv4.to_bytes records the length it was given.
            from repro.net.packet import ETHERNET_HEADER_LEN, IPV4_HEADER_LEN, VLAN_TAG_LEN

            overhead = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN
            if packet.vlan is not None:
                overhead += VLAN_TAG_LEN
            parts.append(packet.ip.copy().to_bytes(packet.wire_len - overhead))
        return b"".join(parts)


class HashPolicy(ComparePolicy):
    """Vote on a cryptographic digest of the full frame.

    Same detection power as bit-exact but constant-size cache entries
    (the paper suggests hashing to shrink compare state).
    """

    name = "hash"

    def __init__(self, algorithm: str = "sha256") -> None:
        self._algorithm = algorithm
        # Fail fast on unknown algorithms rather than on first packet.
        hashlib.new(algorithm)

    def key(self, packet: Packet) -> bytes:
        digest = hashlib.new(self._algorithm)
        digest.update(packet.to_bytes())
        return digest.digest()

    def __repr__(self) -> str:
        return f"HashPolicy({self._algorithm!r})"


class MaskedPolicy(ComparePolicy):
    """Wrap another policy, normalising the packet before keying.

    Used where a benign mechanism legitimately differentiates the copies:
    the virtualized NetCo tunnels copies over per-path VLAN tags, so the
    egress compare strips the tag before voting; source-marked combiner
    endpoints rewrite ``dl_src`` per branch, so the compare masks it.
    """

    name = "masked"

    def __init__(
        self,
        inner: ComparePolicy,
        normalise: Callable[[Packet], Packet],
        name: str = "masked",
    ) -> None:
        self._inner = inner
        self._normalise = normalise
        self.name = name

    def key(self, packet: Packet) -> bytes:
        return self._inner.key(self._normalise(packet))

    def __repr__(self) -> str:
        return f"MaskedPolicy({self._inner!r}, name={self.name!r})"


def strip_vlan_policy(inner: ComparePolicy) -> MaskedPolicy:
    """A policy that ignores the VLAN tag (virtualized NetCo tunnels)."""

    def normalise(packet: Packet) -> Packet:
        if packet.vlan is None:
            return packet
        stripped = packet.copy()
        stripped.vlan = None
        return stripped

    return MaskedPolicy(inner, normalise, name=f"{inner.name}+strip-vlan")


def mask_src_mac_policy(inner: ComparePolicy) -> MaskedPolicy:
    """A policy that ignores ``dl_src`` (source-marked endpoints)."""
    from repro.net.addresses import MacAddress

    zero = MacAddress(0)

    def normalise(packet: Packet) -> Packet:
        masked = packet.copy()
        masked.eth.src = zero
        return masked

    return MaskedPolicy(inner, normalise, name=f"{inner.name}+mask-src")
