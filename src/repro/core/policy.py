"""Comparison policies for the NetCo compare element.

Section III of the paper: "depending on the threat model, packets may be
compared bit-by-bit, or just based on the header, or hashing can be
used."  A policy reduces a packet to a *vote key*: two copies belong to
the same vote iff their keys are equal.

The key must be insensitive to transformations a *benign* path legitimately
applies (e.g. the per-branch VLAN tunnel label in the virtualized NetCo)
and sensitive to everything an adversary could abuse.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional

from repro.net.addresses import MacAddress
from repro.net.packet import (
    ETHERNET_HEADER_LEN,
    IPV4_HEADER_LEN,
    VLAN_TAG_LEN,
    Packet,
)


class ComparePolicy:
    """Base class: maps a packet to its vote key (bytes)."""

    #: human-readable policy name (used in reports and ablations)
    name = "abstract"

    def key(self, packet: Packet) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BitExactPolicy(ComparePolicy):
    """Vote on the full serialised frame — the paper's ``memcmp``.

    Strongest policy: any modification (header or payload) by a minority
    of routers is outvoted.
    """

    name = "bit-exact"

    def key(self, packet: Packet) -> bytes:
        return packet.to_bytes()


class HeaderOnlyPolicy(ComparePolicy):
    """Vote on the L2 + L3 headers only.

    Cheaper; detects rerouting and address/VLAN rewriting, but a
    payload-only modification by a single router wins the vote
    undetected (transport checksums cover the payload, so they are
    excluded too).  Included because the paper explicitly names header
    comparison as an option — the ablation benchmark quantifies the
    trade-off.
    """

    name = "header-only"

    def key(self, packet: Packet) -> bytes:
        wire = packet.wire_cache()
        if wire is not None:
            # The key is a pure re-slicing of the frame: Ethernet header
            # with the *inner* ethertype, VLAN tag, then the IP header
            # exactly as serialised (same total_length, same checksum).
            _eth, vlan, ip, _l4, _payload = packet.fields()
            if vlan is None:
                return wire[:34] if ip is not None else wire[:ETHERNET_HEADER_LEN]
            if ip is not None:
                return wire[:12] + wire[16:18] + wire[14:38]
            return wire[:12] + wire[16:18] + wire[14:18]
        eth, vlan, ip, _l4, _payload = packet.fields()
        parts = [eth.to_bytes()]
        if vlan is not None:
            parts.append(vlan.to_bytes(eth.ethertype))
        if ip is not None:
            # IP header includes total_length, so length tampering is
            # still caught; the payload bytes themselves are not.  Work
            # on a copy: Ipv4.to_bytes records the length it was given.
            overhead = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN
            if vlan is not None:
                overhead += VLAN_TAG_LEN
            parts.append(ip.copy().to_bytes(packet.wire_len - overhead))
        return b"".join(parts)


class HashPolicy(ComparePolicy):
    """Vote on a cryptographic digest of the full frame.

    Same detection power as bit-exact but constant-size cache entries
    (the paper suggests hashing to shrink compare state).
    """

    name = "hash"

    def __init__(self, algorithm: str = "sha256") -> None:
        self._algorithm = algorithm
        # Fail fast on unknown algorithms rather than on first packet.
        hashlib.new(algorithm)

    def key(self, packet: Packet) -> bytes:
        digest = hashlib.new(self._algorithm)
        digest.update(packet.to_bytes())
        return digest.digest()

    def __repr__(self) -> str:
        return f"HashPolicy({self._algorithm!r})"


class MaskedPolicy(ComparePolicy):
    """Wrap another policy, normalising the packet before keying.

    Used where a benign mechanism legitimately differentiates the copies:
    the virtualized NetCo tunnels copies over per-path VLAN tags, so the
    egress compare strips the tag before voting; source-marked combiner
    endpoints rewrite ``dl_src`` per branch, so the compare masks it.
    """

    name = "masked"

    def __init__(
        self,
        inner: ComparePolicy,
        normalise: Callable[[Packet], Packet],
        name: str = "masked",
        wire_transform: Optional[Callable[[Packet, bytes], bytes]] = None,
    ) -> None:
        self._inner = inner
        self._normalise = normalise
        self.name = name
        # A wire_transform maps the packet's cached frame straight to the
        # key the normalise+inner pair would produce.  Only sound when the
        # inner policy votes on raw frame bytes.
        self._wire_transform = (
            wire_transform if isinstance(inner, BitExactPolicy) else None
        )

    def key(self, packet: Packet) -> bytes:
        if self._wire_transform is not None:
            wire = packet.wire_cache()
            if wire is not None:
                return self._wire_transform(packet, wire)
        return self._inner.key(self._normalise(packet))

    def __repr__(self) -> str:
        return f"MaskedPolicy({self._inner!r}, name={self.name!r})"


def strip_vlan_policy(inner: ComparePolicy) -> MaskedPolicy:
    """A policy that ignores the VLAN tag (virtualized NetCo tunnels)."""

    def normalise(packet: Packet) -> Packet:
        if packet.vlan is None:
            return packet
        stripped = packet.copy()
        stripped.vlan = None
        return stripped

    def wire_transform(packet: Packet, wire: bytes) -> bytes:
        if packet.fields()[1] is None:  # untagged: key is the frame itself
            return wire
        # Drop the 0x8100 ethertype + TCI; the inner ethertype and the
        # rest of the frame (incl. checksums, which do not cover L2)
        # are already the stripped packet's exact serialisation.
        return wire[:12] + wire[16:]

    return MaskedPolicy(inner, normalise, name=f"{inner.name}+strip-vlan",
                        wire_transform=wire_transform)


def mask_src_mac_policy(inner: ComparePolicy) -> MaskedPolicy:
    """A policy that ignores ``dl_src`` (source-marked endpoints)."""
    zero = MacAddress(0)
    zero_bytes = zero.to_bytes()

    def normalise(packet: Packet) -> Packet:
        masked = packet.copy()
        masked.eth.src = zero
        return masked

    def wire_transform(packet: Packet, wire: bytes) -> bytes:
        return wire[:6] + zero_bytes + wire[12:]

    return MaskedPolicy(inner, normalise, name=f"{inner.name}+mask-src",
                        wire_transform=wire_transform)
