"""Alarm reporting for the NetCo compare element.

The paper (Section IV) describes two operator-facing signals:

* a router that stops delivering copies of consecutive packets is assumed
  unavailable and "raises an alarm to the network administrator";
* a router flooding one ingress port triggers the DoS mitigation (the
  compare advises the switch to block the port).

:class:`AlarmSink` collects these as structured records and mirrors them
onto the trace bus so tests and operators can observe them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim import TraceBus

ALARM_ROUTER_UNAVAILABLE = "router_unavailable"
ALARM_DOS_SUSPECTED = "dos_suspected"
ALARM_SINGLE_SOURCE_PACKET = "single_source_packet"
ALARM_SPOOFED_BRANCH = "spoofed_branch"
ALARM_MINORITY_DIVERGENCE = "minority_divergence"
#: a branch was taken out of the vote (self-healing; Section V's
#: "take the faulty router out of service", automated)
ALARM_BRANCH_QUARANTINED = "branch_quarantined"
#: a quarantined branch completed its probation window and rejoined
ALARM_BRANCH_READMITTED = "branch_readmitted"


@dataclass(frozen=True)
class Alarm:
    """One operator alarm raised by a trusted component."""

    time: float
    kind: str
    source: str
    branch: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        branch = f" branch={self.branch}" if self.branch is not None else ""
        return f"[{self.time:.6f}] {self.kind} from {self.source}{branch} {self.details}"


class AlarmSink:
    """Collects alarms; optionally mirrors them to a trace bus."""

    def __init__(self, trace_bus: Optional[TraceBus] = None) -> None:
        self._trace_bus = trace_bus
        self.alarms: List[Alarm] = []

    def raise_alarm(
        self,
        time: float,
        kind: str,
        source: str,
        branch: Optional[int] = None,
        **details: Any,
    ) -> Alarm:
        alarm = Alarm(time=time, kind=kind, source=source, branch=branch, details=details)
        self.alarms.append(alarm)
        if self._trace_bus is not None:
            self._trace_bus.emit(time, "alarm", source, kind=kind, branch=branch, **details)
        return alarm

    def of_kind(self, kind: str) -> List[Alarm]:
        return [a for a in self.alarms if a.kind == kind]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.alarms)
        return len(self.of_kind(kind))

    def clear(self) -> None:
        self.alarms.clear()
