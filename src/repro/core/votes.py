"""Majority-vote bookkeeping for the compare element.

The paper's compare caches each distinct packet together with the set of
ingress ports it was received on, and releases a single copy "once a
packet has been received on the majority of the possible ingress ports".
:class:`VoteBook` is that cache as a pure data structure (no simulator
dependencies), which keeps it unit- and property-testable in isolation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional

from repro.net.packet import Packet


class VoteEntry:
    """State for one distinct packet (one vote key)."""

    __slots__ = (
        "key",
        "packet",
        "first_seen",
        "deadline",
        "branch_counts",
        "probation_counts",
        "released",
        "released_at",
        "claim",
    )

    def __init__(
        self,
        key: Hashable,
        packet: Packet,
        first_seen: float,
        deadline: float,
        claim: Optional[int] = None,
    ) -> None:
        self.key = key
        self.packet = packet
        self.first_seen = first_seen
        self.deadline = deadline
        self.branch_counts: Dict[int, int] = {}
        # Copies from quarantined branches: recorded (they prove the
        # branch is delivering again) but never counted toward quorum.
        self.probation_counts: Dict[int, int] = {}
        self.released = False
        self.released_at: Optional[float] = None
        self.claim = claim

    @property
    def distinct_branches(self) -> int:
        return len(self.branch_counts)

    def branches(self) -> List[int]:
        return sorted(self.branch_counts)

    def total_copies(self) -> int:
        return sum(self.branch_counts.values()) + sum(self.probation_counts.values())

    def missing_branches(self, all_branches: List[int]) -> List[int]:
        return [b for b in all_branches if b not in self.branch_counts]

    def __repr__(self) -> str:
        state = "released" if self.released else "pending"
        return (
            f"VoteEntry(branches={self.branches()}, copies={self.total_copies()}, "
            f"{state})"
        )


@dataclass(frozen=True)
class VoteOutcome:
    """Result of observing one packet copy."""

    entry: VoteEntry
    is_new_entry: bool
    is_branch_duplicate: bool  # same branch delivered this packet before
    newly_released: bool  # this copy completed the quorum
    late_copy: bool  # arrived after the entry was already released
    #: an unreleased entry whose deadline had passed when this copy
    #: arrived; it was evicted and this copy started a fresh vote — the
    #: bounded-waiting-time rule of Section IV, enforced strictly
    evicted_stale: Optional[VoteEntry] = None
    #: False when the copy came from a quarantined branch and was
    #: recorded on probation, outside the quorum count
    countable: bool = True


class VoteBook:
    """The compare cache: vote key -> :class:`VoteEntry` (insertion order).

    Entries persist until their deadline even after release (tombstones),
    both to ignore straggler copies — "if additional packets arrive later,
    they are ignored" — and to detect replay by a malicious router.
    """

    def __init__(self, quorum: int, timeout: float) -> None:
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.quorum = quorum
        self.timeout = timeout
        self._entries: "OrderedDict[Hashable, VoteEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[VoteEntry]:
        return self._entries.get(key)

    def entries(self) -> Iterator[VoteEntry]:
        return iter(list(self._entries.values()))

    # ------------------------------------------------------------------
    def observe(
        self,
        key: Hashable,
        branch: int,
        now: float,
        packet: Packet,
        claim: Optional[int] = None,
        countable: bool = True,
    ) -> VoteOutcome:
        """Record that ``branch`` delivered a copy keyed ``key``.

        ``countable=False`` records the copy on probation (a quarantined
        branch proving itself): it never advances the quorum and never
        triggers a release.

        Returns the outcome; the caller (the compare element) decides what
        to do about releases, duplicates and alarms.
        """
        entry = self._entries.get(key)
        evicted_stale: Optional[VoteEntry] = None
        if entry is not None and not entry.released and entry.deadline <= now:
            # The deadline passed before this copy arrived: the old vote
            # must not be completable any more (bounded waiting time).
            evicted_stale = entry
            del self._entries[key]
            entry = None
        is_new = entry is None
        if entry is None:
            entry = VoteEntry(
                key=key,
                packet=packet,
                first_seen=now,
                deadline=now + self.timeout,
                claim=claim,
            )
            self._entries[key] = entry
        late = entry.released
        if not countable:
            is_branch_duplicate = branch in entry.probation_counts
            entry.probation_counts[branch] = entry.probation_counts.get(branch, 0) + 1
            return VoteOutcome(
                entry=entry,
                is_new_entry=is_new,
                is_branch_duplicate=is_branch_duplicate,
                newly_released=False,
                late_copy=late,
                evicted_stale=evicted_stale,
                countable=False,
            )
        if not entry.branch_counts:
            # The entry may have been opened by a probation copy; the
            # released instance must come from a counted branch.
            entry.packet = packet
        is_branch_duplicate = branch in entry.branch_counts
        entry.branch_counts[branch] = entry.branch_counts.get(branch, 0) + 1
        newly_released = False
        if not entry.released and entry.distinct_branches >= self.quorum:
            entry.released = True
            entry.released_at = now
            newly_released = True
        return VoteOutcome(
            entry=entry,
            is_new_entry=is_new,
            is_branch_duplicate=is_branch_duplicate,
            newly_released=newly_released,
            late_copy=late,
            evicted_stale=evicted_stale,
        )

    # ------------------------------------------------------------------
    def pop_expired(self, now: float) -> List[VoteEntry]:
        """Remove and return every entry whose deadline has passed."""
        expired: List[VoteEntry] = []
        for key, entry in list(self._entries.items()):
            if entry.deadline <= now:
                expired.append(entry)
                del self._entries[key]
        return expired

    def evict_oldest(self, count: int) -> List[VoteEntry]:
        """Forcibly remove the ``count`` oldest entries (cache pressure)."""
        evicted: List[VoteEntry] = []
        for _ in range(min(count, len(self._entries))):
            _key, entry = self._entries.popitem(last=False)
            evicted.append(entry)
        return evicted

    def pending(self) -> List[VoteEntry]:
        """Entries that have not reached quorum (suspicious if they expire)."""
        return [e for e in self._entries.values() if not e.released]

    def released(self) -> List[VoteEntry]:
        return [e for e in self._entries.values() if e.released]

    def clear(self) -> None:
        self._entries.clear()
