"""The NetCo *hub*: a trusted, stateless packet multiplier.

Section IV: "The implementation of the hubs is simple and can be realized
in the datapath: the logic boils down to multiplying the packets, in a
stateless manner."

:class:`Hub` is that pure element: frames entering the upstream port are
copied to every downstream port; frames entering any downstream port are
merged out the upstream port.  It is used directly in the ``Dup3``/``Dup5``
evaluation scenarios (split without combine) and in ablations; the full
combiner endpoints (:mod:`repro.core.endpoint`) embed the same duplication
logic alongside the compare plumbing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.node import Node, Port
from repro.net.packet import Packet
from repro.sim import Simulator, TraceBus
from repro.transport import (
    ROLE_EGRESS,
    ROLE_FANOUT,
    DesTransport,
    SessionSpec,
    Transport,
)

UPSTREAM_PORT = 1


class Hub(Node):
    """Stateless multiplier: port 1 is upstream, every other port a branch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace_bus: Optional[TraceBus] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self._branch_ports: Optional[List[Port]] = None
        self._fan_sessions: Optional[List] = None
        self._merge_session = None
        super().__init__(sim, name, trace_bus)
        self.transport = transport or DesTransport(
            sim, trace_bus, name=f"{name}.transport"
        )
        self.add_port(UPSTREAM_PORT)
        self.duplicated = 0
        self.merged = 0

    def add_port(self, port_no: Optional[int] = None) -> Port:
        self._branch_ports = None  # topology changed; re-derive lazily
        self._fan_sessions = None
        self._merge_session = None
        return super().add_port(port_no)

    def add_branch_port(self) -> Port:
        """Add one downstream branch port."""
        return self.add_port()

    @property
    def branch_count(self) -> int:
        return len(self.ports) - 1

    def _branches(self) -> List[Port]:
        """Downstream ports in port order (cached; wiring checked per use)."""
        ports = self._branch_ports
        if ports is None:
            ports = [
                port
                for port_no, port in sorted(self.ports.items())
                if port_no != UPSTREAM_PORT
            ]
            self._branch_ports = ports
        return ports

    def receive_batch_packet(self, batch, i: int, in_port: Port) -> None:
        """:meth:`receive` for one train packet: the fan-out shares the
        batch across branches (nothing downstream mutates it), so no
        per-branch copies are materialised."""
        now = self.sim._now
        if in_port.port_no == UPSTREAM_PORT:
            for port in self._branches():
                if port.is_wired:
                    port.send_batch_packet(batch, i, now)
                    self.duplicated += 1
        else:
            upstream = self.ports[UPSTREAM_PORT]
            if upstream.is_wired:
                upstream.send_batch_packet(batch, i, now)
                self.merged += 1

    def _sessions(self) -> List:
        """One fanout session per branch port, in port order (cached;
        wiring still checked per use, as :meth:`_branches` promises)."""
        sessions = self._fan_sessions
        if sessions is None:
            sessions = [
                self.transport.session(
                    SessionSpec(self.name, ROLE_FANOUT, branch), port=port
                )
                for branch, port in enumerate(self._branches())
            ]
            self._fan_sessions = sessions
        return sessions

    def receive(self, packet: Packet, in_port: Port) -> None:
        if in_port.port_no == UPSTREAM_PORT:
            fanout = 0
            for session in self._sessions():
                if session.port.is_wired:
                    session.send(packet.copy())
                    self.duplicated += 1
                    fanout += 1
            if packet.trace_id is not None:
                self.trace("hub.dup", trace=packet.trace_id, fanout=fanout)
        else:
            upstream = self.ports[UPSTREAM_PORT]
            if upstream.is_wired:
                session = self._merge_session
                if session is None:
                    session = self.transport.session(
                        SessionSpec(self.name, ROLE_EGRESS, UPSTREAM_PORT),
                        port=upstream,
                    )
                    self._merge_session = session
                session.send(packet.copy())
                self.merged += 1
