"""Combiner assembly: wiring hubs, untrusted routers and the compare.

Two builders live here:

* :func:`build_combiner_chain` — the Figure 3 arrangement: two trusted
  endpoints (``s1``, ``s2``) bracketing ``k`` untrusted routers in a
  parallel circuit, with a dedicated compare host (``h3``) attached
  in-band to both endpoints.  This is the unit the paper's performance
  evaluation measures (Central3/Central5/Dup3/Dup5/Linespeed are all
  parameterisations of it).

* :class:`CompareHost` — the trusted server running the compare module,
  attached to the data plane like the paper's C process: packets reach it
  over real links (so the compare link's bandwidth and latency cost is
  modelled), carrying the collecting endpoint's branch tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.alarms import AlarmSink
from repro.core.compare import CompareConfig, CompareContext, CompareCore
from repro.core.endpoint import MODE_COMBINE, MODE_DUP, CombinerEndpoint
from repro.net.addresses import MacAddress
from repro.net.node import NetworkError, Node, Port
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import CpuResource, Simulator, TraceBus
from repro.transport import (
    ROLE_COLLECT,
    ROLE_RELEASE,
    DesTransport,
    SessionSpec,
    Transport,
)
from repro.transport.des import read_collect_meta


class CompareHost(Node):
    """The dedicated trusted server (``h3``) running the compare module.

    Each wired port is registered against the collecting endpoint at the
    other end; packets arriving there carry the branch tag the endpoint
    attached, and releases travel back out the same port.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        core: CompareCore,
        trace_bus: Optional[TraceBus] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        super().__init__(sim, name, trace_bus)
        self.core = core
        self.transport = transport or DesTransport(
            sim, trace_bus, name=f"{name}.transport"
        )
        self._contexts: Dict[int, CompareContext] = {}
        self._collect_by_port: Dict[int, object] = {}

    def register_endpoint(self, port_no: int, endpoint: CombinerEndpoint) -> None:
        """Associate a local port with the endpoint it serves."""
        port = self.port(port_no)
        # Releases travel back out the same port; the release-role session
        # re-tags the copy with the claim (egress decision) only — the
        # branch tag is spent once the vote resolves.
        release = self.transport.session(
            SessionSpec(endpoint.name, ROLE_RELEASE), port=port
        )
        context = CompareContext(
            scope=endpoint.name,
            release=lambda packet: release.send(
                packet, claim=(packet.meta or {}).get("claim")
            ),
            block_branch=endpoint.block_branch_ingress,
        )
        self._contexts[port_no] = context
        collect = self.transport.session(
            SessionSpec(endpoint.name, ROLE_COLLECT), port=port
        )
        collect.set_receiver(
            lambda packet, meta, context=context: self.core.submit(
                packet, meta["branch"], context, claim=meta.get("claim")
            )
        )
        self._collect_by_port[port_no] = collect

    def receive(self, packet: Packet, in_port: Port) -> None:
        session = self._collect_by_port.get(in_port.port_no)
        if session is None:
            self.trace("compare_host.unregistered_port", port=in_port.port_no)
            return
        meta = read_collect_meta(packet)
        if meta.get("branch") is None:
            self.trace("compare_host.untagged_packet", port=in_port.port_no)
            return
        session.deliver(packet, meta)


@dataclass
class CombinerChainParams:
    """All tunables of a Figure 3 combiner chain.

    The defaults reproduce the calibrated testbed of the performance
    benchmarks; see ``repro.scenarios.testbed`` for the per-scenario
    values and DESIGN.md for the calibration rationale.
    """

    k: int = 3
    mode: str = MODE_COMBINE  # 'combine' (CentralK) or 'dup' (DupK)
    link_rate_bps: float = 1e9
    link_delay: float = 2e-6
    queue_capacity: int = 100
    router_proc_time: float = 6e-6
    router_proc_per_byte: float = 0.0
    endpoint_proc_time: float = 1e-6
    endpoint_proc_per_byte: float = 3e-9
    #: run every switch datapath (endpoints + untrusted routers) on one
    #: shared CPU, as Mininet on a single machine does
    shared_cpu: bool = True
    #: per-switch bound on packets awaiting datapath service
    switch_service_queue: int = 64
    compare_link_rate_bps: float = 1e9
    compare_link_delay: float = 2e-6
    compare: CompareConfig = field(default_factory=CompareConfig)
    mark_sources: bool = False
    #: 'inline' = dedicated compare host on the data plane (the paper's
    #: C prototype); 'controller' = compare as a controller app (POX3).
    transport: str = "inline"
    controller_latency: float = 100e-6
    controller_proc_time: float = 120e-6

    def for_k(self, k: int) -> "CombinerChainParams":
        return replace(self, k=k, compare=replace(self.compare, k=k))


class CombinerChain:
    """Handles to every element of a built Figure 3 chain."""

    def __init__(
        self,
        network: Network,
        name: str,
        endpoint_a: CombinerEndpoint,
        endpoint_b: CombinerEndpoint,
        routers: List[OpenFlowSwitch],
        compare_host: Optional[CompareHost],
        compare_core: Optional[CompareCore],
        alarms: AlarmSink,
        controller=None,
    ) -> None:
        self.network = network
        self.name = name
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.routers = routers
        self.compare_host = compare_host
        self.compare_core = compare_core
        self.alarms = alarms
        self.controller = controller

    @property
    def k(self) -> int:
        return len(self.routers)

    @property
    def transport(self) -> Transport:
        """The collecting endpoints' transport (DES backend by default)."""
        return self.endpoint_a.transport

    @property
    def transports(self) -> Dict[str, Transport]:
        """Every node's transport, keyed by node name (one transport per
        node attachment, as with real sockets)."""
        nodes = [self.endpoint_a, self.endpoint_b, *self.routers]
        if self.compare_host is not None:
            nodes.append(self.compare_host)
        return {node.name: node.transport for node in nodes}

    def add_tracer(self, fn) -> None:
        """Observe every transport message anywhere in the chain."""
        for transport in self.transports.values():
            transport.add_tracer(fn)

    def install_mac_route(self, mac: MacAddress, toward: str) -> None:
        """Program every untrusted router to send ``mac`` toward endpoint
        'a' or 'b' (the paper routes on MAC destination only)."""
        if toward not in ("a", "b"):
            raise ValueError(f"toward must be 'a' or 'b', got {toward!r}")
        endpoint = self.endpoint_a if toward == "a" else self.endpoint_b
        for router in self.routers:
            out_port = self.network.port_no_between(router.name, endpoint.name)
            router.install(Match(dl_dst=mac), [Output(out_port)], priority=10)

    def router(self, index: int) -> OpenFlowSwitch:
        return self.routers[index]


def build_combiner_chain(
    network: Network,
    name: str,
    params: CombinerChainParams,
    alarm_sink: Optional[AlarmSink] = None,
) -> CombinerChain:
    """Build endpoints, routers, compare and internal wiring (Figure 3).

    External hosts are attached afterwards with ``network.connect(host,
    chain.endpoint_a)`` — any endpoint port that is not a branch or the
    compare attachment is treated as external.
    """
    if params.k < 1:
        raise NetworkError(f"combiner needs at least one router, got k={params.k}")
    if params.mode not in (MODE_COMBINE, MODE_DUP):
        raise NetworkError(f"unknown combiner mode {params.mode!r}")
    sim, trace = network.sim, network.trace
    alarms = alarm_sink or AlarmSink(trace)
    cpu = CpuResource(f"{name}.cpu") if params.shared_cpu else None

    endpoint_a = CombinerEndpoint(
        sim,
        f"{name}_sA",
        trace_bus=trace,
        proc_time=params.endpoint_proc_time,
        proc_per_byte=params.endpoint_proc_per_byte,
        cpu=cpu,
        mode=params.mode,
        mark_sources=params.mark_sources,
        alarm_sink=alarms,
        service_queue_capacity=params.switch_service_queue,
    )
    endpoint_b = CombinerEndpoint(
        sim,
        f"{name}_sB",
        trace_bus=trace,
        proc_time=params.endpoint_proc_time,
        proc_per_byte=params.endpoint_proc_per_byte,
        cpu=cpu,
        mode=params.mode,
        mark_sources=params.mark_sources,
        alarm_sink=alarms,
        service_queue_capacity=params.switch_service_queue,
    )
    network.add_node(endpoint_a)
    network.add_node(endpoint_b)
    # Trusted endpoints share their address registry (they are jointly
    # administered and already share the compare host).
    endpoint_b.address_registry = endpoint_a.address_registry

    routers: List[OpenFlowSwitch] = []
    for i in range(params.k):
        router = OpenFlowSwitch(
            sim,
            f"{name}_r{i}",
            trace_bus=trace,
            proc_time=params.router_proc_time,
            proc_per_byte=params.router_proc_per_byte,
            cpu=cpu,
            service_queue_capacity=params.switch_service_queue,
        )
        network.add_node(router)
        routers.append(router)
        link_a = network.connect(
            endpoint_a,
            router,
            rate_bps=params.link_rate_bps,
            delay=params.link_delay,
            queue_capacity=params.queue_capacity,
        )
        network.connect(
            router,
            endpoint_b,
            rate_bps=params.link_rate_bps,
            delay=params.link_delay,
            queue_capacity=params.queue_capacity,
        )
        endpoint_a.assign_branch(link_a.a.port_no, i)
        endpoint_b.assign_branch(
            network.port_no_between(endpoint_b.name, router.name), i
        )

    compare_host: Optional[CompareHost] = None
    compare_core: Optional[CompareCore] = None
    controller = None
    if params.mode == MODE_COMBINE:
        config = replace(params.compare, k=params.k)
        if params.mark_sources:
            # Branch markers legitimately differentiate the copies'
            # dl_src, so the compare votes on src-masked bytes.
            from repro.core.policy import mask_src_mac_policy

            config = replace(config, policy=mask_src_mac_policy(config.policy))
        compare_core = CompareCore(
            sim,
            config,
            name=f"{name}_compare",
            alarm_sink=alarms,
            trace_bus=trace,
        )
        if params.transport == "inline":
            compare_host = CompareHost(sim, f"{name}_h3", compare_core, trace_bus=trace)
            network.add_node(compare_host)
            for endpoint in (endpoint_a, endpoint_b):
                network.connect(
                    endpoint,
                    compare_host,
                    rate_bps=params.compare_link_rate_bps,
                    delay=params.compare_link_delay,
                    queue_capacity=params.queue_capacity,
                )
                endpoint.assign_compare_port(
                    network.port_no_between(endpoint.name, compare_host.name)
                )
                compare_host.register_endpoint(
                    network.port_no_between(compare_host.name, endpoint.name), endpoint
                )
        elif params.transport == "controller":
            # POX3: the compare lives in a controller application; copies
            # cross the OpenFlow control channel in both directions.
            from repro.apps.combiner_app import PoxStyleCompareApp

            controller = PoxStyleCompareApp(
                sim,
                compare_core,
                name=f"{name}_pox",
                trace_bus=trace,
                proc_time=params.controller_proc_time,
            )
            for endpoint in (endpoint_a, endpoint_b):
                endpoint.connect_controller(controller, latency=params.controller_latency)
                endpoint.attach_compare_controller(compare_core)
        else:
            raise NetworkError(f"unknown compare transport {params.transport!r}")

    return CombinerChain(
        network=network,
        name=name,
        endpoint_a=endpoint_a,
        endpoint_b=endpoint_b,
        routers=routers,
        compare_host=compare_host,
        compare_core=compare_core,
        alarms=alarms,
        controller=controller,
    )
