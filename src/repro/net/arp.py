"""ARP (RFC 826) for the simulated hosts.

The traffic generators pass destination MACs explicitly (as the paper's
static experiments do), but a realistic L2 fabric needs resolution:
broadcast who-has requests, unicast is-at replies, caching with timeout,
retries, and pending-packet queues.  :class:`ArpService` provides all of
that and hooks into :class:`~repro.net.host.Host` via ``attach_arp``.

ARP frames ride ``ETH_TYPE_ARP`` with a real RFC 826 payload encoding,
so they traverse switches, hubs and combiners like any other frame —
and get voted on by the compare like any other frame (a combiner
replicates and recombines broadcasts correctly; see the tests).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addresses import IpAddress, MacAddress
from repro.net.host import Host
from repro.net.packet import ETH_TYPE_ARP, Ethernet, Packet

ARP_REQUEST = 1
ARP_REPLY = 2

_ARP_STRUCT = struct.Struct("!HHBBH6s4s6s4s")


class ArpPayload:
    """The RFC 826 ARP body for Ethernet/IPv4."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(
        self,
        op: int,
        sender_mac: MacAddress,
        sender_ip: IpAddress,
        target_mac: MacAddress,
        target_ip: IpAddress,
    ) -> None:
        self.op = op
        self.sender_mac = MacAddress(sender_mac)
        self.sender_ip = IpAddress(sender_ip)
        self.target_mac = MacAddress(target_mac)
        self.target_ip = IpAddress(target_ip)

    def to_bytes(self) -> bytes:
        return _ARP_STRUCT.pack(
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,  # hardware size
            4,  # protocol size
            self.op,
            self.sender_mac.to_bytes(),
            self.sender_ip.to_bytes(),
            self.target_mac.to_bytes(),
            self.target_ip.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> Optional["ArpPayload"]:
        if len(data) < _ARP_STRUCT.size:
            return None
        htype, ptype, hsize, psize, op, sha, spa, tha, tpa = _ARP_STRUCT.unpack_from(
            data
        )
        if (htype, ptype, hsize, psize) != (1, 0x0800, 6, 4):
            return None
        return cls(op, MacAddress(sha), IpAddress(spa), MacAddress(tha), IpAddress(tpa))

    def __repr__(self) -> str:
        kind = {ARP_REQUEST: "who-has", ARP_REPLY: "is-at"}.get(self.op, str(self.op))
        return f"Arp({kind} {self.target_ip} tell {self.sender_ip})"


ResolveCallback = Callable[[Optional[MacAddress]], None]


class ArpService:
    """Resolver + responder attached to one host."""

    def __init__(
        self,
        host: Host,
        cache_timeout: float = 60.0,
        retry_interval: float = 1e-3,
        max_retries: int = 3,
    ) -> None:
        self.host = host
        self.cache_timeout = cache_timeout
        self.retry_interval = retry_interval
        self.max_retries = max_retries
        self._cache: Dict[IpAddress, Tuple[MacAddress, float]] = {}
        self._pending: Dict[IpAddress, List[ResolveCallback]] = {}
        self._retry_counts: Dict[IpAddress, int] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.resolutions = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, ip: IpAddress, callback: ResolveCallback) -> None:
        """Invoke ``callback`` with the MAC for ``ip`` (or None on
        timeout).  Served from cache when fresh."""
        ip = IpAddress(ip)
        cached = self.lookup(ip)
        if cached is not None:
            callback(cached)
            return
        waiters = self._pending.setdefault(ip, [])
        waiters.append(callback)
        if len(waiters) == 1:
            self._retry_counts[ip] = 0
            self._send_request(ip)

    def lookup(self, ip: IpAddress) -> Optional[MacAddress]:
        """Non-blocking cache lookup (expired entries evicted)."""
        entry = self._cache.get(IpAddress(ip))
        if entry is None:
            return None
        mac, stored_at = entry
        if self.host.sim.now - stored_at > self.cache_timeout:
            del self._cache[IpAddress(ip)]
            return None
        return mac

    def _send_request(self, ip: IpAddress) -> None:
        self.requests_sent += 1
        request = Packet(
            Ethernet(MacAddress.BROADCAST, self.host.mac, ETH_TYPE_ARP),
            payload=ArpPayload(
                ARP_REQUEST,
                sender_mac=self.host.mac,
                sender_ip=self.host.ip,
                target_mac=MacAddress(0),
                target_ip=ip,
            ).to_bytes(),
        )
        self.host.send(request)
        self.host.sim.schedule(self.retry_interval, lambda: self._maybe_retry(ip))

    def _maybe_retry(self, ip: IpAddress) -> None:
        if ip not in self._pending:
            return  # already resolved
        self._retry_counts[ip] = self._retry_counts.get(ip, 0) + 1
        if self._retry_counts[ip] >= self.max_retries:
            self.failures += 1
            for callback in self._pending.pop(ip, ()):
                callback(None)
            return
        self._send_request(ip)

    # ------------------------------------------------------------------
    # frame handling (wired in by attach_arp)
    # ------------------------------------------------------------------
    def handle_frame(self, packet: Packet) -> bool:
        """Process an ARP frame; returns True if it was one."""
        if packet.eth.ethertype != ETH_TYPE_ARP:
            return False
        arp = ArpPayload.from_bytes(packet.payload)
        if arp is None:
            return True  # malformed ARP: swallow
        # opportunistic learning from any ARP frame
        self._learn(arp.sender_ip, arp.sender_mac)
        if arp.op == ARP_REQUEST and arp.target_ip == self.host.ip:
            self.replies_sent += 1
            reply = Packet(
                Ethernet(arp.sender_mac, self.host.mac, ETH_TYPE_ARP),
                payload=ArpPayload(
                    ARP_REPLY,
                    sender_mac=self.host.mac,
                    sender_ip=self.host.ip,
                    target_mac=arp.sender_mac,
                    target_ip=arp.sender_ip,
                ).to_bytes(),
            )
            self.host.send(reply)
        return True

    def _learn(self, ip: IpAddress, mac: MacAddress) -> None:
        self._cache[ip] = (mac, self.host.sim.now)
        waiters = self._pending.pop(ip, None)
        if waiters:
            self.resolutions += len(waiters)
            for callback in waiters:
                callback(mac)

    def cache_size(self) -> int:
        return len(self._cache)


def attach_arp(host: Host, **kwargs) -> ArpService:
    """Install an :class:`ArpService` on a host.

    ARP frames are intercepted ahead of the host's raw handler; all
    other traffic is unaffected.
    """
    service = ArpService(host, **kwargs)
    previous_raw = host._raw_handler

    def raw_with_arp(packet: Packet) -> None:
        if service.handle_frame(packet):
            return
        if previous_raw is not None:
            previous_raw(packet)

    host.bind_raw(raw_with_arp)
    host.arp = service  # type: ignore[attr-defined]
    return service
