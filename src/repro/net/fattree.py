"""Fat-tree (Clos) datacenter topology builder.

Builds the standard k-ary fat-tree of Al-Fares et al.: ``k`` pods, each
with ``k/2`` edge and ``k/2`` aggregation switches, ``(k/2)^2`` core
switches, and ``k/2`` hosts per edge switch ("rack").  This is the
topology in Figure 1 of the NetCo paper (servers in racks, racks in pods,
pods joined by core routers) and the substrate for the Section VI
datacenter routing-attack case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.switch import OpenFlowSwitch


@dataclass
class FatTree:
    """Handles to every element of a built fat-tree."""

    network: Network
    k: int
    core: List[OpenFlowSwitch] = field(default_factory=list)
    # aggregation[pod][i], edge[pod][i]
    aggregation: List[List[OpenFlowSwitch]] = field(default_factory=list)
    edge: List[List[OpenFlowSwitch]] = field(default_factory=list)
    # hosts[pod][edge_index][host_index]
    hosts: List[List[List[Host]]] = field(default_factory=list)

    def all_switches(self) -> List[OpenFlowSwitch]:
        switches = list(self.core)
        for pod in self.aggregation:
            switches.extend(pod)
        for pod in self.edge:
            switches.extend(pod)
        return switches

    def all_hosts(self) -> List[Host]:
        return [h for pod in self.hosts for rack in pod for h in rack]

    def host(self, pod: int, edge: int, index: int) -> Host:
        return self.hosts[pod][edge][index]


def build_fat_tree(
    k: int = 4,
    network: Optional[Network] = None,
    link_rate_bps: float = 1e9,
    link_delay: float = 5e-6,
    switch_proc_time: float = 0.0,
    host_stack_delay: float = 0.0,
    seed: int = 0,
    switch_factory=None,
) -> FatTree:
    """Build a k-ary fat-tree.  ``k`` must be even and >= 2.

    ``switch_factory(layer, name, network)`` (layer in ``core``/``agg``/
    ``edge``) may return a custom :class:`OpenFlowSwitch` subclass for
    specific positions — e.g. virtual-combiner ingress/egress edges —
    or ``None`` to get the default switch.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    net = network or Network(seed=seed)
    half = k // 2
    tree = FatTree(network=net, k=k)

    def make_switch(name: str, layer: str = "core") -> OpenFlowSwitch:
        switch = None
        if switch_factory is not None:
            switch = switch_factory(layer, name, net)
        if switch is None:
            switch = OpenFlowSwitch(
                net.sim, name, trace_bus=net.trace, proc_time=switch_proc_time
            )
        net.add_node(switch)
        return switch

    tree.core = [make_switch(f"core{i}", "core") for i in range(half * half)]

    host_index = 0
    for pod in range(k):
        aggs = [make_switch(f"agg{pod}_{i}", "agg") for i in range(half)]
        edges = [make_switch(f"edge{pod}_{i}", "edge") for i in range(half)]
        tree.aggregation.append(aggs)
        tree.edge.append(edges)

        pod_hosts: List[List[Host]] = []
        for e, edge_switch in enumerate(edges):
            rack: List[Host] = []
            for h in range(half):
                host_index += 1
                host = net.add_host(
                    f"h{pod}_{e}_{h}", stack_delay=host_stack_delay
                )
                net.connect(
                    edge_switch, host, rate_bps=link_rate_bps, delay=link_delay
                )
                rack.append(host)
            pod_hosts.append(rack)
        tree.hosts.append(pod_hosts)

        # edge <-> aggregation full mesh within the pod
        for edge_switch in edges:
            for agg_switch in aggs:
                net.connect(
                    agg_switch, edge_switch, rate_bps=link_rate_bps, delay=link_delay
                )

    # aggregation <-> core: agg switch i in each pod connects to the i-th
    # group of half core switches.
    for pod in range(k):
        for i, agg_switch in enumerate(tree.aggregation[pod]):
            for j in range(half):
                core_switch = tree.core[i * half + j]
                net.connect(
                    core_switch, agg_switch, rate_bps=link_rate_bps, delay=link_delay
                )

    return tree
