"""Network container and topology builder.

:class:`Network` plays the role Mininet plays for the paper's prototype:
it owns the simulator, trace bus and RNG family, creates hosts and wires
links, and keeps an adjacency index so scenarios can ask "which port on
``s1`` faces ``r2``?" when installing flow rules.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.addresses import IpAddress, MacAddress
from repro.net.host import Host
from repro.net.link import Link
from repro.net.node import NetworkError, Node, Port
from repro.sim import RngStreams, Simulator, TraceBus


class Network:
    """A simulated network: nodes, links, and the shared simulation state."""

    def __init__(self, seed: int = 0, batch_train: int = 1) -> None:
        self.sim = Simulator()
        self.trace = TraceBus()
        self.rng = RngStreams(seed)
        # Packet-train batching: train >= 2 attaches a BatchRealm so CBR
        # senders emit trains of that size; train == 1 leaves the
        # event-per-packet engine byte-for-byte untouched.
        self.batch_train = batch_train
        if batch_train >= 2:
            from repro.sim.realm import BatchRealm

            BatchRealm(self.sim, batch_train)
        elif batch_train < 1:
            raise NetworkError(f"batch_train must be >= 1, got {batch_train}")
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        # adjacency[(a, b)] -> port on a that faces b (first such link wins)
        self._adjacency: Dict[Tuple[str, str], Port] = {}
        self._host_count = 0
        # Optional packet-lifecycle tracer; installed by PacketTracer.attach()
        # and propagated to hosts created afterwards.
        self.tracer = None

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_host(
        self,
        name: str,
        mac: Optional[MacAddress] = None,
        ip: Optional[IpAddress] = None,
        stack_delay: float = 0.0,
        stack_jitter: float = 0.0,
        recv_cost_base: float = 0.0,
        recv_cost_per_byte: float = 0.0,
        promiscuous: bool = False,
    ) -> Host:
        self._host_count += 1
        if mac is None:
            mac = MacAddress.from_index(self._host_count)
        if ip is None:
            ip = IpAddress.from_index(self._host_count)
        host = Host(
            self.sim,
            name,
            mac,
            ip,
            trace_bus=self.trace,
            stack_delay=stack_delay,
            stack_jitter=stack_jitter,
            rng=self.rng.stream(f"host.{name}"),
            recv_cost_base=recv_cost_base,
            recv_cost_per_byte=recv_cost_per_byte,
            promiscuous=promiscuous,
        )
        host.tracer = self.tracer
        self.add_node(host)
        return host

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"no node named {name!r}") from None

    def host(self, name: str) -> Host:
        node = self.node(name)
        if not isinstance(node, Host):
            raise NetworkError(f"{name!r} is not a host")
        return node

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        a: Node,
        b: Node,
        rate_bps: Optional[float] = None,
        delay: float = 0.0,
        loss: float = 0.0,
        queue_capacity: int = 100,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> Link:
        """Wire a duplex link between ``a`` and ``b``.

        Hosts use their fixed port 1; other nodes get auto-numbered ports
        unless explicit port numbers are given.
        """
        pa = self._pick_port(a, port_a)
        pb = self._pick_port(b, port_b)
        link = Link(
            self.sim,
            pa,
            pb,
            rate_bps=rate_bps,
            delay=delay,
            loss=loss,
            queue_capacity=queue_capacity,
            trace_bus=self.trace,
            rng_streams=self.rng,
            name=f"{a.name}-{b.name}",
        )
        self.links.append(link)
        self._adjacency.setdefault((a.name, b.name), pa)
        self._adjacency.setdefault((b.name, a.name), pb)
        return link

    @staticmethod
    def _pick_port(node: Node, port_no: Optional[int]) -> Port:
        if isinstance(node, Host):
            port = node.port(1)
            if port.is_wired:
                raise NetworkError(f"host {node.name} is already wired")
            return port
        if port_no is not None:
            port = node.ports.get(port_no)
            if port is None:
                port = node.add_port(port_no)
            if port.is_wired:
                raise NetworkError(f"port {port.full_name} already wired")
            return port
        return node.add_port()

    def port_between(self, a: str, b: str) -> Port:
        """The port on node ``a`` that faces node ``b``."""
        try:
            return self._adjacency[(a, b)]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def port_no_between(self, a: str, b: str) -> int:
        return self.port_between(a, b).port_no

    def neighbors(self, name: str) -> List[str]:
        return sorted({b for (a, b) in self._adjacency if a == name})

    # ------------------------------------------------------------------
    # path computation
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str) -> List[str]:
        """BFS shortest node path from ``src`` to ``dst`` (inclusive)."""
        if src == dst:
            return [src]
        self.node(src)
        self.node(dst)
        prev: Dict[str, str] = {}
        seen = {src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self.neighbors(cur):
                if nxt in seen:
                    continue
                seen.add(nxt)
                prev[nxt] = cur
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        raise NetworkError(f"no path from {src!r} to {dst!r}")

    def disjoint_paths(self, src: str, dst: str, count: int) -> List[List[str]]:
        """Up to ``count`` node-disjoint paths (greedy BFS with removal).

        Used by the virtualized NetCo to pick diverse tunnels.  Greedy
        shortest-path-then-remove is not maximal in general but suffices
        for the diamond/fat-tree topologies of the paper.
        """
        paths: List[List[str]] = []
        banned: set = set()
        for _ in range(count):
            path = self._shortest_avoiding(src, dst, banned)
            if path is None:
                break
            paths.append(path)
            banned.update(path[1:-1])
        if not paths:
            raise NetworkError(f"no path from {src!r} to {dst!r}")
        return paths

    def _shortest_avoiding(
        self, src: str, dst: str, banned: Iterable[str]
    ) -> Optional[List[str]]:
        banned_set = set(banned)
        prev: Dict[str, str] = {}
        seen = {src}
        queue = deque([src])
        while queue:
            cur = queue.popleft()
            for nxt in self.neighbors(cur):
                if nxt in seen or (nxt in banned_set and nxt != dst):
                    continue
                seen.add(nxt)
                prev[nxt] = cur
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, links={len(self.links)})"
