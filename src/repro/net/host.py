"""End hosts with a small protocol stack.

A :class:`Host` owns one network port, a MAC and an IPv4 address, and a
demultiplexer that hands received packets to registered protocol agents:

* UDP agents register by destination port,
* TCP agents register by destination port,
* one ICMP agent may be registered (a default echo responder is installed
  so every host answers pings, like a Mininet host would).

Hosts model a small, configurable stack traversal delay (``stack_delay``),
which contributes to end-to-end RTT exactly as the kernel stack does in
the paper's Mininet measurements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.addresses import IpAddress, MacAddress
from repro.net.node import NetworkError, Node, Port
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    Icmp,
    Packet,
    Tcp,
    Udp,
)
from repro.sim import Simulator, TraceBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

PacketHandler = Callable[[Packet], None]


class Host(Node):
    """A single-homed end host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: IpAddress,
        trace_bus: Optional[TraceBus] = None,
        stack_delay: float = 0.0,
        stack_jitter: float = 0.0,
        rng=None,
        recv_cost_base: float = 0.0,
        recv_cost_per_byte: float = 0.0,
        promiscuous: bool = False,
    ) -> None:
        super().__init__(sim, name, trace_bus)
        self.mac = MacAddress(mac)
        self.ip = IpAddress(ip)
        self.stack_delay = stack_delay
        # OS-scheduling noise: uniform extra delay in [0, stack_jitter)
        # added per stack traversal (needs an rng to be active).
        self.stack_jitter = stack_jitter
        self._rng = rng
        # Per-packet receive CPU cost (single server): base + per_byte *
        # wire length.  This models the kernel's per-packet+copy cost and
        # is what makes receiving k duplicate copies (Dup3/Dup5) expensive.
        self.recv_cost_base = recv_cost_base
        self.recv_cost_per_byte = recv_cost_per_byte
        # One CPU per host: receives are served FIFO, and sends wait for
        # the CPU to be free (so a burst of duplicate arrivals delays the
        # host's own transmissions — the paper's "buffered on exiting the
        # NetCo design and the destination host").
        self._cpu_busy_until = 0.0
        # Socket-buffer analogue: arrivals waiting for the CPU beyond
        # this bound are dropped, like a full SO_RCVBUF.
        self.recv_queue_capacity = 128
        self._recv_queued = 0
        self.rx_dropped = 0
        self.promiscuous = promiscuous
        self._udp_handlers: Dict[int, PacketHandler] = {}
        # Batch-aware UDP agents: dport -> fn(batch, i).  Bound alongside
        # the per-packet handler; used by the packet-train fast path.
        self._udp_batch_handlers: Dict[int, Callable] = {}
        self._tcp_handlers: Dict[int, PacketHandler] = {}
        self._icmp_handler: Optional[PacketHandler] = None
        self._raw_handler: Optional[PacketHandler] = None
        self._ip_ident = 0
        self.rx_foreign = 0  # frames addressed to someone else (screening)
        # Packet-lifecycle tracer (repro.obs.spans.PacketTracer); when set,
        # frames are marked at injection so their trajectory can be followed.
        self.tracer = None
        self.add_port(1)
        self.enable_echo_responder()

    # ------------------------------------------------------------------
    # agent registration
    # ------------------------------------------------------------------
    def bind_udp(self, port: int, handler: PacketHandler) -> None:
        if port in self._udp_handlers:
            raise NetworkError(f"{self.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def bind_udp_batch(self, port: int, handler: Callable) -> None:
        """Register a train-aware companion to a bound UDP handler.

        ``handler(batch, i)`` must account packet ``i`` of ``batch``
        exactly as the per-packet handler would account the materialised
        packet; the per-packet handler stays the source of truth for
        every non-batched delivery.
        """
        self._udp_batch_handlers[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._udp_handlers.pop(port, None)
        self._udp_batch_handlers.pop(port, None)

    def bind_tcp(self, port: int, handler: PacketHandler) -> None:
        if port in self._tcp_handlers:
            raise NetworkError(f"{self.name}: TCP port {port} already bound")
        self._tcp_handlers[port] = handler

    def unbind_tcp(self, port: int) -> None:
        self._tcp_handlers.pop(port, None)

    def bind_icmp(self, handler: PacketHandler) -> None:
        self._icmp_handler = handler

    def bind_raw(self, handler: PacketHandler) -> None:
        """Receive every accepted frame (after specific handlers)."""
        self._raw_handler = handler

    def enable_echo_responder(self) -> None:
        """Install the default ping responder (idempotent)."""
        self._icmp_handler = self._echo_responder

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def next_ip_ident(self) -> int:
        """Monotone IPv4 identification counter (makes packets unique)."""
        self._ip_ident = (self._ip_ident + 1) & 0xFFFF
        return self._ip_ident

    def send(self, packet: Packet) -> None:
        """Transmit a fully-formed frame after the stack traversal delay.

        The transmission waits for the host CPU if the receive path is
        busy serving queued arrivals.
        """
        tracer = self.tracer
        if tracer is not None and packet.trace_id is None:
            tracer.mark(packet, self.sim.now, self.name)
        depart = max(self.sim.now, self._cpu_busy_until) + self._stack_traversal()
        if depart <= self.sim.now:
            self.port(1).send(packet)
            return
        realm = self.sim.realm
        if realm is not None:
            realm.post(depart, self.port(1).send, (packet,))
        else:
            self.sim.schedule_at(depart, lambda: self.port(1).send(packet))

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: Port) -> None:
        dst = packet.fields()[0].dst  # read-only: skip CoW materialisation
        if dst != self.mac and not dst.is_broadcast and not self.promiscuous:
            self.rx_foreign += 1
            self.trace("host.foreign_frame", packet=packet)
            return
        cost = self.recv_cost_base + self.recv_cost_per_byte * packet.wire_len
        if cost <= 0 and self.stack_delay <= 0:
            self._dispatch(packet)
            return
        if self._recv_queued >= self.recv_queue_capacity:
            self.rx_dropped += 1
            self.trace("host.rx_drop", packet=packet)
            return
        # Single-server receive path: packets queue behind the stack.
        start = max(self.sim.now, self._cpu_busy_until)
        finish = start + cost
        self._cpu_busy_until = finish
        self._recv_queued += 1

        def _deliver() -> None:
            self._recv_queued -= 1
            self._dispatch(packet)

        realm = self.sim.realm
        if realm is not None:
            realm.post(finish + self._stack_traversal(), _deliver, ())
        else:
            self.sim.schedule_at(finish + self._stack_traversal(), _deliver)

    def receive_batch_packet(self, batch, i: int, in_port: Port) -> None:
        """:meth:`receive` for one train packet, at the patched clock.

        Mirrors the per-packet path statement for statement: same counter
        order, same CPU booking arithmetic, and — critically — the stack
        jitter is drawn *at arrival time*, so the host RNG stream advances
        exactly as in the unbatched run.
        """
        dst = batch.template.fields()[0].dst
        if dst != self.mac and not dst.is_broadcast and not self.promiscuous:
            self.rx_foreign += 1
            self.trace("host.foreign_frame", packet=batch.packet_at(i))
            return
        cost = self.recv_cost_base + self.recv_cost_per_byte * batch.wire_len
        if cost <= 0 and self.stack_delay <= 0:
            self._dispatch_batch_packet(batch, i)
            return
        if self._recv_queued >= self.recv_queue_capacity:
            self.rx_dropped += 1
            self.trace("host.rx_drop", packet=batch.packet_at(i))
            return
        now = self.sim._now
        start = self._cpu_busy_until
        if start < now:
            start = now
        finish = start + cost
        self._cpu_busy_until = finish
        self._recv_queued += 1
        # One micro-event per delivery: host deliver times are not
        # guaranteed monotone (jitter can exceed a zero-cost gap), so a
        # FIFO pump would be unsound here — the realm heap orders them.
        self.sim.realm.post(
            finish + self._stack_traversal(), self._deliver_batch_packet, (batch, i)
        )

    def _deliver_batch_packet(self, batch, i: int) -> None:
        self._recv_queued -= 1
        self._dispatch_batch_packet(batch, i)

    def _dispatch_batch_packet(self, batch, i: int) -> None:
        l4 = batch.template.fields()[3]
        if type(l4) is Udp and self._raw_handler is None:
            handler = self._udp_batch_handlers.get(l4.dport)
            if handler is not None:
                handler(batch, i)
                return
        # No batch-aware agent for this shape: hand the materialised
        # packet to the ordinary demultiplexer (exact under the patched
        # clock — same handlers, same unhandled trace).
        self.sim.realm.note_fallback("mixed-headers")
        self._dispatch(batch.packet_at(i))

    # ------------------------------------------------------------------
    # packet-train injection (batch realm)
    # ------------------------------------------------------------------
    def send_batch(self, batch, times) -> None:
        """Inject a train; packet ``i`` departs as if sent at ``times[i]``.

        Replays :meth:`send` per packet: the tracer mark and the stack
        jitter draw happen in emission order at each packet's send time,
        so both RNG streams advance exactly as in the unbatched run.
        Packets the tracer samples are split out of the train and travel
        the legacy per-packet path so their span hops are recorded.
        """
        realm = self.sim.realm
        realm.merges_total += 1
        tracer = self.tracer
        bus = self.trace_bus
        busy = self._cpu_busy_until
        port = self.port(1)
        idxs = []
        departs = []
        if bus is not None:
            bus.emit(times[0], "batch.merge", self.name,
                     train=batch.count, wire_len=batch.wire_len)
        for i in range(batch.count):
            t = times[i]
            if tracer is not None:
                pkt = batch.packet_at(i)
                tracer.mark(pkt, t, self.name)
                if pkt.trace_id is not None:
                    # Sampled: give it the full per-packet journey.
                    realm.note_fallback("mixed-headers")
                    if bus is not None:
                        bus.emit(t, "batch.split", self.name,
                                 trace=pkt.trace_id, index=i, train=batch.count)
                    depart = max(t, busy) + self._stack_traversal()
                    if depart <= t:
                        realm.post(t, port.send, (pkt,))
                    else:
                        realm.post(depart, port.send, (pkt,))
                    continue
            depart = max(t, busy) + self._stack_traversal()
            idxs.append(i)
            departs.append(depart if depart > t else t)
        if not idxs:
            return
        if any(departs[k] < departs[k - 1] for k in range(1, len(departs))):
            # Jitter exceeded the send interval somewhere: the in-order
            # walk would misorder departures, so let the realm heap
            # schedule each one (rare — never with calibrated params).
            for k, i in enumerate(idxs):
                realm.post(departs[k], port.send_batch_packet, (batch, i, departs[k]))
            return
        realm.post(departs[0], self._batch_egress, (batch, idxs, departs, 0))

    def _batch_egress(self, batch, idxs, departs, j: int) -> None:
        """Walk a train's departures through port 1 in timestamp order.

        Invoked at ``departs[j]``; keeps going inline while the realm
        says no other event is due first, otherwise re-posts itself at
        the next departure.
        """
        sim = self.sim
        realm = sim.realm
        port = self.port(1)
        n = len(idxs)
        while True:
            port.send_batch_packet(batch, idxs[j], sim._now)
            j += 1
            if j >= n:
                return
            t = departs[j]
            if t <= sim._now:
                continue
            if realm.runnable(t):
                sim._now = t
                continue
            realm.post(t, self._batch_egress, (batch, idxs, departs, j))
            return

    def _stack_traversal(self) -> float:
        if self.stack_jitter > 0.0 and self._rng is not None:
            return self.stack_delay + self._rng.random() * self.stack_jitter
        return self.stack_delay

    def _dispatch(self, packet: Packet) -> None:
        handled = False
        l4 = packet.fields()[3]  # read-only: skip CoW materialisation
        if isinstance(l4, Udp):
            handler = self._udp_handlers.get(l4.dport)
            if handler is not None:
                handler(packet)
                handled = True
        elif isinstance(l4, Tcp):
            handler = self._tcp_handlers.get(l4.dport)
            if handler is not None:
                handler(packet)
                handled = True
        elif isinstance(l4, Icmp):
            if self._icmp_handler is not None:
                self._icmp_handler(packet)
                handled = True
        if self._raw_handler is not None:
            self._raw_handler(packet)
            handled = True
        if not handled:
            self.trace("host.unhandled", packet=packet)

    # ------------------------------------------------------------------
    # default ICMP echo behaviour
    # ------------------------------------------------------------------
    def _echo_responder(self, packet: Packet) -> None:
        eth, _vlan, ip, icmp, _payload = packet.fields()
        if not isinstance(icmp, Icmp) or icmp.icmp_type != ICMP_ECHO_REQUEST:
            return
        if ip is None or ip.dst != self.ip:
            return
        reply = Packet.icmp_echo(
            src_mac=self.mac,
            dst_mac=eth.src,
            src_ip=self.ip,
            dst_ip=ip.src,
            ident=icmp.ident,
            seqno=icmp.seqno,
            reply=True,
            payload=packet.payload,
            ip_ident=self.next_ip_ident(),
        )
        self.trace("host.echo_reply", to=str(ip.src), seq=icmp.seqno)
        self.send(reply)
