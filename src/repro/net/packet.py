"""Packet model: Ethernet / 802.1Q / IPv4 / UDP / TCP / ICMP.

Headers are small mutable dataclass-like objects with deterministic binary
encodings (network byte order, real Internet checksums).  Determinism
matters because the NetCo compare element votes on *exact packet bytes*,
mirroring the ``memcmp`` comparison in the paper's C prototype: two benign
routers forwarding the same packet must yield bit-identical buffers, while
any adversarial header rewrite must change the buffer.

A :class:`Packet` is a stack ``ethernet [vlan] [ipv4 [udp|tcp|icmp]]`` plus
an opaque payload.  ``Packet.to_bytes()`` serialises the full frame and
``Packet.parse()`` round-trips it.

Hot-path machinery (see DESIGN.md "Per-packet hot path"):

* every header carries a monotonic version counter bumped on field writes,
  so a packet can memoise its serialised frame (``to_bytes`` returns the
  cached wire image until some header or the payload changes);
* ``Packet.copy()`` is copy-on-write: the k-way fan-out of a hub shares
  header objects, payload and the cached wire image, and a branch pays for
  private header copies only when it actually mutates them;
* :func:`internet_checksum` sums native 16-bit words in one C-level loop,
  and :func:`incremental_checksum_update` implements RFC 1624 so the
  TTL-decrement path of a routed hop patches the cached image in place.

**Mutability contract**: packets are mutable, but equality and hashing are
defined over the serialised bytes.  Mutating a header *after* using the
packet as a dict/set key is a bug (the stored hash is stale, as for any
mutable key); the wire-image cache itself always invalidates correctly —
``to_bytes``/``__hash__`` recompute after any header or payload write.
Holding a header reference across ``Packet.copy()`` and mutating it
directly raises :class:`PacketError` (the header may be shared with the
sibling copy); go through the owning packet's attribute instead, which
materialises a private header first.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Callable, List, Optional, Tuple, Union

from repro.net.addresses import IpAddress, MacAddress

# EtherTypes
ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100

# IP protocol numbers
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

# TCP flags
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
# The ECE bit position, reused to signal "this duplicate ACK carries a
# DSACK block" (RFC 2883).  Our 20-byte header has no options space, so
# the receiver flags DSACK-bearing ACKs here and a SACK-capable sender
# excludes them from its duplicate-ACK count — the behaviour that lets
# real Linux TCP shrug off the duplicated deliveries of the Dup3/Dup5
# scenarios instead of collapsing under spurious fast retransmits.
TCP_DSACK = 0x40

# ICMP types
ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8

ETHERNET_HEADER_LEN = 14
VLAN_TAG_LEN = 4
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20
ICMP_HEADER_LEN = 8

_LITTLE_ENDIAN = sys.byteorder == "little"


class PacketError(Exception):
    """Raised on malformed packet construction or parsing."""


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``.

    Sums native-endian 16-bit words in a single C-level loop and
    byte-swaps the folded result once: ones-complement addition commutes
    with byte swapping (RFC 1071 §2.B), so the result is identical to
    summing big-endian words.
    """
    if len(data) & 1:
        data = data + b"\x00"
    total = sum(array("H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _LITTLE_ENDIAN:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def incremental_checksum_update(checksum: int, old_word: int, new_word: int) -> int:
    """RFC 1624 (eqn. 3) checksum update for one rewritten 16-bit field.

    ``HC' = ~(~HC + ~m + m')`` with end-around carry; bit-identical to a
    full recompute for IP headers (whose word sum is never zero).
    """
    total = (~checksum & 0xFFFF) + (~old_word & 0xFFFF) + (new_word & 0xFFFF)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class _Header:
    """Base for header objects: version counter + copy-on-write guard.

    Every public field write bumps ``_v``, letting :class:`Packet` detect
    a stale cached wire image with a few integer compares.  ``_shared``
    is set when the header becomes referenced by more than one CoW packet
    copy; mutating a shared header directly raises, because the write
    would silently leak into sibling copies — access the header through
    the owning packet's attribute instead, which materialises a private
    copy first.

    Constructors write their fields with :meth:`_init` (plain
    ``object.__setattr__``), both because a half-built header has no
    bookkeeping slots yet and because header construction is itself hot
    (every parse, copy and materialisation runs one).
    """

    __slots__ = ("_v", "_shared")

    def _init(self) -> Callable[[object, str, object], None]:
        """Start __init__: create bookkeeping slots, return a raw setter."""
        setter = object.__setattr__
        setter(self, "_shared", False)
        setter(self, "_v", 0)
        return setter

    def __setattr__(self, name: str, value: object) -> None:
        if self._shared:
            raise PacketError(
                f"cannot set {name!r} on a {type(self).__name__} shared by "
                "copy-on-write packet copies; access it via the owning "
                "Packet attribute to materialise a private copy first"
            )
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_v", self._v + 1)


class Ethernet(_Header):
    """Ethernet II header (no FCS; the simulator has no bit errors)."""

    __slots__ = ("dst", "src", "ethertype")

    def __init__(
        self,
        dst: MacAddress,
        src: MacAddress,
        ethertype: int = ETH_TYPE_IPV4,
    ) -> None:
        s = self._init()
        s(self, "dst", MacAddress(dst))
        s(self, "src", MacAddress(src))
        s(self, "ethertype", ethertype)

    def to_bytes(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Ethernet", bytes]:
        if len(data) < ETHERNET_HEADER_LEN:
            raise PacketError("truncated Ethernet header")
        dst = MacAddress(data[0:6])
        src = MacAddress(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst, src, ethertype), data[14:]

    def copy(self) -> "Ethernet":
        return Ethernet(self.dst, self.src, self.ethertype)

    def __repr__(self) -> str:
        return f"Ethernet({self.src} -> {self.dst}, type={self.ethertype:#06x})"


class Vlan(_Header):
    """An 802.1Q tag (PCP + VID); inserted after the Ethernet header."""

    __slots__ = ("vid", "pcp")

    def __init__(self, vid: int, pcp: int = 0) -> None:
        if not 0 <= vid < 4096:
            raise PacketError(f"VLAN id out of range: {vid}")
        if not 0 <= pcp < 8:
            raise PacketError(f"VLAN priority out of range: {pcp}")
        s = self._init()
        s(self, "vid", vid)
        s(self, "pcp", pcp)

    def to_bytes(self, inner_ethertype: int) -> bytes:
        tci = (self.pcp << 13) | self.vid
        return struct.pack("!HH", tci, inner_ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Vlan", int, bytes]:
        if len(data) < VLAN_TAG_LEN:
            raise PacketError("truncated VLAN tag")
        tci, inner_ethertype = struct.unpack("!HH", data[:4])
        return cls(vid=tci & 0x0FFF, pcp=tci >> 13), inner_ethertype, data[4:]

    def copy(self) -> "Vlan":
        return Vlan(self.vid, self.pcp)

    def __repr__(self) -> str:
        return f"Vlan(vid={self.vid}, pcp={self.pcp})"


class Ipv4(_Header):
    """IPv4 header (20 bytes, no options)."""

    __slots__ = ("src", "dst", "proto", "ttl", "ident", "tos", "total_length")

    def __init__(
        self,
        src: IpAddress,
        dst: IpAddress,
        proto: int,
        ttl: int = 64,
        ident: int = 0,
        tos: int = 0,
    ) -> None:
        s = self._init()
        s(self, "src", IpAddress(src))
        s(self, "dst", IpAddress(dst))
        s(self, "proto", proto)
        s(self, "ttl", ttl)
        s(self, "ident", ident & 0xFFFF)
        s(self, "tos", tos)
        # Filled in at serialisation time from actual packet contents.
        s(self, "total_length", 0)

    def to_bytes(self, payload_len: int) -> bytes:
        # total_length is derived from the buffer being built, so writing
        # it is not a mutation: bypass the version/shared bookkeeping
        # (serialising a CoW-shared header must stay legal and cheap).
        object.__setattr__(self, "total_length", IPV4_HEADER_LEN + payload_len)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version=4, ihl=5
            self.tos,
            self.total_length,
            self.ident,
            0,  # flags/fragment offset: never fragmented in the simulator
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Ipv4", bytes]:
        if len(data) < IPV4_HEADER_LEN:
            raise PacketError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_length,
            ident,
            _frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if ver_ihl >> 4 != 4:
            raise PacketError(f"not an IPv4 packet (version={ver_ihl >> 4})")
        if internet_checksum(data[:20]) != 0:
            raise PacketError("bad IPv4 header checksum")
        header = cls(IpAddress(src), IpAddress(dst), proto, ttl=ttl, ident=ident, tos=tos)
        header.total_length = total_length
        return header, data[20:]

    def copy(self) -> "Ipv4":
        dup = Ipv4(self.src, self.dst, self.proto, ttl=self.ttl, ident=self.ident, tos=self.tos)
        object.__setattr__(dup, "total_length", self.total_length)
        return dup

    def __repr__(self) -> str:
        return f"Ipv4({self.src} -> {self.dst}, proto={self.proto}, ttl={self.ttl})"


class Udp(_Header):
    """UDP header.  Checksum computed over the standard pseudo-header."""

    __slots__ = ("sport", "dport")

    def __init__(self, sport: int, dport: int) -> None:
        for port in (sport, dport):
            if not 0 <= port < 65536:
                raise PacketError(f"port out of range: {port}")
        s = self._init()
        s(self, "sport", sport)
        s(self, "dport", dport)

    def to_bytes(self, ip: Ipv4, payload: bytes) -> bytes:
        length = UDP_HEADER_LEN + len(payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        pseudo = ip.src.to_bytes() + ip.dst.to_bytes() + struct.pack(
            "!BBH", 0, IP_PROTO_UDP, length
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Udp", bytes]:
        if len(data) < UDP_HEADER_LEN:
            raise PacketError("truncated UDP header")
        sport, dport, length, _checksum = struct.unpack("!HHHH", data[:8])
        if length < UDP_HEADER_LEN or length > len(data):
            raise PacketError(f"bad UDP length {length}")
        return cls(sport, dport), data[8:length]

    def copy(self) -> "Udp":
        return Udp(self.sport, self.dport)

    def __repr__(self) -> str:
        return f"Udp({self.sport} -> {self.dport})"


class Tcp(_Header):
    """TCP header (20 bytes, no options)."""

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window")

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
    ) -> None:
        for port in (sport, dport):
            if not 0 <= port < 65536:
                raise PacketError(f"port out of range: {port}")
        s = self._init()
        s(self, "sport", sport)
        s(self, "dport", dport)
        s(self, "seq", seq & 0xFFFFFFFF)
        s(self, "ack", ack & 0xFFFFFFFF)
        s(self, "flags", flags)
        s(self, "window", window & 0xFFFF)

    def flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def to_bytes(self, ip: Ipv4, payload: bytes) -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            5 << 4,  # data offset = 5 words
            self.flags,
            self.window,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        pseudo = ip.src.to_bytes() + ip.dst.to_bytes() + struct.pack(
            "!BBH", 0, IP_PROTO_TCP, TCP_HEADER_LEN + len(payload)
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Tcp", bytes]:
        if len(data) < TCP_HEADER_LEN:
            raise PacketError("truncated TCP header")
        sport, dport, seq, ack, offset_byte, flags, window, _checksum, _urg = struct.unpack(
            "!HHIIBBHHH", data[:20]
        )
        data_offset = (offset_byte >> 4) * 4
        if data_offset < TCP_HEADER_LEN or data_offset > len(data):
            raise PacketError(f"bad TCP data offset {data_offset}")
        header = cls(sport, dport, seq=seq, ack=ack, flags=flags, window=window)
        return header, data[data_offset:]

    def copy(self) -> "Tcp":
        return Tcp(self.sport, self.dport, self.seq, self.ack, self.flags, self.window)

    def flags_str(self) -> str:
        names = [
            ("S", TCP_SYN),
            ("A", TCP_ACK),
            ("F", TCP_FIN),
            ("R", TCP_RST),
            ("P", TCP_PSH),
        ]
        return "".join(n for n, m in names if self.flags & m) or "."

    def __repr__(self) -> str:
        return (
            f"Tcp({self.sport} -> {self.dport}, seq={self.seq}, "
            f"ack={self.ack}, flags={self.flags_str()})"
        )


class Icmp(_Header):
    """ICMP echo request/reply header."""

    __slots__ = ("icmp_type", "code", "ident", "seqno")

    def __init__(self, icmp_type: int, code: int = 0, ident: int = 0, seqno: int = 0) -> None:
        s = self._init()
        s(self, "icmp_type", icmp_type)
        s(self, "code", code)
        s(self, "ident", ident & 0xFFFF)
        s(self, "seqno", seqno & 0xFFFF)

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REPLY

    def to_bytes(self, payload: bytes) -> bytes:
        header = struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.ident, self.seqno)
        checksum = internet_checksum(header + payload)
        return header[:2] + struct.pack("!H", checksum) + header[4:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Icmp", bytes]:
        if len(data) < ICMP_HEADER_LEN:
            raise PacketError("truncated ICMP header")
        icmp_type, code, _checksum, ident, seqno = struct.unpack("!BBHHH", data[:8])
        return cls(icmp_type, code, ident, seqno), data[8:]

    def copy(self) -> "Icmp":
        return Icmp(self.icmp_type, self.code, self.ident, self.seqno)

    def __repr__(self) -> str:
        kind = {0: "echo-reply", 8: "echo-request"}.get(self.icmp_type, str(self.icmp_type))
        return f"Icmp({kind}, id={self.ident}, seq={self.seqno})"


TransportHeader = Union[Udp, Tcp, Icmp]

# CoW bitmask positions for Packet._cow
_COW_ETH = 1
_COW_VLAN = 2
_COW_IP = 4
_COW_L4 = 8


class Packet:
    """A full frame: Ethernet, optional VLAN tag, optional IPv4+transport.

    Instances are mutable (adversaries rewrite headers in place on their
    copy); :meth:`copy` produces an independent copy-on-write duplicate as
    a hub would.  Equality and hashing are defined over the serialised
    bytes, which is exactly the comparison the NetCo compare element
    performs.

    The serialised frame is memoised: ``to_bytes`` returns a cached wire
    image until a header version counter or the payload changes.  See the
    module docstring for the mutability contract.
    """

    __slots__ = ("_eth", "_vlan", "_ip", "_l4", "_payload", "meta",
                 "_wire", "_snap", "_cow", "trace_id")

    def __init__(
        self,
        eth: Ethernet,
        ip: Optional[Ipv4] = None,
        l4: Optional[TransportHeader] = None,
        payload: bytes = b"",
        vlan: Optional[Vlan] = None,
    ) -> None:
        if l4 is not None and ip is None:
            raise PacketError("transport header requires an IPv4 header")
        self._eth = eth
        self._vlan = vlan
        self._ip = ip
        self._l4 = l4
        self._payload = payload
        self._wire: Optional[bytes] = None
        self._snap: Optional[tuple] = None
        self._cow = 0
        # Out-of-band metadata (e.g. the combiner branch id a trusted mux
        # attaches before handing a packet to the compare — the simulator
        # analogue of the in_port field of an OpenFlow Packet-in).  Never
        # serialised, never part of equality, never survives copy().
        self.meta: Optional[dict] = None
        # Packet-lifecycle span id (repro.obs.spans).  Unlike ``meta`` it
        # DOES survive copy(): hub fan-out copies belong to the injected
        # packet's trajectory.  Never serialised, never part of equality.
        self.trace_id: Optional[int] = None

    # ------------------------------------------------------------------
    # header access (copy-on-write aware)
    # ------------------------------------------------------------------
    def _materialise(self, bit: int, slot: str) -> None:
        """Replace a CoW-shared header with a private copy (same bytes)."""
        old = getattr(self, slot)
        if old is not None:
            cache_ok = self._cache_valid()
            setattr(self, slot, old.copy())
            if cache_ok:
                self._snap = self._snapshot()  # wire bytes are unchanged
        self._cow &= ~bit

    @property
    def eth(self) -> Ethernet:
        if self._cow & _COW_ETH:
            self._materialise(_COW_ETH, "_eth")
        return self._eth

    @eth.setter
    def eth(self, value: Ethernet) -> None:
        self._eth = value
        self._cow &= ~_COW_ETH
        self._wire = None

    @property
    def vlan(self) -> Optional[Vlan]:
        if self._cow & _COW_VLAN:
            self._materialise(_COW_VLAN, "_vlan")
        return self._vlan

    @vlan.setter
    def vlan(self, value: Optional[Vlan]) -> None:
        self._vlan = value
        self._cow &= ~_COW_VLAN
        self._wire = None

    @property
    def ip(self) -> Optional[Ipv4]:
        if self._cow & _COW_IP:
            self._materialise(_COW_IP, "_ip")
        return self._ip

    @ip.setter
    def ip(self, value: Optional[Ipv4]) -> None:
        self._ip = value
        self._cow &= ~_COW_IP
        self._wire = None

    @property
    def l4(self) -> Optional[TransportHeader]:
        if self._cow & _COW_L4:
            self._materialise(_COW_L4, "_l4")
        return self._l4

    @l4.setter
    def l4(self, value: Optional[TransportHeader]) -> None:
        self._l4 = value
        self._cow &= ~_COW_L4
        self._wire = None

    @property
    def payload(self) -> bytes:
        return self._payload

    @payload.setter
    def payload(self, value: bytes) -> None:
        self._payload = value
        self._wire = None

    def fields(self) -> tuple:
        """Read-only view ``(eth, vlan, ip, l4, payload)`` of the stack.

        Unlike the header properties this never materialises CoW-shared
        headers, so it is the accessor of choice for hot read paths
        (matching, policies).  Callers must not mutate the returned
        headers — they may be shared with sibling copies, and the
        headers' own guard raises :class:`PacketError` on the attempt.
        """
        return self._eth, self._vlan, self._ip, self._l4, self._payload

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def udp(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        sport: int,
        dport: int,
        payload: bytes = b"",
        ttl: int = 64,
        ident: int = 0,
        vlan: Optional[Vlan] = None,
    ) -> "Packet":
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_UDP, ttl=ttl, ident=ident),
            Udp(sport, dport),
            payload,
            vlan=vlan,
        )

    @classmethod
    def tcp(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        payload: bytes = b"",
        ttl: int = 64,
        ident: int = 0,
    ) -> "Packet":
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_TCP, ttl=ttl, ident=ident),
            Tcp(sport, dport, seq=seq, ack=ack, flags=flags, window=window),
            payload,
        )

    @classmethod
    def icmp_echo(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        ident: int,
        seqno: int,
        reply: bool = False,
        payload: bytes = b"",
        ttl: int = 64,
        ip_ident: int = 0,
    ) -> "Packet":
        icmp_type = ICMP_ECHO_REPLY if reply else ICMP_ECHO_REQUEST
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_ICMP, ttl=ttl, ident=ip_ident),
            Icmp(icmp_type, ident=ident, seqno=seqno),
            payload,
        )

    # ------------------------------------------------------------------
    # serialisation (memoised)
    # ------------------------------------------------------------------
    def _snapshot(self) -> tuple:
        """Current header versions (cache coherence stamp)."""
        vlan, ip, l4 = self._vlan, self._ip, self._l4
        return (
            self._eth._v,
            -1 if vlan is None else vlan._v,
            -1 if ip is None else ip._v,
            -1 if l4 is None else l4._v,
        )

    def _cache_valid(self) -> bool:
        if self._wire is None:
            return False
        snap = self._snap
        vlan, ip, l4 = self._vlan, self._ip, self._l4
        return (
            snap[0] == self._eth._v
            and snap[1] == (-1 if vlan is None else vlan._v)
            and snap[2] == (-1 if ip is None else ip._v)
            and snap[3] == (-1 if l4 is None else l4._v)
        )

    def wire_cache(self) -> Optional[bytes]:
        """The cached wire image, or None if absent/stale (never computes)."""
        return self._wire if self._cache_valid() else None

    def to_bytes(self) -> bytes:
        """Serialise the full frame deterministically (cached)."""
        if self._wire is not None and self._cache_valid():
            return self._wire
        wire = self._serialise()
        self._wire = wire
        self._snap = self._snapshot()
        return wire

    def _serialise(self) -> bytes:
        """Build the wire image from scratch (no cache interaction)."""
        eth, vlan, ip, l4, payload = (
            self._eth, self._vlan, self._ip, self._l4, self._payload,
        )
        parts: List[bytes] = []
        inner_type = eth.ethertype
        if vlan is not None:
            parts.append(
                eth.dst.to_bytes()
                + eth.src.to_bytes()
                + struct.pack("!H", ETH_TYPE_VLAN)
            )
            parts.append(vlan.to_bytes(inner_type))
        else:
            parts.append(eth.to_bytes())
        if ip is not None:
            l4_bytes = b""
            if isinstance(l4, Udp):
                l4_bytes = l4.to_bytes(ip, payload)
            elif isinstance(l4, Tcp):
                l4_bytes = l4.to_bytes(ip, payload)
            elif isinstance(l4, Icmp):
                l4_bytes = l4.to_bytes(payload)
            parts.append(ip.to_bytes(len(l4_bytes) + len(payload)))
            parts.append(l4_bytes)
            parts.append(payload)
        else:
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse a frame produced by :meth:`to_bytes` (round-trip safe)."""
        eth, rest = Ethernet.from_bytes(data)
        vlan = None
        if eth.ethertype == ETH_TYPE_VLAN:
            vlan, inner_type, rest = Vlan.from_bytes(rest)
            eth.ethertype = inner_type
        if eth.ethertype != ETH_TYPE_IPV4:
            return cls(eth, payload=rest, vlan=vlan)
        ip, rest = Ipv4.from_bytes(rest)
        rest = rest[: ip.total_length - IPV4_HEADER_LEN]
        l4: Optional[TransportHeader] = None
        payload = rest
        if ip.proto == IP_PROTO_UDP:
            l4, payload = Udp.from_bytes(rest)
        elif ip.proto == IP_PROTO_TCP:
            l4, payload = Tcp.from_bytes(rest)
        elif ip.proto == IP_PROTO_ICMP:
            l4, payload = Icmp.from_bytes(rest)
        return cls(eth, ip, l4, payload, vlan=vlan)

    @property
    def wire_len(self) -> int:
        """Frame length in bytes on the wire."""
        if self._wire is not None and self._cache_valid():
            return len(self._wire)
        length = ETHERNET_HEADER_LEN + len(self._payload)
        if self._vlan is not None:
            length += VLAN_TAG_LEN
        if self._ip is not None:
            length += IPV4_HEADER_LEN
            l4 = self._l4
            if isinstance(l4, Udp):
                length += UDP_HEADER_LEN
            elif isinstance(l4, Tcp):
                length += TCP_HEADER_LEN
            elif isinstance(l4, Icmp):
                length += ICMP_HEADER_LEN
        return length

    # ------------------------------------------------------------------
    # in-place header rewrites that keep the wire cache coherent
    # ------------------------------------------------------------------
    def decrement_ttl(self, delta: int = 1) -> None:
        """Decrement the IPv4 TTL, patching the cached wire image in place.

        When the cache is valid this costs a TTL byte rewrite plus an
        RFC 1624 incremental checksum update instead of a full
        re-serialisation; the result is bit-identical either way.
        """
        if self._ip is None:
            raise PacketError("decrement_ttl on a packet without an IPv4 header")
        cache_ok = self._cache_valid()
        wire = self._wire
        ip = self.ip  # materialises a private header if CoW-shared
        new_ttl = ip.ttl - delta
        if not 0 <= new_ttl <= 255:
            raise PacketError(f"TTL out of range after decrement: {new_ttl}")
        ip.ttl = new_ttl
        if not cache_ok:
            return
        off = ETHERNET_HEADER_LEN + (VLAN_TAG_LEN if self._vlan is not None else 0)
        ttl_off = off + 8
        csum_off = off + 10
        old_word = (wire[ttl_off] << 8) | wire[ttl_off + 1]
        new_word = (new_ttl << 8) | wire[ttl_off + 1]
        old_sum = (wire[csum_off] << 8) | wire[csum_off + 1]
        new_sum = incremental_checksum_update(old_sum, old_word, new_word)
        self._wire = b"".join((
            wire[:ttl_off],
            bytes((new_ttl,)),
            wire[ttl_off + 1 : csum_off],
            new_sum.to_bytes(2, "big"),
            wire[csum_off + 2 :],
        ))
        self._snap = self._snapshot()

    def rewrite_eth(
        self,
        src: Optional[MacAddress] = None,
        dst: Optional[MacAddress] = None,
    ) -> None:
        """Rewrite Ethernet addresses, patching the cached wire image.

        The Ethernet header carries no checksum, so a routed hop's MAC
        rewrite is a pure byte splice when the cache is valid.
        """
        cache_ok = self._cache_valid()
        wire = self._wire
        eth = self.eth  # materialises a private header if CoW-shared
        if src is not None:
            eth.src = MacAddress(src)
        if dst is not None:
            eth.dst = MacAddress(dst)
        if cache_ok:
            self._wire = eth.dst.to_bytes() + eth.src.to_bytes() + wire[12:]
            self._snap = self._snapshot()

    # ------------------------------------------------------------------
    # duplication / identity
    # ------------------------------------------------------------------
    def copy(self) -> "Packet":
        """Copy-on-write duplicate — what a hub emits on each branch.

        Headers and payload are shared with the original and marked
        shared; the first mutating access on either side (through the
        packet's header properties) materialises a private header copy.
        A valid cached wire image is shared too, so a k-way fan-out
        serialises — and the compare element vote-keys — the frame once.
        """
        new = Packet.__new__(Packet)
        eth, vlan, ip, l4 = self._eth, self._vlan, self._ip, self._l4
        hset = object.__setattr__
        cow = _COW_ETH
        hset(eth, "_shared", True)
        if vlan is not None:
            cow |= _COW_VLAN
            hset(vlan, "_shared", True)
        if ip is not None:
            cow |= _COW_IP
            hset(ip, "_shared", True)
        if l4 is not None:
            cow |= _COW_L4
            hset(l4, "_shared", True)
        new._eth = eth
        new._vlan = vlan
        new._ip = ip
        new._l4 = l4
        new._payload = self._payload
        new.meta = None
        new.trace_id = self.trace_id
        new._cow = cow
        self._cow |= cow
        if self._wire is not None and self._cache_valid():
            new._wire = self._wire
            new._snap = self._snap
        else:
            new._wire = None
            new._snap = None
        return new

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Packet):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def summary(self) -> str:
        """Short human-readable description (tcpdump-ish one-liner)."""
        eth, vlan, ip, l4, _payload = self.fields()
        parts = [f"{eth.src}>{eth.dst}"]
        if vlan is not None:
            parts.append(f"vlan{vlan.vid}")
        if ip is not None:
            parts.append(f"{ip.src}>{ip.dst}")
        if l4 is not None:
            parts.append(repr(l4))
        parts.append(f"{self.wire_len}B")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Packet({self.summary()})"


class PacketBatch:
    """A packet train: one header template plus per-packet deltas.

    Batches carry the N packets of a CBR train through the data plane as
    one object.  Packet ``0`` *is* the template; packet ``i`` differs
    from it only in its IPv4 ident and the leading ``heads[i]`` bytes of
    its payload (for UDP trains: the 12-byte seq/timestamp header).  The
    per-packet wire images live in one contiguous buffer: the template
    is serialised once — one vectorised RFC 1071 checksum pass — then
    stamped N times and each copy gets constant-time RFC 1624 patches
    for its ident, payload head, and the two checksums that cover them.
    The result is bit-identical to serialising each packet from scratch
    (property-tested in ``tests/test_packet_batch.py``).

    ``seqs``/``ts_ns`` are opaque traffic-layer annotations (the decoded
    form of the head bytes) so receivers can do per-seq accounting
    without parsing payloads.  :meth:`packet_at` lazily materialises a
    real :class:`Packet` — with a pre-warmed wire cache — wherever the
    pipeline must fall back to per-packet handling.
    """

    __slots__ = (
        "template",
        "count",
        "heads",
        "idents",
        "seqs",
        "ts_ns",
        "wire_len",
        "payload_size",
        "_packets",
        "_buffer",
        "_patchable",
    )

    def __init__(
        self,
        template: Packet,
        heads: List[bytes],
        idents: List[int],
        seqs: Optional[List[int]] = None,
        ts_ns: Optional[List[int]] = None,
    ) -> None:
        count = len(heads)
        if count < 1:
            raise PacketError("empty packet batch")
        if len(idents) != count:
            raise PacketError("idents/heads length mismatch")
        payload = template._payload
        for head in heads:
            if len(head) > len(payload):
                raise PacketError("payload head longer than template payload")
        self.template = template
        self.count = count
        self.heads = heads
        self.idents = idents
        self.seqs = seqs
        self.ts_ns = ts_ns
        self.wire_len = template.wire_len
        self.payload_size = len(payload)
        self._packets: Optional[List[Optional[Packet]]] = None
        self._buffer: Optional[bytearray] = None
        eth, vlan, ip, l4, _ = template.fields()
        self._patchable = (
            vlan is None and ip is not None and isinstance(l4, Udp)
        )

    # ------------------------------------------------------------------
    # wire images
    # ------------------------------------------------------------------
    def wire_buffer(self) -> bytearray:
        """The contiguous buffer of all ``count`` wire images."""
        buf = self._buffer
        if buf is None:
            buf = self._build_buffer()
            self._buffer = buf
        return buf

    def _build_buffer(self) -> bytearray:
        wire0 = self.template.to_bytes()
        wl = len(wire0)
        if not self._patchable:
            # generic (rare) shape: serialise each packet independently
            parts = [wire0]
            for i in range(1, self.count):
                parts.append(self._construct(i).to_bytes())
            return bytearray(b"".join(parts))
        buf = bytearray(wire0 * self.count)
        ident0 = (wire0[18] << 8) | wire0[19]
        ipc0 = (wire0[24] << 8) | wire0[25]
        udpc0 = (wire0[40] << 8) | wire0[41]
        head0 = bytes(wire0[42:])
        idents = self.idents
        heads = self.heads
        for i in range(1, self.count):
            base = i * wl
            ident = idents[i]
            if ident != ident0:
                ipc = incremental_checksum_update(ipc0, ident0, ident)
                buf[base + 18] = ident >> 8
                buf[base + 19] = ident & 0xFF
                buf[base + 24] = ipc >> 8
                buf[base + 25] = ipc & 0xFF
            head = heads[i]
            hl = len(head)
            if hl & 1:  # word-align the patched region
                head = head + head0[hl : hl + 1]
                hl += 1
            if head != head0[:hl]:
                # RFC 1624 over every payload word the head rewrites
                total = ~udpc0 & 0xFFFF
                for off in range(0, hl, 2):
                    old_w = (head0[off] << 8) | head0[off + 1]
                    new_w = (head[off] << 8) | head[off + 1]
                    total += (~old_w & 0xFFFF) + new_w
                while total >> 16:
                    total = (total & 0xFFFF) + (total >> 16)
                udpc = (~total) & 0xFFFF
                buf[base + 42 : base + 42 + hl] = head
                buf[base + 40] = udpc >> 8
                buf[base + 41] = udpc & 0xFF
        return buf

    # ------------------------------------------------------------------
    # per-packet materialisation (the fallback boundary)
    # ------------------------------------------------------------------
    def packet_at(self, i: int) -> Packet:
        """Materialise packet ``i`` (memoised; ``0`` is the template)."""
        pkts = self._packets
        if pkts is None:
            pkts = self._packets = [None] * self.count
        pkt = pkts[i]
        if pkt is None:
            if i == 0:
                pkt = self.template
            else:
                pkt = self._construct(i)
                wl = self.wire_len
                buf = self.wire_buffer()
                pkt._wire = bytes(buf[i * wl : (i + 1) * wl])
                pkt._snap = pkt._snapshot()
            pkts[i] = pkt
        return pkt

    def _construct(self, i: int) -> Packet:
        """Build packet ``i``'s header stack (no wire cache)."""
        t = self.template
        eth, vlan, ip, l4, payload = t.fields()
        head = self.heads[i]
        new_ip = ip.copy() if ip is not None else None
        if new_ip is not None:
            new_ip.ident = self.idents[i]
        return Packet(
            eth.copy(),
            new_ip,
            l4.copy() if l4 is not None else None,
            head + payload[len(head) :],
            vlan=vlan.copy() if vlan is not None else None,
        )

    def packets(self) -> List[Packet]:
        """Materialise every packet of the train, in order."""
        return [self.packet_at(i) for i in range(self.count)]

    # ------------------------------------------------------------------
    # batch-level rewrites: patch every cached wire image in one sweep
    # ------------------------------------------------------------------
    def decrement_ttl(self, delta: int = 1) -> None:
        """Decrement TTL across the train (template, buffer, packets)."""
        buf = self._buffer
        if buf is not None and self._patchable:
            wl = self.wire_len
            for i in range(self.count):
                base = i * wl
                ttl = buf[base + 22]
                new_ttl = ttl - delta
                if not 0 <= new_ttl <= 255:
                    raise PacketError(f"TTL out of range after decrement: {new_ttl}")
                csum = (buf[base + 24] << 8) | buf[base + 25]
                proto = buf[base + 23]
                csum = incremental_checksum_update(
                    csum, (ttl << 8) | proto, (new_ttl << 8) | proto
                )
                buf[base + 22] = new_ttl
                buf[base + 24] = csum >> 8
                buf[base + 25] = csum & 0xFF
        elif buf is not None:
            self._buffer = None  # generic shape: rebuild lazily
        pkts = self._packets
        if pkts is not None:
            for pkt in pkts:
                if pkt is not None:
                    pkt.decrement_ttl(delta)
            if pkts[0] is None:
                self.template.decrement_ttl(delta)
        else:
            self.template.decrement_ttl(delta)

    def rewrite_eth(
        self,
        src: Optional[MacAddress] = None,
        dst: Optional[MacAddress] = None,
    ) -> None:
        """Rewrite Ethernet addresses across the train in one sweep."""
        buf = self._buffer
        if buf is not None:
            wl = self.wire_len
            src_b = src.to_bytes() if src is not None else None
            dst_b = dst.to_bytes() if dst is not None else None
            for i in range(self.count):
                base = i * wl
                if dst_b is not None:
                    buf[base : base + 6] = dst_b
                if src_b is not None:
                    buf[base + 6 : base + 12] = src_b
        pkts = self._packets
        if pkts is not None:
            for pkt in pkts:
                if pkt is not None:
                    pkt.rewrite_eth(src=src, dst=dst)
            if pkts[0] is None:
                self.template.rewrite_eth(src=src, dst=dst)
        else:
            self.template.rewrite_eth(src=src, dst=dst)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"PacketBatch({self.count}x {self.template.summary()})"
