"""Packet model: Ethernet / 802.1Q / IPv4 / UDP / TCP / ICMP.

Headers are small mutable dataclass-like objects with deterministic binary
encodings (network byte order, real Internet checksums).  Determinism
matters because the NetCo compare element votes on *exact packet bytes*,
mirroring the ``memcmp`` comparison in the paper's C prototype: two benign
routers forwarding the same packet must yield bit-identical buffers, while
any adversarial header rewrite must change the buffer.

A :class:`Packet` is a stack ``ethernet [vlan] [ipv4 [udp|tcp|icmp]]`` plus
an opaque payload.  ``Packet.to_bytes()`` serialises the full frame and
``Packet.parse()`` round-trips it.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple, Union

from repro.net.addresses import IpAddress, MacAddress

# EtherTypes
ETH_TYPE_IPV4 = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100

# IP protocol numbers
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

# TCP flags
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
# The ECE bit position, reused to signal "this duplicate ACK carries a
# DSACK block" (RFC 2883).  Our 20-byte header has no options space, so
# the receiver flags DSACK-bearing ACKs here and a SACK-capable sender
# excludes them from its duplicate-ACK count — the behaviour that lets
# real Linux TCP shrug off the duplicated deliveries of the Dup3/Dup5
# scenarios instead of collapsing under spurious fast retransmits.
TCP_DSACK = 0x40

# ICMP types
ICMP_ECHO_REPLY = 0
ICMP_ECHO_REQUEST = 8

ETHERNET_HEADER_LEN = 14
VLAN_TAG_LEN = 4
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20
ICMP_HEADER_LEN = 8


class PacketError(Exception):
    """Raised on malformed packet construction or parsing."""


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Ethernet:
    """Ethernet II header (no FCS; the simulator has no bit errors)."""

    __slots__ = ("dst", "src", "ethertype")

    def __init__(
        self,
        dst: MacAddress,
        src: MacAddress,
        ethertype: int = ETH_TYPE_IPV4,
    ) -> None:
        self.dst = MacAddress(dst)
        self.src = MacAddress(src)
        self.ethertype = ethertype

    def to_bytes(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Ethernet", bytes]:
        if len(data) < ETHERNET_HEADER_LEN:
            raise PacketError("truncated Ethernet header")
        dst = MacAddress(data[0:6])
        src = MacAddress(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst, src, ethertype), data[14:]

    def copy(self) -> "Ethernet":
        return Ethernet(self.dst, self.src, self.ethertype)

    def __repr__(self) -> str:
        return f"Ethernet({self.src} -> {self.dst}, type={self.ethertype:#06x})"


class Vlan:
    """An 802.1Q tag (PCP + VID); inserted after the Ethernet header."""

    __slots__ = ("vid", "pcp")

    def __init__(self, vid: int, pcp: int = 0) -> None:
        if not 0 <= vid < 4096:
            raise PacketError(f"VLAN id out of range: {vid}")
        if not 0 <= pcp < 8:
            raise PacketError(f"VLAN priority out of range: {pcp}")
        self.vid = vid
        self.pcp = pcp

    def to_bytes(self, inner_ethertype: int) -> bytes:
        tci = (self.pcp << 13) | self.vid
        return struct.pack("!HH", tci, inner_ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Vlan", int, bytes]:
        if len(data) < VLAN_TAG_LEN:
            raise PacketError("truncated VLAN tag")
        tci, inner_ethertype = struct.unpack("!HH", data[:4])
        return cls(vid=tci & 0x0FFF, pcp=tci >> 13), inner_ethertype, data[4:]

    def copy(self) -> "Vlan":
        return Vlan(self.vid, self.pcp)

    def __repr__(self) -> str:
        return f"Vlan(vid={self.vid}, pcp={self.pcp})"


class Ipv4:
    """IPv4 header (20 bytes, no options)."""

    __slots__ = ("src", "dst", "proto", "ttl", "ident", "tos", "total_length")

    def __init__(
        self,
        src: IpAddress,
        dst: IpAddress,
        proto: int,
        ttl: int = 64,
        ident: int = 0,
        tos: int = 0,
    ) -> None:
        self.src = IpAddress(src)
        self.dst = IpAddress(dst)
        self.proto = proto
        self.ttl = ttl
        self.ident = ident & 0xFFFF
        self.tos = tos
        # Filled in at serialisation time from actual packet contents.
        self.total_length = 0

    def to_bytes(self, payload_len: int) -> bytes:
        self.total_length = IPV4_HEADER_LEN + payload_len
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version=4, ihl=5
            self.tos,
            self.total_length,
            self.ident,
            0,  # flags/fragment offset: never fragmented in the simulator
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Ipv4", bytes]:
        if len(data) < IPV4_HEADER_LEN:
            raise PacketError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_length,
            ident,
            _frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if ver_ihl >> 4 != 4:
            raise PacketError(f"not an IPv4 packet (version={ver_ihl >> 4})")
        if internet_checksum(data[:20]) != 0:
            raise PacketError("bad IPv4 header checksum")
        header = cls(IpAddress(src), IpAddress(dst), proto, ttl=ttl, ident=ident, tos=tos)
        header.total_length = total_length
        return header, data[20:]

    def copy(self) -> "Ipv4":
        dup = Ipv4(self.src, self.dst, self.proto, ttl=self.ttl, ident=self.ident, tos=self.tos)
        dup.total_length = self.total_length
        return dup

    def __repr__(self) -> str:
        return f"Ipv4({self.src} -> {self.dst}, proto={self.proto}, ttl={self.ttl})"


class Udp:
    """UDP header.  Checksum computed over the standard pseudo-header."""

    __slots__ = ("sport", "dport")

    def __init__(self, sport: int, dport: int) -> None:
        for port in (sport, dport):
            if not 0 <= port < 65536:
                raise PacketError(f"port out of range: {port}")
        self.sport = sport
        self.dport = dport

    def to_bytes(self, ip: Ipv4, payload: bytes) -> bytes:
        length = UDP_HEADER_LEN + len(payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        pseudo = ip.src.to_bytes() + ip.dst.to_bytes() + struct.pack(
            "!BBH", 0, IP_PROTO_UDP, length
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:6] + struct.pack("!H", checksum)

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Udp", bytes]:
        if len(data) < UDP_HEADER_LEN:
            raise PacketError("truncated UDP header")
        sport, dport, length, _checksum = struct.unpack("!HHHH", data[:8])
        if length < UDP_HEADER_LEN or length > len(data):
            raise PacketError(f"bad UDP length {length}")
        return cls(sport, dport), data[8:length]

    def copy(self) -> "Udp":
        return Udp(self.sport, self.dport)

    def __repr__(self) -> str:
        return f"Udp({self.sport} -> {self.dport})"


class Tcp:
    """TCP header (20 bytes, no options)."""

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window")

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
    ) -> None:
        for port in (sport, dport):
            if not 0 <= port < 65536:
                raise PacketError(f"port out of range: {port}")
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window & 0xFFFF

    def flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def to_bytes(self, ip: Ipv4, payload: bytes) -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            5 << 4,  # data offset = 5 words
            self.flags,
            self.window,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        pseudo = ip.src.to_bytes() + ip.dst.to_bytes() + struct.pack(
            "!BBH", 0, IP_PROTO_TCP, TCP_HEADER_LEN + len(payload)
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Tcp", bytes]:
        if len(data) < TCP_HEADER_LEN:
            raise PacketError("truncated TCP header")
        sport, dport, seq, ack, offset_byte, flags, window, _checksum, _urg = struct.unpack(
            "!HHIIBBHHH", data[:20]
        )
        data_offset = (offset_byte >> 4) * 4
        if data_offset < TCP_HEADER_LEN or data_offset > len(data):
            raise PacketError(f"bad TCP data offset {data_offset}")
        header = cls(sport, dport, seq=seq, ack=ack, flags=flags, window=window)
        return header, data[data_offset:]

    def copy(self) -> "Tcp":
        return Tcp(self.sport, self.dport, self.seq, self.ack, self.flags, self.window)

    def flags_str(self) -> str:
        names = [
            ("S", TCP_SYN),
            ("A", TCP_ACK),
            ("F", TCP_FIN),
            ("R", TCP_RST),
            ("P", TCP_PSH),
        ]
        return "".join(n for n, m in names if self.flags & m) or "."

    def __repr__(self) -> str:
        return (
            f"Tcp({self.sport} -> {self.dport}, seq={self.seq}, "
            f"ack={self.ack}, flags={self.flags_str()})"
        )


class Icmp:
    """ICMP echo request/reply header."""

    __slots__ = ("icmp_type", "code", "ident", "seqno")

    def __init__(self, icmp_type: int, code: int = 0, ident: int = 0, seqno: int = 0) -> None:
        self.icmp_type = icmp_type
        self.code = code
        self.ident = ident & 0xFFFF
        self.seqno = seqno & 0xFFFF

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == ICMP_ECHO_REPLY

    def to_bytes(self, payload: bytes) -> bytes:
        header = struct.pack("!BBHHH", self.icmp_type, self.code, 0, self.ident, self.seqno)
        checksum = internet_checksum(header + payload)
        return header[:2] + struct.pack("!H", checksum) + header[4:]

    @classmethod
    def from_bytes(cls, data: bytes) -> Tuple["Icmp", bytes]:
        if len(data) < ICMP_HEADER_LEN:
            raise PacketError("truncated ICMP header")
        icmp_type, code, _checksum, ident, seqno = struct.unpack("!BBHHH", data[:8])
        return cls(icmp_type, code, ident, seqno), data[8:]

    def copy(self) -> "Icmp":
        return Icmp(self.icmp_type, self.code, self.ident, self.seqno)

    def __repr__(self) -> str:
        kind = {0: "echo-reply", 8: "echo-request"}.get(self.icmp_type, str(self.icmp_type))
        return f"Icmp({kind}, id={self.ident}, seq={self.seqno})"


TransportHeader = Union[Udp, Tcp, Icmp]


class Packet:
    """A full frame: Ethernet, optional VLAN tag, optional IPv4+transport.

    Instances are mutable (adversaries rewrite headers in place on their
    copy); :meth:`copy` produces a deep, independent duplicate as a hub
    would.  Equality and hashing are defined over the serialised bytes,
    which is exactly the comparison the NetCo compare element performs.
    """

    __slots__ = ("eth", "vlan", "ip", "l4", "payload", "meta")

    def __init__(
        self,
        eth: Ethernet,
        ip: Optional[Ipv4] = None,
        l4: Optional[TransportHeader] = None,
        payload: bytes = b"",
        vlan: Optional[Vlan] = None,
    ) -> None:
        if l4 is not None and ip is None:
            raise PacketError("transport header requires an IPv4 header")
        self.eth = eth
        self.vlan = vlan
        self.ip = ip
        self.l4 = l4
        self.payload = payload
        # Out-of-band metadata (e.g. the combiner branch id a trusted mux
        # attaches before handing a packet to the compare — the simulator
        # analogue of the in_port field of an OpenFlow Packet-in).  Never
        # serialised, never part of equality, never survives copy().
        self.meta: Optional[dict] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def udp(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        sport: int,
        dport: int,
        payload: bytes = b"",
        ttl: int = 64,
        ident: int = 0,
        vlan: Optional[Vlan] = None,
    ) -> "Packet":
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_UDP, ttl=ttl, ident=ident),
            Udp(sport, dport),
            payload,
            vlan=vlan,
        )

    @classmethod
    def tcp(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        payload: bytes = b"",
        ttl: int = 64,
        ident: int = 0,
    ) -> "Packet":
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_TCP, ttl=ttl, ident=ident),
            Tcp(sport, dport, seq=seq, ack=ack, flags=flags, window=window),
            payload,
        )

    @classmethod
    def icmp_echo(
        cls,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        src_ip: IpAddress,
        dst_ip: IpAddress,
        ident: int,
        seqno: int,
        reply: bool = False,
        payload: bytes = b"",
        ttl: int = 64,
        ip_ident: int = 0,
    ) -> "Packet":
        icmp_type = ICMP_ECHO_REPLY if reply else ICMP_ECHO_REQUEST
        return cls(
            Ethernet(dst_mac, src_mac, ETH_TYPE_IPV4),
            Ipv4(src_ip, dst_ip, IP_PROTO_ICMP, ttl=ttl, ident=ip_ident),
            Icmp(icmp_type, ident=ident, seqno=seqno),
            payload,
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the full frame deterministically."""
        parts: List[bytes] = []
        inner_type = self.eth.ethertype
        if self.vlan is not None:
            parts.append(
                self.eth.dst.to_bytes()
                + self.eth.src.to_bytes()
                + struct.pack("!H", ETH_TYPE_VLAN)
            )
            parts.append(self.vlan.to_bytes(inner_type))
        else:
            parts.append(self.eth.to_bytes())
        if self.ip is not None:
            l4_bytes = b""
            if isinstance(self.l4, Udp):
                l4_bytes = self.l4.to_bytes(self.ip, self.payload)
            elif isinstance(self.l4, Tcp):
                l4_bytes = self.l4.to_bytes(self.ip, self.payload)
            elif isinstance(self.l4, Icmp):
                l4_bytes = self.l4.to_bytes(self.payload)
            parts.append(self.ip.to_bytes(len(l4_bytes) + len(self.payload)))
            parts.append(l4_bytes)
            parts.append(self.payload)
        else:
            parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        """Parse a frame produced by :meth:`to_bytes` (round-trip safe)."""
        eth, rest = Ethernet.from_bytes(data)
        vlan = None
        if eth.ethertype == ETH_TYPE_VLAN:
            vlan, inner_type, rest = Vlan.from_bytes(rest)
            eth.ethertype = inner_type
        if eth.ethertype != ETH_TYPE_IPV4:
            return cls(eth, payload=rest, vlan=vlan)
        ip, rest = Ipv4.from_bytes(rest)
        rest = rest[: ip.total_length - IPV4_HEADER_LEN]
        l4: Optional[TransportHeader] = None
        payload = rest
        if ip.proto == IP_PROTO_UDP:
            l4, payload = Udp.from_bytes(rest)
        elif ip.proto == IP_PROTO_TCP:
            l4, payload = Tcp.from_bytes(rest)
        elif ip.proto == IP_PROTO_ICMP:
            l4, payload = Icmp.from_bytes(rest)
        return cls(eth, ip, l4, payload, vlan=vlan)

    @property
    def wire_len(self) -> int:
        """Frame length in bytes on the wire."""
        length = ETHERNET_HEADER_LEN + len(self.payload)
        if self.vlan is not None:
            length += VLAN_TAG_LEN
        if self.ip is not None:
            length += IPV4_HEADER_LEN
            if isinstance(self.l4, Udp):
                length += UDP_HEADER_LEN
            elif isinstance(self.l4, Tcp):
                length += TCP_HEADER_LEN
            elif isinstance(self.l4, Icmp):
                length += ICMP_HEADER_LEN
        return length

    # ------------------------------------------------------------------
    # duplication / identity
    # ------------------------------------------------------------------
    def copy(self) -> "Packet":
        """Deep copy — what a hub emits on each redundant branch."""
        return Packet(
            self.eth.copy(),
            self.ip.copy() if self.ip is not None else None,
            self.l4.copy() if self.l4 is not None else None,
            self.payload,
            vlan=self.vlan.copy() if self.vlan is not None else None,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:
        return hash(self.to_bytes())

    def summary(self) -> str:
        """Short human-readable description (tcpdump-ish one-liner)."""
        parts = [f"{self.eth.src}>{self.eth.dst}"]
        if self.vlan is not None:
            parts.append(f"vlan{self.vlan.vid}")
        if self.ip is not None:
            parts.append(f"{self.ip.src}>{self.ip.dst}")
        if self.l4 is not None:
            parts.append(repr(self.l4))
        parts.append(f"{self.wire_len}B")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Packet({self.summary()})"
