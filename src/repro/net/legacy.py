"""A legacy (non-OpenFlow) IPv4 router.

Section IX: "while we have so far focused on building a secure router
out of insecure OpenFlow switches, we believe that our approach can
easily be extended to legacy routers."  This module provides that other
kind of untrusted device: a classic longest-prefix-match IPv4 router
with static routes, neighbour (ARP-table) entries, TTL handling and
ICMP Time Exceeded generation.

Because a legacy router rewrites the Ethernet header on every hop (its
own MAC as source, the next hop's as destination), combiner deployments
over legacy routers vote with a source-masked policy — see
``tests/test_legacy.py`` for the end-to-end demonstration.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.net.addresses import IpAddress, MacAddress
from repro.net.node import Node, Port
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    Icmp,
    Ipv4,
    Packet,
)
from repro.sim import CpuResource, Simulator, TraceBus

#: ICMP type 11 = Time Exceeded
ICMP_TIME_EXCEEDED = 11


class RouteEntry(NamedTuple):
    """One static route: destination prefix -> egress."""

    prefix: IpAddress
    prefix_len: int
    out_port: int
    next_hop_mac: MacAddress

    def matches(self, ip: IpAddress) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (int(ip) >> shift) == (int(self.prefix) >> shift)


class LegacyRouter(Node):
    """Static LPM IPv4 router (an untrusted black box to the combiner)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: Optional[IpAddress] = None,
        trace_bus: Optional[TraceBus] = None,
        proc_time: float = 0.0,
        cpu: Optional[CpuResource] = None,
        accept_any_dst_mac: bool = False,
    ) -> None:
        super().__init__(sim, name, trace_bus)
        self.mac = MacAddress(mac)
        self.ip = IpAddress(ip) if ip is not None else None
        self.proc_time = proc_time
        self.cpu = cpu if cpu is not None else CpuResource(f"{name}.cpu")
        # accept frames not addressed to us (promiscuous L3 hop) — useful
        # when a hub feeds copies without rewriting the destination MAC
        self.accept_any_dst_mac = accept_any_dst_mac
        self._routes: List[RouteEntry] = []
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.dropped_not_for_us = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_route(
        self,
        prefix: IpAddress,
        prefix_len: int,
        out_port: int,
        next_hop_mac: MacAddress,
    ) -> None:
        """Install a static route; kept sorted longest-prefix-first."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        self._routes.append(
            RouteEntry(IpAddress(prefix), prefix_len, out_port, MacAddress(next_hop_mac))
        )
        self._routes.sort(key=lambda r: -r.prefix_len)

    def add_default_route(self, out_port: int, next_hop_mac: MacAddress) -> None:
        self.add_route(IpAddress(0), 0, out_port, next_hop_mac)

    def lookup(self, ip: IpAddress) -> Optional[RouteEntry]:
        """Longest-prefix-match lookup."""
        for route in self._routes:
            if route.matches(ip):
                return route
        return None

    @property
    def route_count(self) -> int:
        return len(self._routes)

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, in_port: Port) -> None:
        if self.proc_time <= 0.0:
            self._forward(packet, in_port.port_no)
            return
        finish = self.cpu.acquire(self.sim.now, self.proc_time)
        self.sim.schedule_at(finish, lambda: self._forward(packet, in_port.port_no))

    def _forward(self, packet: Packet, in_port_no: int) -> None:
        eth, _vlan, ip, _l4, _payload = packet.fields()  # read-only access
        if (
            not self.accept_any_dst_mac
            and eth.dst != self.mac
            and not eth.dst.is_broadcast
        ):
            self.dropped_not_for_us += 1
            self.trace("legacy.not_for_us", packet=packet)
            return
        if ip is None:
            self.dropped_no_route += 1
            self.trace("legacy.non_ip", packet=packet)
            return
        if ip.ttl <= 1:
            self.dropped_ttl += 1
            self.trace("legacy.ttl_exceeded", packet=packet)
            self._send_time_exceeded(packet, in_port_no)
            return
        route = self.lookup(ip.dst)
        if route is None:
            self.dropped_no_route += 1
            self.trace("legacy.no_route", dst=str(ip.dst))
            return
        out = self.ports.get(route.out_port)
        if out is None or not out.is_wired:
            self.dropped_no_route += 1
            return
        hop = packet.copy()
        # Both rewrites patch a valid cached wire image in place (RFC 1624
        # incremental checksum for the TTL) instead of re-serialising.
        hop.decrement_ttl()
        hop.rewrite_eth(src=self.mac, dst=route.next_hop_mac)
        out.send(hop)
        self.forwarded += 1

    def _send_time_exceeded(self, packet: Packet, in_port_no: int) -> None:
        """ICMP Time Exceeded back toward the source (traceroute food)."""
        if self.ip is None or packet.ip is None:
            return
        if isinstance(packet.l4, Icmp) and packet.l4.icmp_type in (
            ICMP_TIME_EXCEEDED,
            ICMP_ECHO_REPLY,
        ):
            return  # never ICMP-error an ICMP error
        route = self.lookup(packet.ip.src)
        if route is None:
            return
        out = self.ports.get(route.out_port)
        if out is None or not out.is_wired:
            return
        # RFC 792: the error quotes the offending IP header + 8 bytes
        quoted = packet.to_bytes()
        offset = 14 + (4 if packet.vlan is not None else 0)
        payload = quoted[offset : offset + 28]
        error = Packet(
            eth=packet.eth.copy(),
            ip=Ipv4(self.ip, packet.ip.src, 1, ttl=64),
            l4=Icmp(ICMP_TIME_EXCEEDED, code=0),
            payload=payload,
        )
        error.eth.src = self.mac
        error.eth.dst = route.next_hop_mac
        out.send(error)
