"""PCAP capture of simulated traffic.

:class:`PcapWriter` serialises frames observed at any port tap into a
standard libpcap file (magic ``0xa1b2c3d4``, LINKTYPE_ETHERNET), so a
simulated run can be opened in Wireshark/tcpdump.  Because our packet
encodings are real (proper Ethernet/IP/UDP/TCP/ICMP headers with valid
checksums), the dissectors decode them natively.

Typical use::

    writer = PcapWriter("run.pcap")
    writer.attach(host.port(1), network.sim)   # tcpdump -i h1-eth0
    ... run the simulation ...
    writer.close()
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Optional, Union

from repro.net.node import Port
from repro.net.packet import Packet
from repro.sim import Simulator

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Write simulated frames to a libpcap file."""

    def __init__(
        self,
        destination: Union[str, BinaryIO],
        snaplen: int = 65535,
    ) -> None:
        if isinstance(destination, str):
            self._file: BinaryIO = open(destination, "wb")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self.snaplen = snaplen
        self.frames_written = 0
        self._closed = False
        self._file.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                PCAP_VERSION[0],
                PCAP_VERSION[1],
                0,  # timezone
                0,  # sigfigs
                snaplen,
                LINKTYPE_ETHERNET,
            )
        )

    # ------------------------------------------------------------------
    def write(self, packet: Packet, timestamp: float) -> None:
        """Append one frame with the given simulated timestamp."""
        if self._closed:
            raise ValueError("writer is closed")
        raw = packet.to_bytes()
        captured = raw[: self.snaplen]
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        self._file.write(
            _RECORD_HEADER.pack(seconds, micros, len(captured), len(raw))
        )
        self._file.write(captured)
        self.frames_written += 1

    def attach(self, port: Port, sim: Optional[Simulator] = None) -> None:
        """Tap a port: every received frame is captured with the
        simulation timestamp."""
        clock = sim if sim is not None else port.node.sim

        def tap(packet: Packet) -> None:
            if not self._closed:
                self.write(packet, clock.now)

        port.taps.append(tap)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_pcap(source: Union[str, BinaryIO]):
    """Parse a pcap file back into ``[(timestamp, Packet), ...]``.

    Round-trip helper used by the tests; also handy for post-run
    analysis of captures without external tooling.
    """
    if isinstance(source, str):
        stream: BinaryIO = open(source, "rb")
        owns = True
    else:
        stream = source
        owns = False
    try:
        header = stream.read(_GLOBAL_HEADER.size)
        magic, vmaj, vmin, _tz, _sig, _snaplen, linktype = _GLOBAL_HEADER.unpack(
            header
        )
        if magic != PCAP_MAGIC:
            raise ValueError(f"not a pcap file (magic {magic:#x})")
        if linktype != LINKTYPE_ETHERNET:
            raise ValueError(f"unsupported link type {linktype}")
        frames = []
        while True:
            record = stream.read(_RECORD_HEADER.size)
            if len(record) < _RECORD_HEADER.size:
                break
            seconds, micros, incl_len, _orig_len = _RECORD_HEADER.unpack(record)
            raw = stream.read(incl_len)
            frames.append((seconds + micros / 1e6, Packet.parse(raw)))
        return frames
    finally:
        if owns:
            stream.close()
