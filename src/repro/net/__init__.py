"""Network substrate: packets, links, nodes, hosts, topologies."""

from repro.net.addresses import IpAddress, MacAddress
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpPayload, ArpService, attach_arp
from repro.net.fattree import FatTree, build_fat_tree
from repro.net.host import Host
from repro.net.legacy import ICMP_TIME_EXCEEDED, LegacyRouter, RouteEntry
from repro.net.link import Link, LinkStats
from repro.net.node import NetworkError, Node, Port
from repro.net.pcap import PcapWriter, read_pcap
from repro.net.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IPV4,
    ETH_TYPE_VLAN,
    Ethernet,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Icmp,
    Ipv4,
    Packet,
    PacketError,
    TCP_ACK,
    TCP_DSACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    Tcp,
    Udp,
    Vlan,
    internet_checksum,
)
from repro.net.topology import Network

__all__ = [
    "IpAddress",
    "MacAddress",
    "ARP_REPLY",
    "ARP_REQUEST",
    "ArpPayload",
    "ArpService",
    "attach_arp",
    "FatTree",
    "build_fat_tree",
    "Host",
    "ICMP_TIME_EXCEEDED",
    "LegacyRouter",
    "RouteEntry",
    "Link",
    "LinkStats",
    "NetworkError",
    "PcapWriter",
    "read_pcap",
    "Node",
    "Port",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IPV4",
    "ETH_TYPE_VLAN",
    "Ethernet",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "Icmp",
    "Ipv4",
    "Packet",
    "PacketError",
    "TCP_ACK",
    "TCP_DSACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "Tcp",
    "Udp",
    "Vlan",
    "internet_checksum",
    "Network",
]
