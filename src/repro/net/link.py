"""Duplex link model with bandwidth, delay, loss and drop-tail queueing.

Each direction of a link is an independent transmitter: packets are
serialised at the link rate (``wire_len * 8 / rate_bps`` seconds), waiting
packets occupy a bounded drop-tail queue, and delivery to the far end is
delayed by the propagation delay.  Random loss (if configured) is drawn
from a named RNG stream so runs are reproducible.

This is the simulator analogue of Mininet's ``TCLink``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.metrics import active_registry
from repro.sim import RngStreams, Simulator, TraceBus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.net.node import Port
    from repro.net.packet import Packet


class LinkStats:
    """Per-direction link counters."""

    __slots__ = (
        "tx_packets",
        "tx_bytes",
        "delivered_packets",
        "delivered_bytes",
        "queue_drops",
        "loss_drops",
        "fault_drops",
    )

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.queue_drops = 0
        self.loss_drops = 0
        self.fault_drops = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _Direction:
    """One direction of a duplex link (a single-server FIFO transmitter)."""

    def __init__(
        self,
        link: "Link",
        name: str,
        rate_bps: Optional[float],
        delay: float,
        loss: float,
        queue_capacity: int,
    ) -> None:
        self._link = link
        self._name = name
        self._rate_bps = rate_bps
        self._delay = delay
        self._loss = loss
        # Optional stateful loss model (chaos bursts); when set it
        # replaces the independent Bernoulli draw entirely.
        self._loss_model: Optional[Callable[[], bool]] = None
        self._queue_capacity = queue_capacity
        self._busy_until = 0.0
        self._queued = 0  # packets serialised or waiting to serialise
        self.stats = LinkStats()
        # Metrics are bound from the registry active at construction
        # time; a disabled registry binds None and the hot path pays one
        # `is not None` test per packet.
        registry = active_registry()
        self._h_queue_delay = (
            registry.histogram(
                "link_queue_delay_seconds",
                "time a frame waits for the transmitter before serialising",
                labelnames=("link",),
            ).labels(name)
            if registry.enabled
            else None
        )

    def transmit(self, packet: "Packet", deliver_to: "Port") -> None:
        sim = self._link.sim
        now = sim.now
        if self._link.is_down:
            self.stats.fault_drops += 1
            self._link.trace(now, "link.drop", self._name, reason="down", packet=packet)
            return
        if self._queued >= self._queue_capacity:
            self.stats.queue_drops += 1
            self._link.trace(now, "link.drop", self._name, reason="queue", packet=packet)
            return
        wire_len = packet.wire_len
        self.stats.tx_packets += 1
        self.stats.tx_bytes += wire_len
        if self._rate_bps is None:
            start = finish = now
        else:
            start = max(now, self._busy_until)
            finish = start + wire_len * 8.0 / self._rate_bps
            self._busy_until = finish
        self._queued += 1
        arrive = finish + self._delay
        if self._h_queue_delay is not None:
            self._h_queue_delay.observe(start - now)
        if packet.trace_id is not None:
            self._link.trace(
                now,
                "link.tx",
                self._name,
                trace=packet.trace_id,
                queue_depth=self._queued,
                queue_delay=start - now,
            )

        if self._loss_model is not None:
            lost = self._loss_model()
        elif self._loss > 0.0:
            lost = self._link.rng.random() < self._loss
        else:
            lost = False

        def _complete() -> None:
            self._queued -= 1
            if lost:
                self.stats.loss_drops += 1
                self._link.trace(
                    sim.now, "link.drop", self._name, reason="loss", packet=packet
                )
                return
            self.stats.delivered_packets += 1
            self.stats.delivered_bytes += wire_len
            deliver_to.deliver(packet)

        realm = sim.realm
        if realm is not None:
            # Keep single-packet completions on the realm's micro heap so
            # they interleave with train packets in global time order.
            realm.post(arrive, _complete, ())
        else:
            sim.schedule_at(arrive, _complete)

    # ------------------------------------------------------------------
    # packet-train fast path (batch realm)
    # ------------------------------------------------------------------
    def ingress_batch_packet(self, batch, i: int, now: float, deliver_to: "Port") -> None:
        """:meth:`transmit` for one train packet at virtual time ``now``."""
        link = self._link
        stats = self.stats
        if link._down:
            stats.fault_drops += 1
            link.trace(now, "link.drop", self._name, reason="down",
                       packet=batch.packet_at(i))
            return
        if self._queued >= self._queue_capacity:
            stats.queue_drops += 1
            link.trace(now, "link.drop", self._name, reason="queue",
                       packet=batch.packet_at(i))
            return
        wire_len = batch.wire_len
        stats.tx_packets += 1
        stats.tx_bytes += wire_len
        rate = self._rate_bps
        if rate is None:
            start = finish = now
        else:
            start = self._busy_until
            if start < now:
                start = now
            finish = start + wire_len * 8.0 / rate
            self._busy_until = finish
        self._queued += 1
        if self._h_queue_delay is not None:
            self._h_queue_delay.observe(start - now)
        if self._loss_model is not None:
            lost = self._loss_model()
        elif self._loss > 0.0:
            lost = link.rng.random() < self._loss
        else:
            lost = False
        link.sim.realm.post(
            finish + self._delay, self._arrive_batch_packet,
            (batch, i, lost, deliver_to),
        )

    def _arrive_batch_packet(self, batch, i: int, lost: bool, deliver_to: "Port") -> None:
        """Micro-event: one train packet reaches the far end of the wire.

        Same-time arrivals keep ingress order (micro FIFO by posting
        sequence mirrors the legacy event heap's tie-break)."""
        self._queued -= 1
        stats = self.stats
        now = self._link.sim._now
        if lost:
            stats.loss_drops += 1
            self._link.trace(now, "link.drop", self._name, reason="loss",
                             packet=batch.packet_at(i))
            return
        stats.delivered_packets += 1
        stats.delivered_bytes += batch.wire_len
        deliver_to.deliver_batch_packet(batch, i, now)

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def utilisation_horizon(self) -> float:
        """Simulated time until the transmitter drains (>= now when busy)."""
        return self._busy_until


class Link:
    """A duplex point-to-point link between two node ports.

    Args:
        sim: shared simulator.
        a, b: the two endpoints (ports); the link registers itself on both.
        rate_bps: link rate in bits/second (``None`` = infinitely fast).
        delay: one-way propagation delay in seconds.
        loss: independent per-packet loss probability in [0, 1).
        queue_capacity: drop-tail queue bound, in packets, per direction.
    """


    def __init__(
        self,
        sim: Simulator,
        a: "Port",
        b: "Port",
        rate_bps: Optional[float] = None,
        delay: float = 0.0,
        loss: float = 0.0,
        queue_capacity: int = 100,
        trace_bus: Optional[TraceBus] = None,
        rng_streams: Optional[RngStreams] = None,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss probability out of range: {loss}")
        if delay < 0.0:
            raise ValueError(f"negative delay: {delay}")
        if queue_capacity < 1:
            raise ValueError(f"queue capacity must be >= 1: {queue_capacity}")
        self.sim = sim
        # The default name is derived from the endpoints (not a global
        # counter) so RNG stream names — and hence loss draws — are
        # reproducible run-to-run.
        self.name = name or f"{a.full_name}--{b.full_name}"
        self._trace_bus = trace_bus
        streams = rng_streams or RngStreams(0)
        self.rng = streams.stream(f"link.{self.name}.loss")
        self._down = False
        self.a = a
        self.b = b
        self._a_to_b = _Direction(
            self, f"{self.name}:{a.full_name}->{b.full_name}",
            rate_bps, delay, loss, queue_capacity,
        )
        self._b_to_a = _Direction(
            self, f"{self.name}:{b.full_name}->{a.full_name}",
            rate_bps, delay, loss, queue_capacity,
        )
        a.attach_link(self)
        b.attach_link(self)

    # ------------------------------------------------------------------
    # fault hooks (chaos engine / operator actions)
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    def fail(self) -> None:
        """Cut the link: frames offered while down are dropped (frames
        already serialised still propagate — the cut is at admission)."""
        if self._down:
            return
        self._down = True
        self.trace(self.sim.now, "link.down", self.name)

    def recover(self) -> None:
        if not self._down:
            return
        self._down = False
        self.trace(self.sim.now, "link.up", self.name)

    def set_loss_model(self, model: Optional[Callable[[], bool]]) -> None:
        """Install a per-packet loss decision callable on both directions
        (``None`` restores the configured Bernoulli loss)."""
        self._a_to_b._loss_model = model
        self._b_to_a._loss_model = model

    def scale_rate(self, factor: float) -> None:
        """Multiply both directions' serialisation rate (bandwidth
        degradation; ``None``-rate links are infinitely fast and stay so)."""
        if factor <= 0.0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        for direction in (self._a_to_b, self._b_to_a):
            if direction._rate_bps is not None:
                direction._rate_bps *= factor

    def rates_bps(self) -> tuple:
        """Current per-direction rates (a->b, b->a)."""
        return (self._a_to_b._rate_bps, self._b_to_a._rate_bps)

    def send_from(self, src_port: "Port", packet: "Packet") -> None:
        """Transmit ``packet`` out of ``src_port`` toward the other end."""
        if src_port is self.a:
            self._a_to_b.transmit(packet, self.b)
        elif src_port is self.b:
            self._b_to_a.transmit(packet, self.a)
        else:
            raise ValueError(f"port {src_port.full_name} is not an endpoint of {self.name}")

    def send_from_batch(self, src_port: "Port", batch, i: int, now: float) -> None:
        """Transmit one train packet out of ``src_port`` at time ``now``."""
        if src_port is self.a:
            self._a_to_b.ingress_batch_packet(batch, i, now, self.b)
        elif src_port is self.b:
            self._b_to_a.ingress_batch_packet(batch, i, now, self.a)
        else:
            raise ValueError(
                f"port {src_port.full_name} is not an endpoint of {self.name}"
            )

    def peer_of(self, port: "Port") -> "Port":
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ValueError(f"port {port.full_name} is not an endpoint of {self.name}")

    def directions(self) -> tuple:
        """Both directions as ``(name, stats, queue_depth)`` triples
        (used by the observability pull collector)."""
        return (
            (self._a_to_b._name, self._a_to_b.stats, self._a_to_b.queue_depth),
            (self._b_to_a._name, self._b_to_a.stats, self._b_to_a.queue_depth),
        )

    def direction_stats(self, src_port: "Port") -> LinkStats:
        if src_port is self.a:
            return self._a_to_b.stats
        if src_port is self.b:
            return self._b_to_a.stats
        raise ValueError(f"port {src_port.full_name} is not an endpoint of {self.name}")

    def trace(self, time: float, topic: str, source: str, **data: object) -> None:
        if self._trace_bus is not None:
            self._trace_bus.emit(time, topic, source, **data)
