"""MAC and IPv4 address value types.

Both types are immutable, hashable and carry deterministic byte encodings
so that packets containing them serialise bit-for-bit identically — a
prerequisite for the NetCo compare element, which votes on exact packet
bytes (the paper's prototype uses ``memcmp``).
"""

from __future__ import annotations

import re
from typing import Union

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    BROADCAST: "MacAddress"

    def __init__(self, value: Union[str, int, bytes, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC bytes must have length 6, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @classmethod
    def from_index(cls, index: int) -> "MacAddress":
        """Deterministic locally-administered MAC for host/switch *index*."""
        if not 0 <= index < (1 << 40):
            raise ValueError(f"index out of range: {index}")
        return cls((0x02 << 40) | index)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


MacAddress.BROADCAST = MacAddress("ff:ff:ff:ff:ff:ff")


class IpAddress:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "IpAddress"]) -> None:
        if isinstance(value, IpAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise ValueError(f"IPv4 bytes must have length 4, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            match = _IP_RE.match(value)
            if not match:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            octets = [int(g) for g in match.groups()]
            if any(o > 255 for o in octets):
                raise ValueError(f"IPv4 octet out of range: {value!r}")
            self._value = (
                (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
            )
        else:
            raise TypeError(f"cannot build IpAddress from {type(value).__name__}")

    @classmethod
    def from_index(cls, index: int, base: str = "10.0.0.0") -> "IpAddress":
        """Deterministic address ``base + index`` (Mininet-style 10.0.0.x)."""
        return cls(int(cls(base)) + index)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IpAddress) and self._value == other._value

    def __hash__(self) -> int:
        return hash(("ip", self._value))

    def __lt__(self, other: "IpAddress") -> bool:
        return self._value < other._value

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IpAddress('{self}')"
