"""Base node and port abstractions.

A :class:`Node` is anything attached to the network: a host, an OpenFlow
switch, a trusted hub, or the compare server.  Nodes own numbered
:class:`Port` objects; links connect ports pairwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.sim import Simulator, TraceBus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.packet import Packet


class NetworkError(Exception):
    """Raised on invalid wiring or node configuration."""


class Port:
    """A numbered attachment point on a node."""

    __slots__ = ("node", "port_no", "link", "rx_packets", "rx_bytes", "tx_packets",
                 "tx_bytes", "taps", "blocked_until", "_egress_dir", "_egress_to")

    def __init__(self, node: "Node", port_no: int) -> None:
        self.node = node
        self.port_no = port_no
        self.link: Optional["Link"] = None
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        # tcpdump-style observers: called on every received packet.
        self.taps: List[Callable[["Packet"], None]] = []
        # A port may be administratively blocked (compare DoS mitigation).
        self.blocked_until: float = 0.0
        # Train fast path: the link direction this port transmits into and
        # the far-end port, resolved once on first use (wiring is static).
        self._egress_dir = None
        self._egress_to: Optional["Port"] = None

    @property
    def full_name(self) -> str:
        return f"{self.node.name}.p{self.port_no}"

    def attach_link(self, link: "Link") -> None:
        if self.link is not None:
            raise NetworkError(f"port {self.full_name} already wired")
        self.link = link

    @property
    def is_wired(self) -> bool:
        return self.link is not None

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the other end of the attached link, if wired."""
        if self.link is None:
            return None
        return self.link.peer_of(self)

    def send(self, packet: "Packet") -> None:
        """Transmit a packet out of this port (drops if unwired/blocked)."""
        if self.link is None:
            return
        now = self.node.sim.now
        if now < self.blocked_until:
            self.node.trace("port.blocked_drop", port=self.port_no, packet=packet)
            return
        self.tx_packets += 1
        self.tx_bytes += packet.wire_len
        if packet.trace_id is not None:
            self._span(packet, "span.send", now)
        self.link.send_from(self, packet)

    def send_batch_packet(self, batch, i: int, now: float) -> None:
        """:meth:`send` for one packet of a train at virtual time ``now``.

        Train packets are never trace-marked (marked packets split out of
        the train at emission), so the span branch is omitted.
        """
        link = self.link
        if link is None:
            return
        if now < self.blocked_until:
            self.node.trace(
                "port.blocked_drop", port=self.port_no, packet=batch.packet_at(i)
            )
            return
        self.tx_packets += 1
        self.tx_bytes += batch.wire_len
        direction = self._egress_dir
        if direction is None:
            direction = link._a_to_b if self is link.a else link._b_to_a
            self._egress_dir = direction
            self._egress_to = link.peer_of(self)
        direction.ingress_batch_packet(batch, i, now, self._egress_to)

    def deliver_batch_packet(self, batch, i: int, now: float) -> None:
        """:meth:`deliver` for one packet of a train at time ``now``."""
        self.rx_packets += 1
        self.rx_bytes += batch.wire_len
        if self.taps:
            pkt = batch.packet_at(i)
            for tap in self.taps:
                tap(pkt)
        if now < self.blocked_until:
            self.node.trace(
                "port.blocked_drop", port=self.port_no, packet=batch.packet_at(i)
            )
            return
        self.node.receive_batch_packet(batch, i, self)

    def deliver(self, packet: "Packet") -> None:
        """Called by the link when a packet arrives at this port."""
        self.rx_packets += 1
        self.rx_bytes += packet.wire_len
        for tap in self.taps:
            tap(packet)
        now = self.node.sim.now
        # The span hop mirrors tcpdump-tap semantics exactly: it fires on
        # every delivery, before the administrative port block is applied
        # (taps above see blocked arrivals too).
        if packet.trace_id is not None:
            self._span(packet, "span.hop", now)
        if now < self.blocked_until:
            self.node.trace("port.blocked_drop", port=self.port_no, packet=packet)
            return
        self.node.receive(packet, self)

    def _span(self, packet: "Packet", topic: str, now: float) -> None:
        """Emit one per-hop span record for a trace-marked packet."""
        bus = self.node.trace_bus
        if bus is None:
            return
        bus.emit(
            now,
            topic,
            self.node.name,
            trace=packet.trace_id,
            port=self.port_no,
            kind=type(packet.fields()[3]).__name__,
        )

    def block_for(self, duration: float) -> None:
        """Administratively block this port for ``duration`` seconds."""
        self.blocked_until = max(self.blocked_until, self.node.sim.now + duration)

    def __repr__(self) -> str:
        wired = "wired" if self.is_wired else "unwired"
        return f"Port({self.full_name}, {wired})"


class Node:
    """Base class for all network elements."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace_bus: Optional[TraceBus] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace_bus = trace_bus
        self.ports: Dict[int, Port] = {}

    def add_port(self, port_no: Optional[int] = None) -> Port:
        """Create a new port; auto-numbers from 1 when not specified."""
        if port_no is None:
            port_no = max(self.ports, default=0) + 1
        if port_no in self.ports:
            raise NetworkError(f"{self.name} already has port {port_no}")
        port = Port(self, port_no)
        self.ports[port_no] = port
        return port

    def port(self, port_no: int) -> Port:
        try:
            return self.ports[port_no]
        except KeyError:
            raise NetworkError(f"{self.name} has no port {port_no}") from None

    def receive(self, packet: "Packet", in_port: Port) -> None:
        """Handle a packet arriving on ``in_port``.  Subclasses override."""
        raise NotImplementedError

    def receive_batch_packet(self, batch, i: int, in_port: Port) -> None:
        """Handle one packet of a train arriving on ``in_port``.

        The default materialises the packet and calls :meth:`receive` —
        with the simulator clock patched to the packet's virtual time
        this is exact, just slower.  Batch-aware elements override it.
        """
        self.sim.realm.note_fallback("mixed-headers")
        self.receive(batch.packet_at(i), in_port)

    def trace(self, topic: str, **data: object) -> None:
        if self.trace_bus is not None:
            self.trace_bus.emit(self.sim.now, topic, self.name, **data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, ports={sorted(self.ports)})"
