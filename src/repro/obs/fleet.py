"""Live fleet state: the in-memory model behind ``/fleet`` and ``watch``.

:class:`FleetState` subscribes to a farm's progress bus (``farm.*``) and
keeps a thread-safe rolling picture of the run: per-runner throughput,
cache hit rate, in-flight specs with their attempt numbers, an EWMA of
task wall time driving an ETA estimate, and a bounded feed of recent
alarms/digests and raw events.  The dashboard thread reads snapshots
under the same lock the bus listener writes under, so a mid-run ``GET
/fleet`` always sees a consistent picture.

Like the event log, the fleet state is strictly pull/append-only: it
observes the bus and never feeds anything back into the farm, so result
dicts and spec hashes are bit-identical with the dashboard on or off.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["FleetState", "EWMA_ALPHA", "DEFAULT_FEED"]

#: smoothing factor for the task-wall-time EWMA (recent tasks dominate,
#: but one outlier shard does not whipsaw the ETA)
EWMA_ALPHA = 0.3

#: bounded length of the alarm feed and the recent-event ring
DEFAULT_FEED = 50


class FleetState:
    """Rolling fleet picture fed by one farm's progress bus."""

    def __init__(
        self,
        progress,
        cache=None,
        jobs: int = 1,
        name: str = "",
        max_feed: int = DEFAULT_FEED,
    ) -> None:
        self.progress = progress
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.name = name
        self._lock = threading.Lock()
        self._inflight: Dict[str, Dict[str, Any]] = {}
        self._per_runner: Dict[str, Dict[str, int]] = {}
        self._ewma_wall: Optional[float] = None
        self._alarm_feed: Deque[Dict[str, Any]] = deque(maxlen=max_feed)
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=max_feed)
        self._seq = 0
        self.finished = False
        progress.bus.subscribe("farm.*", self._on_record)

    def detach(self) -> None:
        self.progress.bus.unsubscribe("farm.*", self._on_record)

    # ------------------------------------------------------------------
    # bus listener (runs on the emitting thread)
    # ------------------------------------------------------------------
    def _on_record(self, record) -> None:
        topic = record.topic
        data = record.data
        key = data.get("key")
        runner = data.get("runner")
        with self._lock:
            self._seq += 1
            self._recent.append(
                {"seq": self._seq, "time": record.time, "topic": topic, "data": data}
            )
            if runner is not None:
                counts = self._per_runner.setdefault(
                    runner, {"queued": 0, "done": 0, "cached": 0, "failed": 0}
                )
            if topic == "farm.task.queued":
                counts["queued"] += 1
            elif topic == "farm.task.cached":
                counts["cached"] += 1
                counts["done"] += 1
            elif topic == "farm.task.started":
                self._inflight[key] = {
                    "runner": runner,
                    "key": key,
                    "attempt": data.get("attempt", 1),
                    "since": record.time,
                }
            elif topic == "farm.task.done":
                self._inflight.pop(key, None)
                counts["done"] += 1
                wall = float(data.get("wall_time", 0.0))
                if self._ewma_wall is None:
                    self._ewma_wall = wall
                else:
                    self._ewma_wall += EWMA_ALPHA * (wall - self._ewma_wall)
            elif topic in ("farm.task.retried", "farm.task.failed"):
                self._inflight.pop(key, None)
                if topic == "farm.task.failed":
                    counts["failed"] += 1
            elif topic == "farm.task.digest":
                entry = {"time": record.time, "runner": runner, "key": key}
                for field in (
                    "alarms", "quarantined", "readmitted", "ctrl_quarantined",
                    "ctrl_readmitted", "detection_latency", "faults",
                    "ctrl_blocked", "ctrl_malicious_released",
                    "malicious_installed", "batch_fallbacks",
                ):
                    if field in data:
                        entry[field] = data[field]
                self._alarm_feed.append(entry)
            elif topic == "farm.summary":
                self.finished = True

    # ------------------------------------------------------------------
    # snapshots (read by the dashboard thread / the watch CLI)
    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """EWMA-based remaining-wall estimate; None before the first
        completion or once the queue is drained."""
        snap = self.progress.snapshot()
        remaining = snap["queued"] - snap["done"] - snap["failed"]
        if remaining <= 0 or self._ewma_wall is None:
            return None
        return round(remaining * self._ewma_wall / self.jobs, 3)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready fleet picture (the ``/fleet`` payload)."""
        with self._lock:
            inflight = [dict(v) for v in self._inflight.values()]
            per_runner = {k: dict(v) for k, v in self._per_runner.items()}
            alarms = [dict(a) for a in self._alarm_feed]
            ewma = self._ewma_wall
            finished = self.finished
        progress = self.progress.snapshot()
        elapsed = progress.get("elapsed_s") or 0.0
        cache_stats = self.cache.stats() if self.cache is not None else None
        return {
            "name": self.name,
            "jobs": self.jobs,
            "finished": finished,
            "progress": progress,
            "throughput_tasks_per_s": (
                round(progress["done"] / elapsed, 3) if elapsed > 0 else None
            ),
            "per_runner": per_runner,
            "in_flight": sorted(inflight, key=lambda e: e["since"]),
            "ewma_task_wall_s": round(ewma, 6) if ewma is not None else None,
            "eta_s": self.eta_seconds(),
            "cache": cache_stats,
            "alarm_feed": alarms,
        }

    def recent_events(self, after: int = 0, limit: int = DEFAULT_FEED) -> List[Dict[str, Any]]:
        """Bounded tail of raw bus records with seq > ``after``."""
        with self._lock:
            return [dict(e) for e in self._recent if e["seq"] > after][:limit]
