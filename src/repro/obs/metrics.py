"""Unified metrics model: counters, gauges and histograms with labels.

The paper's evaluation is built entirely from measured rates, latencies
and loss counts; this module gives every subsystem one vocabulary for
those numbers.  Design constraints, in order:

1. **near-zero cost when disabled** — the tier-1 suite and the hot-path
   benchmarks run with metrics off, so a disabled registry hands out a
   shared null instrument whose methods are no-ops, and hot paths that
   bind instruments at construction time bind ``None`` and skip the call
   entirely (one ``is not None`` test per packet);
2. **deterministic snapshots** — all sample values derive from simulated
   time and seeded RNG streams, so two runs of the same experiment
   produce byte-identical flattened samples (the property the
   ``repro obs diff`` CI gate relies on);
3. **no dependencies** — rendering is Prometheus *text format* compatible
   but nothing here imports outside the standard library.

Naming scheme (see DESIGN.md "Observability"): ``<subsystem>_<what>_<unit>``
with ``_total`` for monotone counters, e.g. ``link_tx_packets_total``,
``compare_release_latency_seconds``.  Identity lives in labels
(``{link="s1-r0", scenario="central3"}``), never in the metric name.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "active_registry",
    "set_active_registry",
    "use_registry",
    "bind_counter",
    "FARM_COUNTERS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: default histogram buckets, in seconds — the testbed operates at
#: microsecond granularity (per-packet costs of 4–42 us, RTTs of ~200 us)
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 5e-2,
)


class MetricsError(Exception):
    """Raised on inconsistent metric registration or label use."""


def _label_key(labelnames: Sequence[str], values: Tuple[str, ...]) -> str:
    """Stable flat sample key suffix: ``{a="x",b="y"}`` (sorted by name)."""
    if not labelnames:
        return ""
    pairs = sorted(zip(labelnames, values))
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def labels(self, *values: object, **kv: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters cannot decrease")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down, or be computed on demand."""

    __slots__ = ("value", "_fn")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Pull-style gauge: ``fn`` is called at snapshot time."""
        self._fn = fn

    def sample(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding it."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")

    def sample(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.sum, 12),
            "buckets": {
                ("+Inf" if i == len(self.buckets) else repr(self.buckets[i])): n
                for i, n in enumerate(self.counts)
                if n
            },
        }


class _Family:
    """One registered metric name; children are per-label-set instruments."""

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        factory: Callable[[], Any],
        kind: str,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.kind = kind
        self._factory = factory
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not labelnames:
            self._children[()] = factory()

    def labels(self, *values: object, **kv: object) -> Any:
        if kv:
            if values:
                raise MetricsError("pass labels positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise MetricsError(f"{self.name}: missing label {exc}") from None
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {self.labelnames}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._factory()
        return child

    # Unlabelled families act as the instrument itself for convenience.
    def _solo(self) -> Any:
        if self.labelnames:
            raise MetricsError(f"{self.name} requires labels {self.labelnames}")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._solo().set_function(fn)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def items(self) -> Iterable[Tuple[str, Any]]:
        for values in sorted(self._children):
            yield _label_key(self.labelnames, values), self._children[values]


class MetricsRegistry:
    """Registry of metric families.

    ``enabled=False`` turns every registration into the shared
    :data:`NULL_INSTRUMENT`; callers that want to skip even the no-op
    call in a hot loop should test :attr:`enabled` once at bind time and
    keep ``None``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        factory: Callable[[], Any],
        kind: str,
    ) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"metric {name!r} re-registered with a different "
                    f"type/labels ({family.kind}{family.labelnames} vs "
                    f"{kind}{tuple(labelnames)})"
                )
            return family
        family = _Family(name, help, tuple(labelnames), factory, kind)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Any:
        return self._register(name, help, labelnames, Counter, "counter")

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Any:
        return self._register(name, help, labelnames, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Any:
        return self._register(
            name, help, labelnames, lambda: Histogram(buckets), "histogram"
        )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def samples(self, extra_labels: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
        """Flat ``{name{labels}: value}`` snapshot.

        Scalars map to floats; histograms map to a ``{count, sum,
        buckets}`` dict.  ``extra_labels`` are merged into every sample
        key (used to namespace per-scenario registries in a RunReport).
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            for key, child in family.items():
                if extra_labels:
                    merged = dict(extra_labels)
                    if key:
                        for part in key[1:-1].split(","):
                            k, _, v = part.partition("=")
                            merged[k] = v.strip('"')
                    key = "{" + ",".join(
                        f'{k}="{v}"' for k, v in sorted(merged.items())
                    ) + "}"
                value = child.sample()
                out[name + key] = (
                    round(value, 9) if isinstance(value, float) else value
                )
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.items():
                if family.kind == "histogram":
                    cumulative = 0
                    for i, bound in enumerate(child.buckets + (float("inf"),)):
                        cumulative += child.counts[i]
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        sep = "," if key else "{"
                        suffix = (key[:-1] + sep if key else "{") + f'le="{le}"' + "}"
                        lines.append(f"{name}_bucket{suffix} {cumulative}")
                    lines.append(f"{name}_sum{key} {child.sum:g}")
                    lines.append(f"{name}_count{key} {child.count}")
                else:
                    lines.append(f"{name}{key} {child.sample():g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._families.clear()


#: the farm counter trio: bound by :class:`~repro.farm.cache.ResultCache`
#: and :class:`~repro.farm.executor.FarmExecutor` at construction, so the
#: Prometheus text and the ``/fleet`` snapshot agree with
#: ``render_farm_summary`` (same underlying counts, same moment).
FARM_COUNTERS: Dict[str, str] = {
    "cache_hits_total": "farm result-cache hits",
    "cache_misses_total": "farm result-cache misses (corrupt entries count as misses)",
    "farm_task_retries_total": "farm task retry attempts (worker crash / timeout reruns)",
}


def bind_counter(name: str, help: str = "") -> Optional[Any]:
    """Bind-at-construction helper for hot-path counters.

    Returns a counter from the *active* registry, or ``None`` when
    metrics are disabled — callers keep the result and test
    ``is not None`` before ``inc()``, skipping even the null-instrument
    call (the established ≈1–3% disabled-overhead pattern).
    """
    registry = active_registry()
    if not registry.enabled:
        return None
    return registry.counter(name, help or FARM_COUNTERS.get(name, ""))


# ----------------------------------------------------------------------
# process-wide active registry
# ----------------------------------------------------------------------
# Components bind their instruments from the registry active at
# *construction* time, so enable metrics (set an enabled registry active)
# before building the network you want observed.  The default is a
# disabled registry: the tier-1 suite and benchmarks pay nothing.
_active = MetricsRegistry(enabled=False)
_active_lock = threading.Lock()


def active_registry() -> MetricsRegistry:
    """The registry new components bind their instruments from."""
    return _active


def set_active_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = registry
    return previous


class use_registry:
    """Context manager: activate ``registry`` for the enclosed block."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_active_registry(self._registry)
        return self._registry

    def __exit__(self, *exc: object) -> None:
        assert self._previous is not None
        set_active_registry(self._previous)
