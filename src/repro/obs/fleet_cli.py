"""``repro fleet`` — terminal view and replay of fleet telemetry.

Subcommands:

* ``watch``   — tail a live run, updating one ANSI frame in place.
  Sources: ``--url http://host:port`` (polls the dashboard's ``/fleet``
  endpoint) or ``--events PATH`` (re-reads a JSONL event log and
  reconstructs the picture, so a run without ``--serve`` is still
  watchable).  ``--once`` prints a single frame and exits (useful from
  scripts and CI).
* ``replay``  — validate a JSONL event log against the schema and
  reconstruct the final farm rollup; ``--check`` exits non-zero unless
  the replay matches the recorded ``farm.summary`` exactly.
* ``profile`` — aggregate ``--profile-shards`` cProfile dumps into one
  top-N cumulative table.

Exit codes: 0 ok; 1 validation/replay mismatch or unreachable source;
2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.events import (
    FleetEvent,
    read_events,
    replay_rollup,
    check_replay,
    EventLogError,
)

__all__ = ["fleet_main"]


# ----------------------------------------------------------------------
# snapshot sources
# ----------------------------------------------------------------------
def _fetch_url_snapshot(url: str) -> Dict[str, Any]:
    endpoint = url.rstrip("/") + "/fleet"
    with urllib.request.urlopen(endpoint, timeout=5.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _snapshot_from_events(events: List[FleetEvent]) -> Dict[str, Any]:
    """Reconstruct a /fleet-shaped snapshot from a JSONL log."""
    rollup = replay_rollup(events)
    name = ""
    jobs = None
    finished = False
    inflight: Dict[str, Dict[str, Any]] = {}
    alarms: List[Dict[str, Any]] = []
    elapsed: Optional[float] = None
    for event in events:
        data = event.data
        if event.kind == "log.open":
            name = data.get("name", "")
        elif event.kind == "farm.task.started":
            inflight[data["key"]] = {
                "runner": data["runner"],
                "key": data["key"],
                "attempt": data.get("attempt", 1),
                "since": event.ts,
            }
        elif event.kind in ("farm.task.done", "farm.task.retried", "farm.task.failed"):
            inflight.pop(data.get("key"), None)
        elif event.kind == "farm.task.digest":
            alarms.append(dict(data))
        elif event.kind == "farm.summary":
            finished = True
            jobs = data.get("jobs")
            elapsed = data.get("elapsed_s")
    if elapsed is None and events:
        elapsed = events[-1].ts
    rollup["elapsed_s"] = elapsed
    return {
        "name": name,
        "jobs": jobs,
        "finished": finished,
        "progress": rollup,
        "throughput_tasks_per_s": (
            round(rollup["done"] / elapsed, 3) if elapsed else None
        ),
        "per_runner": None,
        "in_flight": sorted(inflight.values(), key=lambda e: e["since"]),
        "ewma_task_wall_s": None,
        "eta_s": None,
        "cache": None,
        "alarm_feed": alarms[-10:],
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _render_frame(snap: Dict[str, Any], source: str) -> str:
    progress = snap.get("progress", {})
    lines: List[str] = []
    state = "finished" if snap.get("finished") else "running"
    title = snap.get("name") or "farm"
    lines.append(f"fleet {title}  [{state}]  jobs={snap.get('jobs')}  ({source})")
    lines.append(
        "tasks: {done}/{queued} done  (cached {cache_hits}, executed "
        "{executed}, failed {failed}, retried {retried})".format(
            done=progress.get("done", 0),
            queued=progress.get("queued", 0),
            cache_hits=progress.get("cache_hits", 0),
            executed=progress.get("executed", 0),
            failed=progress.get("failed", 0),
            retried=progress.get("retried", 0),
        )
    )
    rate = snap.get("throughput_tasks_per_s")
    cache = snap.get("cache")
    eta = snap.get("eta_s")
    ewma = snap.get("ewma_task_wall_s")
    bits = []
    if rate is not None:
        bits.append(f"throughput {rate} tasks/s")
    if cache and cache.get("hit_rate") is not None:
        bits.append(f"cache {cache['hit_rate'] * 100:.0f}% hits")
    if ewma is not None:
        bits.append(f"ewma {ewma * 1000:.1f} ms/task")
    if eta is not None:
        bits.append(f"eta ~{eta}s")
    if bits:
        lines.append("  ".join(bits))
    per_runner = snap.get("per_runner")
    if per_runner:
        for runner in sorted(per_runner):
            counts = per_runner[runner]
            lines.append(
                f"  {runner}: {counts['done']}/{counts['queued']} done"
                f" ({counts['cached']} cached, {counts['failed']} failed)"
            )
    inflight = snap.get("in_flight") or []
    if inflight:
        lines.append(f"in flight ({len(inflight)}):")
        for entry in inflight[:10]:
            lines.append(
                f"  {entry['runner']} {entry['key']}"
                f" attempt={entry.get('attempt', 1)} since={entry['since']:.2f}s"
            )
    alarms = snap.get("alarm_feed") or []
    if alarms:
        lines.append(f"recent alarms/digests ({len(alarms)}):")
        for alarm in alarms[-8:]:
            parts = [str(alarm.get("runner", "?")), str(alarm.get("key", "?"))]
            for field in ("alarms", "quarantined", "ctrl_quarantined",
                          "detection_latency", "malicious_installed"):
                if field in alarm:
                    parts.append(f"{field}={alarm[field]}")
            lines.append("  " + " ".join(parts))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_watch(args: argparse.Namespace) -> int:
    source = args.url or args.events
    label = "http" if args.url else "events"
    first = True
    while True:
        try:
            if args.url:
                snap = _fetch_url_snapshot(args.url)
            else:
                snap = _snapshot_from_events(read_events(args.events))
        except (urllib.error.URLError, OSError, EventLogError, json.JSONDecodeError) as exc:
            print(f"fleet watch: cannot read {source}: {exc}", file=sys.stderr)
            return 1
        frame = _render_frame(snap, label)
        if args.once:
            print(frame)
            return 0
        if not first:
            # move home and clear below: in-place update without flicker
            sys.stdout.write("\x1b[H\x1b[J")
        else:
            sys.stdout.write("\x1b[2J\x1b[H")
            first = False
        sys.stdout.write(frame + "\n")
        sys.stdout.flush()
        if snap.get("finished"):
            return 0
        time.sleep(args.interval)


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        events = read_events(args.log)
    except (OSError, EventLogError) as exc:
        print(f"fleet replay: {exc}", file=sys.stderr)
        return 1
    replayed, errors = check_replay(events)
    print(f"events: {len(events)}")
    print("replayed rollup: " + json.dumps(replayed, sort_keys=True))
    if errors:
        for error in errors:
            print(f"ERROR: {error}")
        if args.check:
            print(f"replay FAILED: {len(errors)} error(s)")
            return 1
    else:
        print("replay ok: log validates and matches the recorded farm.summary")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.farm.profiling import aggregate_profiles

    aggregated = aggregate_profiles(args.dir, top=args.top)
    if aggregated is None:
        print(f"fleet profile: no profile dumps under {args.dir}", file=sys.stderr)
        return 1
    count, table = aggregated
    print(f"aggregated {count} shard profile(s) from {args.dir}")
    print(table)
    return 0


def fleet_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="live view and replay of farm fleet telemetry",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    watch = sub.add_parser("watch", help="tail a live run in place")
    group = watch.add_mutually_exclusive_group(required=True)
    group.add_argument("--url", help="dashboard base URL (e.g. http://127.0.0.1:8377)")
    group.add_argument("--events", help="JSONL event log to tail")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds (default 1.0)")
    watch.add_argument("--once", action="store_true",
                       help="print one frame and exit (no ANSI control codes)")
    watch.set_defaults(fn=_cmd_watch)

    replay = sub.add_parser("replay", help="validate + replay a JSONL event log")
    replay.add_argument("log", help="path to the JSONL event log")
    replay.add_argument("--check", action="store_true",
                        help="exit 1 unless the replayed rollup matches farm.summary")
    replay.set_defaults(fn=_cmd_replay)

    profile = sub.add_parser("profile", help="aggregate --profile-shards dumps")
    profile.add_argument("dir", help="directory of .pstats dumps")
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the cumulative-time table (default 15)")
    profile.set_defaults(fn=_cmd_profile)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(fleet_main())
