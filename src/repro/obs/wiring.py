"""CLI-side bundle wiring the fleet telemetry pieces together.

Both experiment CLIs (``python -m repro <experiment>`` and ``python -m
repro plan run``) accept ``--events-log``, ``--serve`` and
``--profile-shards``; this module gives them one object that owns the
optional pieces — event-log writer, metrics registry, dashboard server —
and attaches a :class:`~repro.obs.fleet.FleetState` + event logger to
each farm battery as it starts.

Determinism note: the telemetry registry is activated **only around farm
construction** (so the cache/executor bind the farm counter trio), never
around task execution — simulations keep binding from the process-wide
disabled default, so result dicts and spec hashes are bit-identical with
telemetry on or off.  All status chatter goes to stderr; stdout stays
byte-stable for the CI serial-vs-parallel diffs.
"""

from __future__ import annotations

import contextlib
import sys
import time
from typing import Iterator, Optional

from repro.obs.events import EventLogWriter, FarmEventLogger
from repro.obs.fleet import FleetState
from repro.obs.metrics import MetricsRegistry, use_registry

__all__ = ["FleetTelemetry"]


class FleetTelemetry:
    """Owns the optional event log, registry and dashboard for one CLI run."""

    def __init__(
        self,
        events_log: Optional[str] = None,
        serve: Optional[int] = None,
        serve_grace: float = 0.0,
        name: str = "",
    ) -> None:
        self.serve_grace = serve_grace
        self.registry: Optional[MetricsRegistry] = None
        self.writer: Optional[EventLogWriter] = None
        self.server = None
        self._logger: Optional[FarmEventLogger] = None
        self._fleet: Optional[FleetState] = None
        if events_log:
            self.writer = EventLogWriter(events_log, name=name)
        if serve is not None:
            from repro.obs.dashboard import DashboardServer

            self.registry = MetricsRegistry(enabled=True)
            self.server = DashboardServer(registry=self.registry, port=serve)
            port = self.server.start()
            print(f"[fleet dashboard on {self.server.url} "
                  f"(/metrics /fleet /events)]", file=sys.stderr)
            del port

    @property
    def enabled(self) -> bool:
        return self.writer is not None or self.server is not None

    @contextlib.contextmanager
    def farm_registry(self) -> Iterator[None]:
        """Activate the fleet registry for farm construction only."""
        if self.registry is None:
            yield
        else:
            with use_registry(self.registry):
                yield

    def attach(self, farm, name: str = "") -> Optional[FleetState]:
        """Point the telemetry at a new farm battery (detaching the last)."""
        if not self.enabled:
            return None
        if self._logger is not None:
            self._logger.detach()
            self._logger = None
        if self._fleet is not None:
            self._fleet.detach()
        self._fleet = FleetState(
            farm.progress, cache=farm.cache, jobs=farm.jobs, name=name
        )
        if self.server is not None:
            self.server.fleet = self._fleet
        if self.writer is not None:
            self._logger = FarmEventLogger(self.writer, farm.progress)
        return self._fleet

    def close(self) -> None:
        """Flush the log and (after any grace window) stop the server."""
        if self._logger is not None:
            self._logger.detach()
            self._logger = None
        if self.writer is not None and not self.writer.closed:
            path = self.writer.path
            events = self.writer.events_written + 1  # + log.close
            self.writer.close()
            print(f"[event log: {events} events -> {path}]", file=sys.stderr)
        if self.server is not None:
            if self.serve_grace > 0:
                print(f"[dashboard serving for {self.serve_grace:g}s more "
                      f"at {self.server.url}]", file=sys.stderr)
                time.sleep(self.serve_grace)
            self.server.stop()
            self.server = None
