"""Instrumented fig5-style runs: one command, one deterministic RunReport.

``repro obs summary`` rebuilds the Figure 5 UDP workload with the full
observability stack switched on — an enabled metrics registry active
while the testbed is constructed (so links and compares bind their
histograms), a :class:`~repro.obs.spans.PacketTracer` attached to the
network — runs one fixed-rate UDP flow per scenario, and collects
everything into a :class:`~repro.obs.report.RunReport`.

Because the offered rates and durations are fixed (not searched) and all
randomness is seeded, the resulting report is byte-stable for a given
seed, which is what lets CI keep a checked-in baseline and diff against
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.report import RunReport, collect_network
from repro.obs.spans import PacketTracer

#: scenario -> offered UDP rate (bit/s); fixed, not searched, so the
#: report is deterministic.  Rates sit near each variant's Figure 5
#: operating point: linespeed comfortably carries more than the
#: duplicating variants.
SCENARIO_RATES: Dict[str, float] = {
    "linespeed": 300e6,
    "central3": 200e6,
    "central5": 150e6,
    "dup3": 200e6,
}

QUICK_SCENARIOS: Tuple[str, ...] = ("linespeed", "central3")
FULL_SCENARIOS: Tuple[str, ...] = ("linespeed", "central3", "central5", "dup3")


@dataclass
class ScenarioRun:
    """One instrumented scenario: its registry, tracer and flow result."""

    variant: str
    rate_bps: float
    duration: float
    registry: MetricsRegistry
    tracer: PacketTracer
    result: object  # UdpFlowResult
    testbed: object


def run_instrumented_scenario(
    variant: str,
    rate_bps: Optional[float] = None,
    duration: float = 0.02,
    seed: int = 1,
    sample_rate: float = 1.0,
    train: int = 1,
) -> ScenarioRun:
    """Build one testbed variant with observability on and run UDP through it."""
    from repro.scenarios.testbed import TestbedParams, build_testbed
    from repro.traffic.iperf import run_udp_flow

    if rate_bps is None:
        rate_bps = SCENARIO_RATES.get(variant, 200e6)
    registry = MetricsRegistry(enabled=True)
    # Components bind instruments at construction time, so the registry
    # must be active while the testbed is built.
    params = TestbedParams(batch_train=train) if train > 1 else None
    with use_registry(registry):
        testbed = build_testbed(variant, params=params, seed=seed)
    tracer = PacketTracer(testbed.network.trace, sample_rate=sample_rate)
    tracer.attach(testbed.network)
    result = run_udp_flow(
        testbed.path(),
        rate_bps=rate_bps,
        duration=duration,
        send_cost=testbed.params.udp_send_cost,
    )
    compare = testbed.compare_core
    if compare is not None:
        compare.flush()
    collect_network(
        testbed.network,
        registry,
        compares=(compare,) if compare is not None else (),
    )
    return ScenarioRun(
        variant=variant,
        rate_bps=rate_bps,
        duration=duration,
        registry=registry,
        tracer=tracer,
        result=result,
        testbed=testbed,
    )


def run_instrumented_ctrl_scenario(
    variant: str = "central3",
    ctrl_k: int = 3,
    adversary: str = "none",
    rate_bps: float = 10e6,
    duration: float = 0.01,
    seed: int = 1,
    sample_rate: float = 1.0,
) -> ScenarioRun:
    """A ctrlbft-style run with the tracer attached.

    Mirrors the ``ctrl.run`` farm task's traffic pattern (reverse primer
    so forward decisions become votable FlowMods, then one forward UDP
    flow) on a replicated control plane, with a PacketTracer subscribed —
    so marked packets pick up ``ctrl.vote``/``ctrl.release`` spans from
    the voter alongside their data-plane hops.  Used by ``repro obs
    trace --ctrl``; deliberately shorter than the farm task (trajectory
    inspection wants a handful of flows, not a benchmark).
    """
    from repro.analysis.tasks import _ctrl_adversary_schedule, chaos_aliases
    from repro.chaos import ChaosEngine
    from repro.scenarios.ctrlplane import CtrlParams, build_ctrl_testbed
    from repro.traffic.iperf import UdpReceiver, UdpSender

    registry = MetricsRegistry(enabled=True)
    with use_registry(registry):
        tb = build_ctrl_testbed(
            variant, ctrl=CtrlParams(ctrl_k=ctrl_k), seed=seed
        )
    net = tb.network
    tracer = PacketTracer(net.trace, sample_rate=sample_rate)
    tracer.attach(net)

    schedule = _ctrl_adversary_schedule(adversary, ctrl_k)
    if schedule is not None:
        ChaosEngine(
            schedule, net,
            aliases=chaos_aliases(tb.testbed),
            control_plane=tb.control_plane,
        ).arm()

    base = tb.testbed.params
    primer = UdpSender(
        tb.h2, dst_mac=tb.h1.mac, dst_ip=tb.h1.ip, dport=5002,
        rate_bps=rate_bps, payload_size=64, send_cost=base.udp_send_cost,
    )
    primer.start(1e-6, delay=2e-4)
    warmup = 1e-3
    receiver = UdpReceiver(tb.h2, 5001)
    sender = UdpSender(
        tb.h1, dst_mac=tb.h2.mac, dst_ip=tb.h2.ip, dport=5001,
        rate_bps=rate_bps, payload_size=512, send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + 5e-3)
    result = receiver.result(sender, duration)
    receiver.close()
    if tb.quarantine is not None:
        tb.quarantine.detach()
    tb.control_plane.flush()
    return ScenarioRun(
        variant=variant,
        rate_bps=rate_bps,
        duration=duration,
        registry=registry,
        tracer=tracer,
        result=result,
        testbed=tb,
    )


def build_run_report(
    name: str = "fig5-obs",
    quick: bool = False,
    duration: Optional[float] = None,
    seed: int = 1,
    sample_rate: float = 1.0,
    scenarios: Optional[Tuple[str, ...]] = None,
    train: int = 1,
) -> Tuple[RunReport, List[ScenarioRun]]:
    """Run the instrumented scenario set and assemble a RunReport."""
    if scenarios is None:
        scenarios = QUICK_SCENARIOS if quick else FULL_SCENARIOS
    if duration is None:
        duration = 0.01 if quick else 0.02
    runs = [
        run_instrumented_scenario(
            variant, duration=duration, seed=seed, sample_rate=sample_rate,
            train=train,
        )
        for variant in scenarios
    ]
    report = RunReport(
        name=name,
        meta={
            "quick": quick,
            "seed": seed,
            "duration": duration,
            "sample_rate": sample_rate,
            "scenarios": list(scenarios),
            "train": train,
        },
    )
    for run in runs:
        report.metrics.update(run.registry.samples({"scenario": run.variant}))
        report.spans[run.variant] = run.tracer.stats()
        result = run.result
        report.records.append(
            {
                "scenario": run.variant,
                "offered_mbps": round(run.rate_bps / 1e6, 3),
                "goodput_mbps": round(result.throughput_mbps, 3),
                "loss_rate": round(result.loss_rate, 6),
                "jitter_ms": round(result.jitter_s * 1e3, 6),
                "sent": result.sent,
                "received": result.received_unique,
                "duplicates": result.duplicates,
            }
        )
        run.tracer.detach()
    return report, runs


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _hist_quantile(sample: Dict, q: float) -> float:
    """Quantile upper bound from a flattened histogram sample dict."""
    count = sample.get("count", 0)
    if not count:
        return 0.0
    buckets = sample.get("buckets", {})
    bounds = sorted(
        (float("inf") if k == "+Inf" else float(k), n) for k, n in buckets.items()
    )
    target = q * count
    seen = 0
    for bound, n in bounds:
        seen += n
        if seen >= target:
            return bound
    return float("inf")


def _metric_rows(report: RunReport, prefix: str, scenario: str) -> List[Tuple[str, object]]:
    needle = f'scenario="{scenario}"'
    rows = []
    for key, value in sorted(report.metrics.items()):
        if key.startswith(prefix) and needle in key:
            rows.append((key, value))
    return rows


def render_summary(report: RunReport) -> str:
    """Human-readable per-scenario view: flow result, links, compare."""
    lines: List[str] = [f"run report: {report.name}"]
    meta = report.meta
    if meta:
        lines.append(
            "  seed={seed} duration={duration}s sample_rate={sample_rate}".format(
                seed=meta.get("seed"), duration=meta.get("duration"),
                sample_rate=meta.get("sample_rate"),
            )
        )
    for record in report.records:
        scenario = record["scenario"]
        lines.append(f"\n== {scenario} ==")
        lines.append(
            "  udp {offered_mbps:g} Mbit/s offered -> {goodput_mbps:g} Mbit/s goodput, "
            "loss {loss_pct:.2f}%, jitter {jitter_ms:.4f} ms "
            "({received}/{sent} datagrams)".format(
                loss_pct=100.0 * record["loss_rate"], **record
            )
        )
        link_rows = [
            (key, value)
            for key, value in _metric_rows(report, "link_", scenario)
            if key.startswith("link_tx_packets_total")
            or key.startswith("link_queue_drops_total")
        ]
        if link_rows:
            lines.append("  links:")
            for key, value in link_rows:
                lines.append(f"    {key} = {value:g}")
        compare_rows = _metric_rows(report, "compare_", scenario)
        if compare_rows:
            lines.append("  compare:")
            for key, value in compare_rows:
                if isinstance(value, dict):
                    p50 = _hist_quantile(value, 0.5)
                    p99 = _hist_quantile(value, 0.99)
                    lines.append(
                        f"    {key}: count={value['count']} p50<={p50:g} p99<={p99:g}"
                    )
                elif value:
                    lines.append(f"    {key} = {value:g}")
        batch_rows = _metric_rows(report, "batch", scenario)
        if batch_rows:
            lines.append("  batches:")
            for key, value in batch_rows:
                if isinstance(value, dict):
                    p50 = _hist_quantile(value, 0.5)
                    p99 = _hist_quantile(value, 0.99)
                    lines.append(
                        f"    {key}: count={value['count']} p50<={p50:g} p99<={p99:g}"
                    )
                else:
                    lines.append(f"    {key} = {value:g}")
        flow_rows = _metric_rows(report, "flowtable_", scenario)
        if flow_rows:
            lines.append("  flowtables:")
            for key, value in flow_rows:
                if value:
                    lines.append(f"    {key} = {value:g}")
        adversary_rows = _metric_rows(report, "adversary_", scenario)
        if adversary_rows:
            lines.append("  adversary:")
            for key, value in adversary_rows:
                lines.append(f"    {key} = {value:g}")
        span_stats = report.spans.get(scenario)
        if span_stats:
            lines.append(
                "  spans: marked={marked} sampled_out={sampled_out} "
                "traces={traces} events={events}".format(**span_stats)
            )
    return "\n".join(lines)
