"""Packet-lifecycle spans: follow one packet through hub -> branches -> compare.

The paper's case study reconstructs where packets went with tcpdump taps
on every interface; *Software-Defined Adversarial Trajectory Sampling*
and *SDNsec* argue that per-packet trajectory evidence is the natural
observability substrate for this threat model.  :class:`PacketTracer`
is that substrate for the simulator:

* packets are **marked at injection** (``Host.send``) with a process-unique
  trace id, subject to a sampling rate drawn from a named seeded RNG
  stream so runs stay reproducible;
* every instrumented component emits per-hop records *only for marked
  packets* (``span.hop`` / ``span.send`` at ports, ``link.tx`` at
  transmitters, ``hub.dup`` at hubs, ``compare.vote`` at the compare;
  drop topics carry the packet and are picked up too), so the cost of an
  unmarked packet is a single attribute test per hop;
* the tracer subscribes to the relevant topic prefixes on the network's
  :class:`~repro.sim.trace.TraceBus` and indexes the records by trace
  id, so a full trajectory is one dictionary lookup instead of a scan
  of the retained log.

Trace ids ride on :attr:`Packet.trace_id`, which — unlike ``meta`` —
**survives** :meth:`Packet.copy`: a hub fan-out produces k copies that
all belong to the injected packet's trajectory, which is exactly what
makes duplicate-at-hub / vote-at-compare events attributable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.trace import TraceBus, TraceRecord

#: topic prefixes that can carry span-relevant records; ``ctrl.*``
#: stitches control-plane voting onto a packet's trajectory (the voter
#: stamps ``trace=`` on vote/release/blocked records when the causing
#: packet was marked)
SPAN_TOPIC_PATTERNS = (
    "span.*",
    "link.*",
    "hub.*",
    "endpoint.*",
    "switch.*",
    "compare.*",
    "port.*",
    "host.*",
    "ctrl.*",
)


class PacketTracer:
    """Samples packets at injection and indexes their per-hop records."""

    def __init__(
        self,
        bus: TraceBus,
        sample_rate: float = 1.0,
        rng=None,
        max_traces: int = 100_000,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate out of range: {sample_rate}")
        self.bus = bus
        self.sample_rate = sample_rate
        self._rng = rng
        self._max_traces = max_traces
        self._next_id = 1
        self._spans: Dict[int, List[TraceRecord]] = {}
        self._networks: list = []
        #: injection decisions
        self.marked = 0
        self.sampled_out = 0
        #: span records indexed (drops once max_traces trajectories exist)
        self.events = 0
        self.overflow_events = 0
        for pattern in SPAN_TOPIC_PATTERNS:
            bus.subscribe(pattern, self._on_record)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, network) -> None:
        """Install this tracer on a network: hosts mark packets on send."""
        if self._rng is None:
            self._rng = network.rng.stream("obs.tracer")
        network.tracer = self
        for node in network.nodes.values():
            if hasattr(node, "tracer"):
                node.tracer = self
        self._networks.append(network)

    def detach(self) -> None:
        """Stop marking and stop indexing (existing spans are kept)."""
        for network in self._networks:
            if getattr(network, "tracer", None) is self:
                network.tracer = None
            for node in network.nodes.values():
                if getattr(node, "tracer", None) is self:
                    node.tracer = None
        self._networks.clear()
        for pattern in SPAN_TOPIC_PATTERNS:
            self.bus.unsubscribe(pattern, self._on_record)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def mark(self, packet, now: float = 0.0, source: str = "") -> Optional[int]:
        """Assign a trace id to ``packet`` subject to the sampling rate.

        Returns the id, or ``None`` when the packet was sampled out.
        """
        if self.sample_rate < 1.0:
            if self._rng is None or self._rng.random() >= self.sample_rate:
                self.sampled_out += 1
                return None
        trace_id = self._next_id
        self._next_id += 1
        packet.trace_id = trace_id
        self.marked += 1
        self.bus.emit(now, "span.inject", source, trace=trace_id)
        return trace_id

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _on_record(self, record: TraceRecord) -> None:
        trace_id = record.data.get("trace")
        if trace_id is None:
            packet = record.data.get("packet")
            if packet is None:
                return
            trace_id = getattr(packet, "trace_id", None)
            if trace_id is None:
                return
        spans = self._spans.get(trace_id)
        if spans is None:
            if len(self._spans) >= self._max_traces:
                self.overflow_events += 1
                return
            spans = self._spans[trace_id] = []
        spans.append(record)
        self.events += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[int]:
        return sorted(self._spans)

    def trajectory(self, trace_id: int) -> List[TraceRecord]:
        """All records of one packet's lifetime, in emission order."""
        return list(self._spans.get(trace_id, ()))

    def trajectories(self) -> Dict[int, List[TraceRecord]]:
        return {tid: list(spans) for tid, spans in self._spans.items()}

    def hop_sources(self, trace_id: int, topic: str = "span.hop") -> List[str]:
        """Node names that saw this packet (delivery events), in order."""
        return [r.source for r in self._spans.get(trace_id, ()) if r.topic == topic]

    def drops(self, trace_id: Optional[int] = None) -> List[TraceRecord]:
        """Drop records (topic ending in ``.drop`` or ``_drop``) for one
        trajectory, or across all trajectories."""
        ids = [trace_id] if trace_id is not None else self.trace_ids()
        out: List[TraceRecord] = []
        for tid in ids:
            out.extend(
                r
                for r in self._spans.get(tid, ())
                if r.topic.endswith(".drop") or r.topic.endswith("_drop")
            )
        return out

    def stats(self) -> Dict[str, Any]:
        return {
            "sample_rate": self.sample_rate,
            "marked": self.marked,
            "sampled_out": self.sampled_out,
            "traces": len(self._spans),
            "events": self.events,
            "overflow_events": self.overflow_events,
        }

    def clear(self) -> None:
        self._spans.clear()
        self.marked = 0
        self.sampled_out = 0
        self.events = 0
        self.overflow_events = 0


# ----------------------------------------------------------------------
# cross-layer correlation
# ----------------------------------------------------------------------
#: how a span topic maps to a story layer
_LAYER_PREFIXES = (
    ("ctrl.", "control"),
    ("compare.", "voter"),
    ("chaos.", "fault"),
)


def _layer_of(topic: str) -> str:
    for prefix, layer in _LAYER_PREFIXES:
        if topic.startswith(prefix):
            return layer
    return "data"


def cross_layer_story(
    spans: List[TraceRecord],
    chaos_records: Optional[List[TraceRecord]] = None,
    window_slack: float = 0.0,
) -> List[Dict[str, Any]]:
    """One packet's full story across data plane, voter and fault windows.

    ``spans`` is a trajectory from :meth:`PacketTracer.trajectory` —
    which, with the ``ctrl.*`` pattern subscribed, already interleaves
    data-plane hops, compare votes and control-plane voting.  Chaos
    records (topic ``chaos.*``) carry no trace id — faults hit targets,
    not packets — so they are correlated *by time*: any fault whose
    window (``[time, until/restart_at]``, falling back to its instant)
    overlaps the packet's lifetime is woven into the story as a
    ``fault`` layer entry.  Returns time-ordered dicts with ``time``,
    ``layer`` (data / voter / control / fault), ``topic``, ``source``
    and the record's own data (packet objects reduced to their summary).
    """
    story: List[Dict[str, Any]] = []
    for record in spans:
        data = {}
        for key, value in record.data.items():
            if key == "packet":
                summary = getattr(value, "summary", None)
                data[key] = summary() if callable(summary) else repr(value)
            else:
                data[key] = value
        story.append({
            "time": record.time,
            "layer": _layer_of(record.topic),
            "topic": record.topic,
            "source": record.source,
            "data": data,
        })
    if chaos_records and spans:
        t_lo = min(r.time for r in spans) - window_slack
        t_hi = max(r.time for r in spans) + window_slack
        for record in chaos_records:
            if not record.topic.startswith("chaos."):
                continue
            start = record.time
            end = record.data.get("until") or record.data.get("restart_at")
            end = float(end) if end is not None else start
            if end < t_lo or start > t_hi:
                continue
            story.append({
                "time": record.time,
                "layer": "fault",
                "topic": record.topic,
                "source": record.source,
                "data": dict(record.data),
            })
    story.sort(key=lambda entry: entry["time"])
    return story
